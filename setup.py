"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package installs on machines without the ``wheel`` package (offline
environments), via ``pip install -e . --no-use-pep517 --no-build-isolation``
or plain ``pip install -e .`` with older tooling.
"""

from setuptools import setup

setup()
