"""EXTENSION — three-way storage-scheme comparison.

The paper excludes the property-table dimension from its experiments; this
extension bench runs it anyway: triple-store (PSO), vertically-partitioned,
and property-table on the column store, over all 12 queries, cold.

Expected shape (from the VLDB 2007 criticisms the paper quotes): the
property table is competitive on the property-restricted queries (its wide
rows serve bound single-valued properties well on a column store, which
prunes unused columns) but suffers the same union/join proliferation as
vertical partitioning on unbound-property queries, with the extra burden of
the leftover-table branches.
"""

from repro.bench import BenchmarkRunner, TimingCell, format_table, summarize
from repro.bench.systems import data_scale
from repro.colstore import ColumnStoreEngine
from repro.engine import COLUMN_STORE_COSTS, MACHINE_B
from repro.queries import ALL_QUERY_NAMES, build_query
from repro.storage import (
    build_property_table_store,
    build_triple_store,
    build_vertical_store,
)

BUILDERS = {
    "triple-PSO": lambda e, d: build_triple_store(
        e, d.triples, d.interesting_properties, clustering="PSO"
    ),
    "vertical": lambda e, d: build_vertical_store(
        e, d.triples, d.interesting_properties
    ),
    "property-table": lambda e, d: build_property_table_store(
        e, d.triples, d.interesting_properties
    ),
}


def run_three_way(dataset):
    scale = data_scale(dataset)
    rows = []
    summaries = {}
    for label, build in BUILDERS.items():
        engine = ColumnStoreEngine(
            machine=MACHINE_B.scaled(scale),
            costs=COLUMN_STORE_COSTS.scaled(scale),
        )
        catalog = build(engine, dataset)
        runner = BenchmarkRunner(engine)
        cells = {}
        for query in ALL_QUERY_NAMES:
            plan = build_query(catalog, query)
            result = runner.run_cold(query, lambda: engine.run(plan))
            cells[query] = TimingCell(
                result.timing.real_seconds / scale,
                result.timing.user_seconds / scale,
            )
        summary = summarize(cells)
        summaries[label] = (cells, summary)
        rows.append(
            [label]
            + [round(cells[q].real, 2) for q in ALL_QUERY_NAMES]
            + [round(summary["G_real"], 2), round(summary["Gstar_real"], 2)]
        )
    table = format_table(
        ["scheme"] + list(ALL_QUERY_NAMES) + ["G", "G*"],
        rows,
        title="Extension: three-way scheme comparison "
              "(column store, cold, scaled seconds)",
    )
    return table, summaries


def test_three_way_scheme_comparison(benchmark, dataset, publish):
    table, summaries = benchmark.pedantic(
        run_three_way, args=(dataset,), rounds=1, iterations=1
    )
    publish(("ext_property_table", table))

    pt_cells, pt = summaries["property-table"]
    t_cells, triple = summaries["triple-PSO"]
    v_cells, vert = summaries["vertical"]

    # Results agree across schemes (sanity: same data, same answers) is
    # covered by unit tests; here we check the performance shape.

    # The property table pays the union tax on the full-scale queries:
    # the triple-store beats it on every star variant and q8.
    for q in ("q2*", "q3*", "q6*", "q8"):
        assert t_cells[q].real < pt_cells[q].real, q

    # Its G*/G growth is vertical-partitioning-like, not triple-store-like.
    assert pt["ratio_real"] > triple["ratio_real"]

    # But bound single-valued properties are served well: the wide table is
    # within a small factor of the vertical scheme on the restricted G.
    assert pt["G_real"] < vert["G_real"] * 3
