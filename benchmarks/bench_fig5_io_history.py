"""Figure 5 — I/O read history for q3 and q5 (machines A and B).

The staircase shape: cumulative bytes grow monotonically over the whole run
(the replica never overlaps I/O with computation), and despite machine B's
~3.7x faster RAID its curve finishes nowhere near 3.7x earlier — the
"C-Store only exploits a small fraction of the I/O bandwidth" finding.
"""

from repro.bench.experiments import experiment_figure5


def test_figure5_io_read_history(benchmark, dataset, publish):
    results = benchmark.pedantic(
        experiment_figure5, args=(dataset,), rounds=1, iterations=1
    )
    publish(results)
    assert len(results) == 2  # q3 and q5

    for result in results:
        for machine, series in result.series.items():
            assert series == sorted(series), (result.name, machine)
            assert series[-1] > 0
        # Total bytes read are the same on both machines (same query, same
        # data); only the pace differs.
        finals = {m: s[-1] for m, s in result.series.items()}
        assert abs(finals["A"] - finals["B"]) / max(finals.values()) < 0.05
