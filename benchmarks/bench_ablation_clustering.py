"""Ablation — all six triple-store clustering orders.

The paper compares SPO (the VLDB 2007 choice) against PSO (its proposal).
This ablation completes the picture: every permutation of (subject,
property, object) as the clustering order of the column-store triples
table, measured over the 12 benchmark queries.

Expected shape: the property-leading orders (PSO, POS) win, because every
benchmark query except q8 binds the property; object-leading orders help
q8's object join; subject-leading orders trail on the property-bound
queries.
"""

from repro.bench import BenchmarkRunner, TimingCell, format_table, summarize
from repro.bench.systems import data_scale
from repro.colstore import ColumnStoreEngine
from repro.engine import COLUMN_STORE_COSTS, MACHINE_B
from repro.queries import ALL_QUERY_NAMES, build_query
from repro.storage import build_triple_store
from repro.storage.catalog import CLUSTERINGS


def run_clustering_ablation(dataset):
    scale = data_scale(dataset)
    rows = []
    summaries = {}
    for clustering in sorted(CLUSTERINGS):
        engine = ColumnStoreEngine(
            machine=MACHINE_B.scaled(scale),
            costs=COLUMN_STORE_COSTS.scaled(scale),
        )
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
            clustering=clustering,
        )
        runner = BenchmarkRunner(engine)
        cells = {}
        for query in ALL_QUERY_NAMES:
            plan = build_query(catalog, query)
            result = runner.run_cold(query, lambda: engine.run(plan))
            cells[query] = TimingCell(
                result.timing.real_seconds / scale,
                result.timing.user_seconds / scale,
            )
        summary = summarize(cells)
        summaries[clustering] = (cells, summary)
        rows.append(
            [clustering]
            + [round(cells[q].real, 2) for q in ALL_QUERY_NAMES]
            + [round(summary["G_real"], 2), round(summary["Gstar_real"], 2)]
        )
    table = format_table(
        ["clustering"] + list(ALL_QUERY_NAMES) + ["G", "G*"],
        rows,
        title="Ablation: triple-store clustering orders "
              "(MonetDB-like engine, cold, scaled seconds)",
    )
    return table, summaries


def test_clustering_ablation(benchmark, dataset, publish):
    table, summaries = benchmark.pedantic(
        run_clustering_ablation, args=(dataset,), rounds=1, iterations=1
    )
    publish(("ablation_clustering", table))

    g = {c: s["G_real"] for c, (_, s) in summaries.items()}
    gstar = {c: s["Gstar_real"] for c, (_, s) in summaries.items()}

    # Property-leading orders dominate the property-bound benchmark.
    best = min(g, key=g.get)
    assert best in ("PSO", "POS"), best
    for property_leading in ("PSO", "POS"):
        for subject_leading in ("SPO", "SOP"):
            assert g[property_leading] < g[subject_leading]
            assert gstar[property_leading] < gstar[subject_leading]

    # q8 (object-object join) prefers object-leading clustering.
    q8 = {c: cells["q8"].real for c, (cells, _) in summaries.items()}
    assert min(q8, key=q8.get) in ("OSP", "OPS")
