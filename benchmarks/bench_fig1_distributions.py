"""Figure 1 — cumulative frequency distributions.

The property curve must saturate almost immediately (highly Zipfian skew),
subjects must be far more uniform, objects in between — the visual ordering
of the paper's Figure 1.
"""

from repro.bench.experiments import experiment_figure1


def test_figure1_cumulative_distributions(benchmark, dataset, publish):
    result = benchmark.pedantic(
        experiment_figure1, args=(dataset,), rounds=1, iterations=1
    )
    publish(result)

    properties = result.series["properties"]
    subjects = result.series["subjects"]
    objects = result.series["objects"]

    at_13 = result.x_values.index(13)
    assert properties[at_13] > 95  # "top 13% ... account for 99%"
    # Visual ordering of the three curves: properties on top, subjects at
    # the bottom, objects in between (the head of the object curve is steep
    # too — #Date alone is 8% of the triples — so compare from x=5 up).
    for i, x in enumerate(result.x_values):
        assert properties[i] >= subjects[i]
        if x >= 5:
            assert properties[i] >= objects[i] - 1
            assert objects[i] >= subjects[i] - 1
    # All curves reach 100% at x=100.
    for series in result.series.values():
        assert series[-1] == 100.0
