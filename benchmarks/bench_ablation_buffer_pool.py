"""Ablation — buffer pool size vs hot-run behaviour.

The benchmark's hot/cold dichotomy assumes the working set fits in memory
(it did on the paper's machines: the 28-property database was ~270 MB
against 2-4 GB of RAM).  This ablation shrinks the column store's buffer
pool below the q2 working set and watches hot runs degrade from CPU-bound
back to I/O-bound — the continuum between the paper's Table 6 and Table 7.
"""

from repro.bench.reporting import format_table
from repro.colstore import ColumnStoreEngine
from repro.queries import build_query
from repro.storage import build_vertical_store


def run_buffer_ablation(dataset):
    probe = ColumnStoreEngine()
    build_vertical_store(
        probe, dataset.triples, dataset.interesting_properties
    )
    database_bytes = probe.database_bytes()

    fractions = (2.0, 1.0, 0.5, 0.2, 0.05)
    rows = []
    measurements = {}
    for fraction in fractions:
        engine = ColumnStoreEngine(
            buffer_bytes=max(int(database_bytes * fraction), 8192 * 4)
        )
        catalog = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        plan = build_query(catalog, "q2")
        engine.make_cold()
        _, cold = engine.run(plan)
        engine.run(plan)  # warm-up
        _, hot = engine.run(plan)
        measurements[fraction] = (cold, hot)
        rows.append(
            [
                f"{fraction:g}x database",
                round(cold.real_seconds * 1e3, 3),
                round(hot.real_seconds * 1e3, 3),
                hot.bytes_read,
            ]
        )
    table = format_table(
        ["buffer pool", "cold real (ms)", "hot real (ms)", "hot bytes read"],
        rows,
        title="Ablation: buffer pool size vs q2 hot-run behaviour "
              "(column store, vertically-partitioned)",
    )
    return table, measurements


def test_buffer_pool_ablation(benchmark, dataset, publish):
    table, measurements = benchmark.pedantic(
        run_buffer_ablation, args=(dataset,), rounds=1, iterations=1
    )
    publish(("ablation_buffer_pool", table))

    # Ample pool: hot runs are pure CPU.
    cold, hot = measurements[2.0]
    assert hot.bytes_read == 0
    assert hot.real_seconds < cold.real_seconds

    # Starved pool: hot runs re-read from disk and converge toward cold.
    _, starved_hot = measurements[0.05]
    assert starved_hot.bytes_read > 0
    assert starved_hot.real_seconds > hot.real_seconds

    # Monotone degradation as the pool shrinks.
    hots = [measurements[f][1].real_seconds for f in (2.0, 0.5, 0.05)]
    assert hots[0] <= hots[1] <= hots[2]
