"""Table 1 — data set details.

Regenerates the paper's Table 1 over the synthetic scale model and checks
the structural ratios the generator is supposed to reproduce (Zipfian
property skew, subject/object overlap).
"""

from repro.bench.experiments import experiment_table1
from repro.bench.paper_reference import PAPER_TABLE1
from repro.data.stats import frequency_table, top_share


def test_table1_dataset_details(benchmark, dataset, publish):
    result = benchmark.pedantic(
        experiment_table1, args=(dataset,), rounds=1, iterations=1
    )
    publish(result)
    rows = dict(result.rows)

    # Paper ratios (scale-invariant): properties exactly 222; top 13% of
    # properties carry ~99% of the triples; most subjects reappear as
    # objects.
    assert rows["distinct properties"] == PAPER_TABLE1["distinct properties"]
    counts = frequency_table(dataset.triples, "p")
    assert top_share(counts, 0.13) > 0.97
    overlap_ratio = (
        rows["distinct subjects that appear also as objects (and vice versa)"]
        / rows["distinct subjects"]
    )
    paper_overlap = (
        PAPER_TABLE1[
            "distinct subjects that appear also as objects (and vice versa)"
        ]
        / PAPER_TABLE1["distinct subjects"]
    )
    assert abs(overlap_ratio - paper_overlap) < 0.35
