"""Figure 7 — the scalability experiment: splitting properties 222 -> 1000.

Same number of triples, growing property vocabulary (uniform redistribution
over sub-properties).  Shape: the vertically-partitioned times climb
steadily (hundreds of unions and joins become dominant), the triple-store
times are non-increasing, and by 1000 properties the triple-store wins all
four full-scale queries on the column store — the paper's scalability
verdict against the vertically-partitioned scheme.
"""

from repro.bench.experiments import experiment_figure7

QUERIES = ("q2*", "q3*", "q4*", "q6*")


def test_figure7_property_splitting_scaleup(benchmark, dataset, publish):
    result = benchmark.pedantic(
        experiment_figure7, args=(dataset,), rounds=1, iterations=1
    )
    publish(result)

    for q in QUERIES:
        vert = result.series[f"{q} vert"]
        triple = result.series[f"{q} triple"]
        # Vert degrades with the property count...
        assert vert[-1] > vert[0] * 1.5, q
        # ... monotonically (within rounding)...
        assert all(b >= a - 0.05 for a, b in zip(vert, vert[1:])), q
        # ... while triple stays flat/non-increasing...
        assert triple[-1] <= triple[0] * 1.2, q
        # ... and wins decisively at 1000 properties.
        assert triple[-1] < vert[-1] / 1.5, q
