"""EXTENSION — update susceptibility of the storage schemes.

Makes the paper's Section 4.2 observation quantitative: "data-driven
logical schemes make queries susceptible to updates".  A stream of insert
batches hits both schemes; we account bytes rewritten and schema/plan
invalidation events.

Expected shape: the vertically-partitioned scheme rewrites far less per
batch (only the touched property tables) but is the only one whose schema
grows and whose generated all-property queries go stale when a new
property arrives.
"""

from repro.bench.reporting import format_table
from repro.colstore import ColumnStoreEngine
from repro.model.triple import Triple
from repro.storage import (
    build_triple_store,
    build_vertical_store,
    insert_triples,
)


def _batches(dataset):
    """Three insert batches: known properties, then a schema-busting one."""
    e = dataset.entity_name
    return [
        [
            Triple(e(1), "<language>", "<language/iso639-2b/ger>"),
            Triple(e(2), "<origin>", "<info:marcorg/MH>"),
        ],
        [
            Triple("<acquisition/1>", "<type>", "<Text>"),
            Triple("<acquisition/1>", "<records>", e(3)),
        ],
        [
            Triple(e(4), "<isbn>", '"978-3-16-148410-0"'),  # new property!
        ],
    ]


def run_update_experiment(dataset):
    rows = []
    outcomes = {}
    for scheme, build in (
        ("triple-PSO", build_triple_store),
        ("vertical", build_vertical_store),
    ):
        engine = ColumnStoreEngine()
        catalog = build(
            engine, dataset.triples, dataset.interesting_properties
        )
        total_rewritten = 0
        schema_changes = 0
        invalidations = 0
        for batch in _batches(dataset):
            catalog, report = insert_triples(engine, catalog, batch)
            total_rewritten += report.bytes_rewritten
            schema_changes += int(report.schema_changed)
            invalidations += int(report.plans_invalidated)
        outcomes[scheme] = (total_rewritten, schema_changes, invalidations)
        rows.append(
            [scheme, total_rewritten, schema_changes, invalidations]
        )
    table = format_table(
        ["scheme", "bytes rewritten", "schema changes", "plan invalidations"],
        rows,
        title="Extension: update susceptibility (3 insert batches, "
              "last one carries a new property)",
    )
    return table, outcomes


def test_update_susceptibility(benchmark, dataset, publish):
    table, outcomes = benchmark.pedantic(
        run_update_experiment, args=(dataset,), rounds=1, iterations=1
    )
    publish(("ext_updates", table))

    triple_bytes, triple_schema, triple_invalid = outcomes["triple-PSO"]
    vert_bytes, vert_schema, vert_invalid = outcomes["vertical"]

    # Vertical rewrites far less physically...
    assert vert_bytes < triple_bytes / 3
    # ... but is the only scheme whose logical schema changes, stale-ing
    # the generated queries; the triple-store absorbs the new property
    # with neither.
    assert vert_schema == 1 and vert_invalid == 1
    assert triple_schema == 0 and triple_invalid == 0
