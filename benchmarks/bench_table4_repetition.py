"""Table 4 — repetition of the C-Store experiment (machines A and B).

Shape criteria (paper, Section 3): hot runs far cheaper than cold; user
below real; machine B's ~3.7x disk bandwidth buys far less than 3.7x cold
speedup because the replica's synchronous small reads are latency-bound;
user times similar on both machines (slightly higher on B).
"""

from repro.bench.experiments import experiment_table3, experiment_table4


def test_table4_cstore_repetition(benchmark, dataset, publish):
    publish(experiment_table3())  # the machine table the runs refer to
    result = benchmark.pedantic(
        experiment_table4, args=(dataset,), rounds=1, iterations=1
    )
    publish(result)
    rows = {row[0]: row[1:] for row in result.rows}

    for machine in ("A", "B"):
        cold_real = rows[f"{machine} cold real"]
        hot_real = rows[f"{machine} hot real"]
        cold_user = rows[f"{machine} cold user"]
        assert cold_real[-1] > 1.5 * hot_real[-1]  # G drops sharply when hot
        assert all(u <= r + 1e-9 for u, r in zip(cold_user, cold_real))

    bandwidth_speedup = rows["A cold real"][-1] / rows["B cold real"][-1]
    assert bandwidth_speedup < 1.8  # nowhere near the 3.7x bandwidth ratio

    a_user, b_user = rows["A cold user"][-1], rows["B cold user"][-1]
    assert a_user <= b_user < a_user * 1.2
