"""Table 5 — data relevant to a query (bytes read from disk, rows returned).

The per-query read volumes, rescaled to paper scale, must sit within an
order of magnitude of the paper's MB figures, with q1 the cheapest of the
property-scan queries.
"""

from repro.bench.experiments import experiment_table5
from repro.bench.paper_reference import PAPER_TABLE5


def test_table5_data_read_per_query(benchmark, dataset, publish):
    result = benchmark.pedantic(
        experiment_table5, args=(dataset,), rounds=1, iterations=1
    )
    publish(result)
    reads = {row[0]: row[1] for row in result.rows}
    rows_returned = {row[0]: row[2] for row in result.rows}

    for query, (paper_mb, _paper_rows) in PAPER_TABLE5.items():
        assert paper_mb / 10 < reads[query] < paper_mb * 10, query
        assert rows_returned[query] > 0

    assert reads["q1"] < reads["q2"]
    assert reads["q1"] < reads["q3"]
    assert reads["q1"] < reads["q6"]
