"""Ablation — property-distribution skew.

Section 4.4: "The highly Zipfian skew of property distribution and the
small number of properties observed on the benchmark data-set keeps this
effect to a minimum level.  Given an RDF data-set with more properties but
with the same overall number of triples, we anticipate that these
scalability issues will arise to the surface in a more obvious way."

This ablation varies the *skew* at fixed triple and property counts: the
head properties carry 99%, 80% or 60% of the triples.  The measured result
sharpens the paper's diagnosis: the vert/triple ratio for the full-scale
queries is nearly *insensitive* to skew — q2* visits all 222 property
tables no matter where the mass sits, so the per-table overheads (unions,
joins, table opens) depend on the table COUNT, not the distribution.  The
scalability threat the paper anticipates is therefore driven by the number
of properties (Figure 7's knob), and a low-skew dataset is dangerous for
vertical partitioning exactly insofar as it implies that queries cannot be
restricted to a small interesting subset.
"""

from repro.bench import BenchmarkRunner, format_table
from repro.bench.systems import data_scale
from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.engine import COLUMN_STORE_COSTS, MACHINE_B
from repro.queries import build_query
from repro.storage import build_triple_store, build_vertical_store


def run_skew_ablation(n_triples, seed, head_masses=(0.99, 0.8, 0.6)):
    rows = []
    ratios = {}
    for head_mass in head_masses:
        dataset = generate_barton(
            n_triples=n_triples, seed=seed, head_mass=head_mass,
            tail_decay=0.999,
        )
        scale = data_scale(dataset)
        times = {}
        for label, build in (
            ("triple", lambda e, d: build_triple_store(
                e, d.triples, d.interesting_properties, clustering="PSO")),
            ("vert", lambda e, d: build_vertical_store(
                e, d.triples, d.interesting_properties)),
        ):
            engine = ColumnStoreEngine(
                machine=MACHINE_B.scaled(scale),
                costs=COLUMN_STORE_COSTS.scaled(scale),
            )
            catalog = build(engine, dataset)
            runner = BenchmarkRunner(engine)
            plan = build_query(catalog, "q2*")
            result = runner.run_cold("q2*", lambda: engine.run(plan))
            times[label] = result.timing.real_seconds / scale
        ratio = times["vert"] / times["triple"]
        ratios[head_mass] = ratio
        rows.append(
            [
                f"{head_mass:.0%} in head",
                round(times["triple"], 2),
                round(times["vert"], 2),
                round(ratio, 2),
            ]
        )
    table = format_table(
        ["skew", "q2* triple (s)", "q2* vert (s)", "vert/triple"],
        rows,
        title="Ablation: property-distribution skew vs q2* "
              "(column store, cold, scaled seconds)",
    )
    return table, ratios


def test_skew_ablation(benchmark, publish):
    table, ratios = benchmark.pedantic(
        run_skew_ablation, args=(60_000, 42), rounds=1, iterations=1
    )
    publish(("ablation_skew", table))

    values = list(ratios.values())
    # The triple-store wins q2* at every skew level...
    assert all(r > 1.0 for r in values)
    # ... and the ratio is insensitive to skew (within 15%): the vertical
    # scheme's full-scale overhead is a per-TABLE cost, set by the property
    # count, not by the mass distribution.
    assert max(values) / min(values) < 1.15
