"""Ablation — the I/O model behind the C-Store findings.

Two knobs of the simulated disk stack are swept:

1. **Request size**: effective read rate of a synchronous reader as the
   per-request chunk grows from 16 KB to 4 MB, on machines A and B.  Small
   chunks are seek-bound and machine-independent (the C-Store regime,
   Figure 5); large chunks approach each machine's sequential bandwidth
   (the MonetDB/DBX scan regime).
2. **Sequential coalescing**: with OS readahead off (the C-Store
   behaviour), the same scan pays a seek per chunk and slows down by an
   order of magnitude at small chunk sizes.
"""

from repro.bench.reporting import format_table
from repro.engine import BufferPool, MACHINE_A, MACHINE_B, QueryClock, SimulatedDisk

MB = 1024 * 1024
SCAN_BYTES = 64 * MB
CHUNKS = (16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024, 4 * MB)


def chunked_scan_rate(machine, chunk_bytes):
    """One scan issued as synchronous requests of *chunk_bytes* each."""
    disk = SimulatedDisk(page_size=8192)
    clock = QueryClock(machine)
    pool = BufferPool(
        disk, clock, capacity_bytes=256 * MB, max_run_bytes=chunk_bytes,
        sequential_coalescing=False,
    )
    segment = disk.create_segment("scan", SCAN_BYTES)
    pool.read_segment(segment)
    return SCAN_BYTES / clock.timing().real_seconds / MB


def page_at_a_time_rate(machine, coalescing):
    """A reader touching one 8 KB page per call (B+tree leaf chains)."""
    disk = SimulatedDisk(page_size=8192)
    clock = QueryClock(machine)
    pool = BufferPool(
        disk, clock, capacity_bytes=256 * MB,
        sequential_coalescing=coalescing,
    )
    bytes_total = 4 * MB  # enough pages to amortize, small enough to be fast
    segment = disk.create_segment("scan", bytes_total)
    for page in range(segment.num_pages()):
        pool.read_pages(segment, [page])
    return bytes_total / clock.timing().real_seconds / MB


def run_io_ablation():
    rates = {}
    rows = []
    for chunk in CHUNKS:
        row = [f"{chunk // 1024} KB"]
        for machine in (MACHINE_A, MACHINE_B):
            rate = chunked_scan_rate(machine, chunk)
            rates[(chunk, machine.name)] = rate
            row.append(round(rate, 1))
        rows.append(row)
    chunk_table = format_table(
        ["request size", "A", "B"],
        rows,
        title="Ablation: effective read rate (MB/s) vs synchronous request "
              f"size ({SCAN_BYTES // MB} MB sequential scan)",
    )

    page_rows = []
    for machine in (MACHINE_A, MACHINE_B):
        for coalescing in (False, True):
            rate = page_at_a_time_rate(machine, coalescing)
            rates[("page", machine.name, coalescing)] = rate
            page_rows.append(
                [machine.name,
                 "readahead" if coalescing else "sync",
                 round(rate, 1)]
            )
    page_table = format_table(
        ["machine", "mode", "MB/s"],
        page_rows,
        title="Ablation: page-at-a-time reader (8 KB calls) with and "
              "without OS readahead coalescing",
    )
    return chunk_table + "\n\n" + page_table, rates


def test_io_model_ablation(benchmark, publish):
    table, rates = benchmark.pedantic(run_io_ablation, rounds=1, iterations=1)
    publish(("ablation_io_model", table))

    small, large = CHUNKS[0], CHUNKS[-1]

    # Small synchronous requests are machine-independent (seek-bound):
    a_small = rates[(small, "A")]
    b_small = rates[(small, "B")]
    assert b_small / a_small < 1.3
    # ... and exploit only a small fraction of the bandwidth.
    assert a_small < MACHINE_A.read_bandwidth / MB / 10

    # Large requests approach each machine's sequential bandwidth, and the
    # machines now differ by roughly their bandwidth ratio.
    a_large = rates[(large, "A")]
    b_large = rates[(large, "B")]
    assert a_large > MACHINE_A.read_bandwidth / MB * 0.5
    assert b_large / a_large > 2.0

    # Readahead coalescing rescues page-at-a-time readers: sequential
    # single-page calls ride one stream instead of paying a seek each.
    assert (
        rates[("page", "A", True)] > rates[("page", "A", False)] * 10
    )
