"""Ablation — row-store join-method selection.

The DBX replica's optimizer chooses between an index nested-loop join and a
hash join with a cost rule (probed pages vs inner scan bytes).  This
ablation forces each strategy on q2-like self-joins at two outer
cardinalities and verifies that the automatic rule never loses to either
forced strategy — in particular that it avoids the pathological
always-probe plan, whose scattered index+heap reads are 1-2 orders of
magnitude slower at both cardinalities on this dataset.
"""

from repro.bench.reporting import format_table
from repro.plan import Comparison, GroupBy, Join, Project, Scan, Select
from repro.rowstore import RowStoreEngine
from repro.rowstore.executor import RowExecutor
from repro.storage import build_triple_store


def _q2_like_plan(catalog, prop_name, obj_name=None):
    """SELECT count per B.prop for subjects matching a selective filter."""
    predicates = [
        Comparison("A.prop", "=", catalog.encode(prop_name)),
    ]
    if obj_name is not None:
        predicates.append(Comparison("A.obj", "=", catalog.encode(obj_name)))
    a = Select(
        Scan(catalog.triples_table, ["subj", "prop", "obj"], alias="A"),
        predicates,
    )
    b = Scan(catalog.triples_table, ["subj", "prop", "obj"], alias="B")
    joined = Join(Project(a, [("s", "A.subj")]), b, on=[("s", "B.subj")])
    return GroupBy(joined, keys=["B.prop"], count_column="n")


def run_join_ablation(dataset):
    rows = []
    outcomes = {}
    # Two outers: tiny (conferences-style point lookup) and huge (all
    # <type> triples).
    cases = [
        ("tiny outer", "<Point>", '"end"'),
        ("large outer", "<type>", None),
    ]
    for label, prop, obj in cases:
        for forced, strategy in (("auto", "auto"), ("hash-only", "hash"),
                                 ("inl-always", "inl")):
            engine = RowStoreEngine()
            catalog = build_triple_store(
                engine, dataset.triples, dataset.interesting_properties,
                clustering="PSO",
            )
            engine._executor.join_strategy = strategy
            plan = _q2_like_plan(catalog, prop, obj)
            engine.make_cold()
            _, timing = engine.run(plan)
            outcomes[(label, forced)] = timing
            rows.append(
                [
                    label,
                    forced,
                    round(timing.real_seconds * 1e3, 3),
                    timing.io_requests,
                ]
            )
    table = format_table(
        ["outer", "strategy", "real (ms)", "io requests"],
        rows,
        title="Ablation: row-store join strategy vs outer cardinality",
    )
    return table, outcomes


def test_join_strategy_ablation(benchmark, dataset, publish):
    table, outcomes = benchmark.pedantic(
        run_join_ablation, args=(dataset,), rounds=1, iterations=1
    )
    publish(("ablation_join_strategy", table))

    # The automatic rule never loses badly to either forced strategy.
    for label in ("tiny outer", "large outer"):
        auto = outcomes[(label, "auto")].real_seconds
        best_forced = min(
            outcomes[(label, "hash-only")].real_seconds,
            outcomes[(label, "inl-always")].real_seconds,
        )
        assert auto <= best_forced * 1.25, label

    # Forcing index probes everywhere is pathological: scattered index and
    # heap reads cost an order of magnitude over the scan-based plan.
    for label in ("tiny outer", "large outer"):
        forced_inl = outcomes[(label, "inl-always")].real_seconds
        auto = outcomes[(label, "auto")].real_seconds
        assert forced_inl > auto * 5, label
