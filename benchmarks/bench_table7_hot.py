"""Table 7 — hot runs: every system x every query.

Hot runs strip the I/O component: the SQL engines become CPU-bound (user
nearly equals real), every hot cell is at most its cold counterpart, and
with reads amortized *all* full-scale variants run faster on the
triple-store than on the vertically-partitioned scheme in the column store
(paper: "all asterisk versions of the queries are faster on triple-store").
"""

import pytest

from repro.bench.experiments import experiment_table6, experiment_table7


def _cells(result, config, clock):
    cells, summary = result.measured[config]
    return {q: getattr(c, clock) for q, c in cells.items()}, summary


def test_table7_hot_runs(benchmark, dataset, publish):
    result = benchmark.pedantic(
        experiment_table7, args=(dataset,), rounds=1, iterations=1
    )
    publish(result)

    # SQL-engine hot runs are CPU-bound: user ~ real.
    for system in ("DBX", "MonetDB"):
        for scheme, clustering in (
            ("triple", "SPO"), ("triple", "PSO"), ("vert", "SO"),
        ):
            cells, _ = result.measured[(system, scheme, clustering)]
            for q, c in cells.items():
                assert c.user == pytest.approx(c.real, rel=0.05), (
                    system, scheme, q,
                )

    # Column-store hot: the star variants all favour the triple-store.
    mdb_pso, _ = _cells(result, ("MonetDB", "triple", "PSO"), "real")
    mdb_vert, vert_summary = _cells(result, ("MonetDB", "vert", "SO"), "real")
    for q in ("q2*", "q3*", "q6*", "q8"):
        assert mdb_pso[q] < mdb_vert[q], q
    # ... while vert still wins the restricted G.
    _, pso_summary = _cells(result, ("MonetDB", "triple", "PSO"), "real")
    assert vert_summary["G_real"] < pso_summary["G_real"]


def test_hot_never_slower_than_cold(benchmark, dataset, publish):
    def both():
        return experiment_table6(dataset), experiment_table7(dataset)

    cold, hot = benchmark.pedantic(both, rounds=1, iterations=1)
    for config in cold.measured:
        cold_cells, _ = cold.measured[config]
        hot_cells, _ = hot.measured[config]
        for q in cold_cells:
            assert hot_cells[q].real <= cold_cells[q].real + 1e-9, (config, q)
