"""EXTENSION — does join-order optimization change the benchmark verdict?

The paper's SQL implies a join order and the reproduction's Tables 6/7 run
it as-is.  This bench reruns the multi-join benchmark queries on the column
store with the greedy cost-based optimizer enabled and reports the delta —
checking that (a) results are unchanged, and (b) the paper's hand-written
orders were already close to optimal for this workload, so the
reproduction's timings are not an artifact of bad manual join orders.
"""

from repro.bench import BenchmarkRunner, format_table
from repro.bench.systems import data_scale
from repro.colstore import ColumnStoreEngine
from repro.engine import COLUMN_STORE_COSTS, MACHINE_B
from repro.plan.optimizer import engine_stats_provider, optimize_joins
from repro.queries import build_query
from repro.storage import build_triple_store

QUERIES = ("q2", "q3", "q4", "q5", "q6", "q7", "q8")


def run_optimizer_comparison(dataset):
    scale = data_scale(dataset)
    engine = ColumnStoreEngine(
        machine=MACHINE_B.scaled(scale),
        costs=COLUMN_STORE_COSTS.scaled(scale),
    )
    catalog = build_triple_store(
        engine, dataset.triples, dataset.interesting_properties,
        clustering="PSO",
    )
    provider = engine_stats_provider(engine)
    runner = BenchmarkRunner(engine)

    rows = []
    outcomes = {}
    for query in QUERIES:
        plan = build_query(catalog, query)
        optimized = optimize_joins(plan, provider)

        manual = runner.run_hot(query, lambda: engine.run(plan))
        auto = runner.run_hot(query, lambda: engine.run(optimized))

        same = engine.execute(plan).sorted_tuples(
            order=plan.output_columns()
        ) == engine.execute(optimized).sorted_tuples(
            order=optimized.output_columns()
        )
        manual_s = manual.timing.real_seconds / scale
        auto_s = auto.timing.real_seconds / scale
        outcomes[query] = (manual_s, auto_s, same)
        rows.append(
            [query, round(manual_s, 3), round(auto_s, 3),
             round(auto_s / manual_s, 2), "yes" if same else "NO"]
        )
    table = format_table(
        ["query", "paper order (s)", "optimized (s)", "ratio", "same rows"],
        rows,
        title="Extension: greedy join-order optimizer vs the paper's "
              "hand-written orders (column store, hot, scaled seconds)",
    )
    return table, outcomes


def test_optimizer_comparison(benchmark, dataset, publish):
    table, outcomes = benchmark.pedantic(
        run_optimizer_comparison, args=(dataset,), rounds=1, iterations=1
    )
    publish(("ext_optimizer", table))

    for query, (manual, auto, same) in outcomes.items():
        assert same, query
        # The optimizer never blows a query up badly (within 2x)...
        assert auto < manual * 2.0, query
    # ... and overall the hand-written orders were near-optimal: total
    # optimized time is within 25% either way.
    total_manual = sum(m for m, _, _ in outcomes.values())
    total_auto = sum(a for _, a, _ in outcomes.values())
    assert 0.6 < total_auto / total_manual < 1.25
