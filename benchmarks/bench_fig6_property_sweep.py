"""Figure 6 — execution time vs number of properties (28 to 222).

MonetDB, queries q2/q3/q4/q6, triple-PSO vs vertically-partitioned.  Shape:
the vert curve rises with the property count; the triple curve is flat and
*drops* at 222 properties (the final filter join disappears); the triple
line eventually crosses below the vert line.
"""

from repro.bench.experiments import experiment_figure6


def test_figure6_property_count_sweep(benchmark, dataset, publish):
    results = benchmark.pedantic(
        experiment_figure6, args=(dataset,), rounds=1, iterations=1
    )
    publish(results)

    crossed = 0
    for result in results:
        vert = result.series["vert"]
        triple = result.series["triple"]
        assert vert[-1] > vert[0], result.name  # vert rises
        assert triple[-1] <= triple[0] * 1.1, result.name  # triple flat/drops
        assert triple[-1] < triple[-2], result.name  # the 222 drop
        if triple[-1] < vert[-1]:
            crossed += 1
    assert crossed >= 3  # paper: triple overtakes in all cases but q4
