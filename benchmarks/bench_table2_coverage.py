"""Table 2 — coverage of the query space.

The coverage matrix is recomputed from the query definitions (not
hand-copied) and must equal the paper's Table 2, including the q8 row this
paper adds (pattern p6/p8 with the otherwise-missing join pattern B).
"""

from repro.bench.experiments import experiment_table2
from repro.bench.paper_reference import PAPER_TABLE2
from repro.model.patterns import query_coverage, TriplePattern
from repro.model.triple import Variable


def test_table2_query_space_coverage(benchmark, publish):
    result = benchmark.pedantic(experiment_table2, rounds=1, iterations=1)
    publish(result)
    got = {
        row[0]: (
            row[1].split(","),
            row[2].split(",") if row[2] != "-" else [],
        )
        for row in result.rows
    }
    assert got == PAPER_TABLE2


def test_q8_covers_the_missing_join_pattern_b(benchmark):
    """Verify q8's classification from first principles: its BGP is
    (s, ?p, ?o) x (?s, ?p', ?o) joined on objects."""

    def classify():
        patterns = [
            TriplePattern("<conferences>", Variable("p"), Variable("obj")),
            TriplePattern(Variable("s"), Variable("q"), Variable("obj")),
        ]
        return query_coverage(patterns)

    triple_classes, join_classes = benchmark.pedantic(
        classify, rounds=1, iterations=1
    )
    assert triple_classes == ["p6", "p8"]
    assert join_classes == ["B"]
