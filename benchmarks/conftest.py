"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper on a
synthetic scale model of the Barton data set, measures the harness run with
pytest-benchmark, prints the regenerated table (visible with ``-s``), and
writes it to ``benchmarks/output/`` so the results can be diffed against
EXPERIMENTS.md.

Environment knobs (see ``docs/benchmarking.md``):

* ``REPRO_BENCH_TRIPLES`` — dataset size (default 60000),
* ``REPRO_BENCH_SEED`` — generator seed (default 42),
* ``REPRO_BENCH_JOBS`` — worker processes for experiment cells (default 1;
  the scheduled drivers read it directly, and parallel output is
  byte-identical to serial),
* ``REPRO_BENCH_REPEATS`` — wall-clock repeats per cell (default 1).  With
  ``N > 1`` every cell runs N times and ``wall_ms`` reports the minimum —
  min-of-N warmed measurements are what the perf regression gate compares,
  because a single sample on a busy machine is mostly noise.  Cells are
  pure functions, so repeats cannot change any simulated result,
* ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_DISABLE`` — artifact-cache location
  and kill switch for datasets and built store payloads.
"""

import json
import os
import pathlib

import pytest

from repro.bench.artifacts import cache_disabled, cached_dataset
from repro.bench.scheduler import default_jobs, default_repeats
from repro.data import generate_barton

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_triples():
    return int(os.environ.get("REPRO_BENCH_TRIPLES", "60000"))


def bench_seed():
    return int(os.environ.get("REPRO_BENCH_SEED", "42"))


def bench_jobs():
    """Scheduler worker count (``REPRO_BENCH_JOBS``, default serial)."""
    return default_jobs()


def bench_repeats():
    """Wall-clock repeats per cell (``REPRO_BENCH_REPEATS``, default 1);
    the scheduler reports min-of-N ``wall_ms`` when N > 1."""
    return default_repeats()


@pytest.fixture(scope="session")
def dataset():
    """The Barton-like scale model shared by every bench.

    Served from the on-disk artifact cache unless ``REPRO_CACHE_DISABLE``
    is set — a cache hit is byte-identical to a fresh build.
    """
    if cache_disabled():
        return generate_barton(n_triples=bench_triples(), seed=bench_seed())
    return cached_dataset(n_triples=bench_triples(), seed=bench_seed())


@pytest.fixture(scope="session")
def publish():
    """Print a regenerated table and persist it under benchmarks/output/
    — human-readable ``.txt`` plus a machine-readable ``.json`` twin."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _publish(result):
        results = result if isinstance(result, list) else [result]
        for r in results:
            if isinstance(r, tuple):
                name, text = r
                document = {"name": name, "text": text}
            else:
                name, text = r.name, r.render()
                document = r.to_dict()
            document.setdefault("parameters", {})
            document["parameters"].update(
                {
                    "triples": bench_triples(),
                    "seed": bench_seed(),
                    "repeats": bench_repeats(),
                }
            )
            print()
            print(text)
            (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
            (OUTPUT_DIR / f"{name}.json").write_text(
                json.dumps(document, indent=2) + "\n"
            )
        return results

    return _publish
