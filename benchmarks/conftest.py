"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper on a
synthetic scale model of the Barton data set, measures the harness run with
pytest-benchmark, prints the regenerated table (visible with ``-s``), and
writes it to ``benchmarks/output/`` so the results can be diffed against
EXPERIMENTS.md.

Environment knobs:

* ``REPRO_BENCH_TRIPLES`` — dataset size (default 60000),
* ``REPRO_BENCH_SEED`` — generator seed (default 42).
"""

import json
import os
import pathlib

import pytest

from repro.data import generate_barton

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_triples():
    return int(os.environ.get("REPRO_BENCH_TRIPLES", "60000"))


def bench_seed():
    return int(os.environ.get("REPRO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def dataset():
    """The Barton-like scale model shared by every bench."""
    return generate_barton(n_triples=bench_triples(), seed=bench_seed())


@pytest.fixture(scope="session")
def publish():
    """Print a regenerated table and persist it under benchmarks/output/
    — human-readable ``.txt`` plus a machine-readable ``.json`` twin."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _publish(result):
        results = result if isinstance(result, list) else [result]
        for r in results:
            if isinstance(r, tuple):
                name, text = r
                document = {"name": name, "text": text}
            else:
                name, text = r.name, r.render()
                document = r.to_dict()
            document.setdefault("parameters", {})
            document["parameters"].update(
                {"triples": bench_triples(), "seed": bench_seed()}
            )
            print()
            print(text)
            (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
            (OUTPUT_DIR / f"{name}.json").write_text(
                json.dumps(document, indent=2) + "\n"
            )
        return results

    return _publish
