"""Table 6 — cold runs: every system x every query.

Shape criteria (paper, Section 4.3):

* row store: PSO clustering decisively beats SPO on q1-q7; with PSO chosen,
  the triple-store's G* beats the vertically-partitioned G* (the row-store
  "black swan"), while vert still wins the property-restricted q1/q5/q7;
* column store: an order of magnitude faster than the row store; vert wins
  the restricted benchmark (G) but loses q2*/q3*/q6*/q8 to triple-PSO (the
  column-store "black swans");
* the G*/G growth is larger for the vertically-partitioned scheme on both
  engines.
"""

from repro.bench.experiments import experiment_table6


def _cells(result, config, clock):
    cells, summary = result.measured[config]
    return {q: getattr(c, clock) for q, c in cells.items()}, summary


def test_table6_cold_runs(benchmark, dataset, publish):
    result = benchmark.pedantic(
        experiment_table6, args=(dataset,), rounds=1, iterations=1
    )
    publish(result)

    dbx_spo, _ = _cells(result, ("DBX", "triple", "SPO"), "real")
    dbx_pso, dbx_pso_summary = _cells(result, ("DBX", "triple", "PSO"), "real")
    dbx_vert, dbx_vert_summary = _cells(result, ("DBX", "vert", "SO"), "real")
    mdb_pso, mdb_pso_summary = _cells(
        result, ("MonetDB", "triple", "PSO"), "real"
    )
    mdb_vert, mdb_vert_summary = _cells(
        result, ("MonetDB", "vert", "SO"), "real"
    )

    # Row store: clustering order is paramount.
    for q in ("q1", "q2", "q3", "q5", "q6", "q7"):
        assert dbx_pso[q] < dbx_spo[q], q
    assert dbx_pso["q1"] < dbx_spo["q1"] / 2

    # Row-store black swan: triple-PSO G* below vert G*.
    assert dbx_pso_summary["Gstar_real"] < dbx_vert_summary["Gstar_real"]
    # ... while vert wins the property-restricted queries.
    for q in ("q1", "q5", "q7"):
        assert dbx_vert[q] < dbx_pso[q], q

    # Column store an order of magnitude ahead of the row store.
    assert mdb_vert_summary["G_real"] < dbx_vert_summary["G_real"] / 3

    # Column store: vert wins G; triple-PSO wins the black swans.
    assert mdb_vert_summary["G_real"] < mdb_pso_summary["G_real"]
    for q in ("q2*", "q3*", "q6*", "q8"):
        assert mdb_pso[q] < mdb_vert[q], q

    # G*/G grows faster for the vertically-partitioned scheme.
    assert dbx_vert_summary["ratio_real"] > dbx_pso_summary["ratio_real"]
    assert mdb_vert_summary["ratio_real"] > mdb_pso_summary["ratio_real"]
