"""Tests for the logical plan algebra and predicates."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.plan import (
    Comparison,
    Distinct,
    GroupBy,
    Having,
    Join,
    Project,
    Scan,
    Select,
    Union,
    count_operators,
    walk,
)
from repro.relation import Relation


def scan(alias=None):
    return Scan("triples", ["subj", "prop", "obj"], alias=alias)


class TestComparison:
    def test_equality_evaluate(self):
        p = Comparison("x", "=", 5)
        assert p.evaluate(5) and not p.evaluate(6)

    def test_inequality_evaluate(self):
        p = Comparison("x", "!=", 5)
        assert p.evaluate(6) and not p.evaluate(5)

    def test_ordering_operators(self):
        assert Comparison("x", ">", 1).evaluate(2)
        assert Comparison("x", "<=", 1).evaluate(1)
        assert not Comparison("x", "<", 1).evaluate(1)
        assert Comparison("x", ">=", 2).evaluate(2)

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            Comparison("x", "~", 1)

    def test_none_value_semantics(self):
        """A constant missing from the dictionary matches nothing for '='
        and everything for '!='."""
        assert not Comparison("x", "=", None).evaluate(0)
        assert Comparison("x", "!=", None).evaluate(0)

    def test_mask(self):
        arr = np.array([1, 2, 1, 3])
        assert Comparison("x", "=", 1).mask(arr).tolist() == [
            True, False, True, False,
        ]
        assert Comparison("x", "=", None).mask(arr).sum() == 0
        assert Comparison("x", "!=", None).mask(arr).sum() == 4

    def test_equality_helpers(self):
        assert Comparison("x", "=", 1).is_equality()
        assert not Comparison("x", "!=", 1).is_equality()
        assert Comparison("x", "=", 1) == Comparison("x", "=", 1)


class TestPlanConstruction:
    def test_scan_alias_qualifies_columns(self):
        assert scan("A").output_columns() == ["A.subj", "A.prop", "A.obj"]
        assert scan().output_columns() == ["subj", "prop", "obj"]

    def test_select_validates_columns(self):
        Select(scan("A"), [Comparison("A.prop", "=", 1)])
        with pytest.raises(PlanError):
            Select(scan("A"), [Comparison("B.prop", "=", 1)])

    def test_select_requires_predicates(self):
        with pytest.raises(PlanError):
            Select(scan(), [])
        with pytest.raises(PlanError):
            Select(scan(), ["not a predicate"])

    def test_project_rename(self):
        p = Project(scan("A"), [("s", "A.subj")])
        assert p.output_columns() == ["s"]

    def test_project_duplicate_outputs_rejected(self):
        with pytest.raises(PlanError):
            Project(scan("A"), [("s", "A.subj"), ("s", "A.obj")])

    def test_join_output_concatenates(self):
        j = Join(scan("A"), scan("B"), on=[("A.subj", "B.subj")])
        assert j.output_columns() == [
            "A.subj", "A.prop", "A.obj", "B.subj", "B.prop", "B.obj",
        ]

    def test_join_rejects_overlapping_names(self):
        with pytest.raises(PlanError):
            Join(scan(), scan(), on=[("subj", "subj")])

    def test_join_validates_keys(self):
        with pytest.raises(PlanError):
            Join(scan("A"), scan("B"), on=[("A.nope", "B.subj")])

    def test_group_by_output(self):
        g = GroupBy(scan("A"), keys=["A.prop"], count_column="n")
        assert g.output_columns() == ["A.prop", "n"]

    def test_group_by_global_count(self):
        g = GroupBy(scan("A"), keys=[])
        assert g.output_columns() == ["count"]

    def test_having_requires_group_by(self):
        g = GroupBy(scan("A"), keys=["A.prop"])
        Having(g, Comparison("count", ">", 1))
        with pytest.raises(PlanError):
            Having(scan("A"), Comparison("count", ">", 1))

    def test_union_arity_check(self):
        one = Project(scan("A"), [("s", "A.subj")])
        two = Project(scan("B"), [("s", "B.subj"), ("o", "B.obj")])
        Union([one, one])
        with pytest.raises(PlanError):
            Union([one, two])

    def test_union_requires_inputs(self):
        with pytest.raises(PlanError):
            Union([])

    def test_walk_and_count(self):
        j = Join(scan("A"), scan("B"), on=[("A.subj", "B.subj")])
        g = GroupBy(j, keys=["B.prop"])
        assert count_operators(g) == 4
        kinds = [type(n).__name__ for n in walk(g)]
        assert kinds == ["GroupBy", "Join", "Scan", "Scan"]

    def test_distinct_passthrough_columns(self):
        d = Distinct(scan("A"))
        assert d.output_columns() == scan("A").output_columns()


class TestRelation:
    def test_basic_construction(self):
        r = Relation({"a": [1, 2], "b": [3, 4]})
        assert r.n_rows == 2
        assert r.to_tuples() == [(1, 3), (2, 4)]

    def test_ragged_rejected(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            Relation({"a": [1, 2], "b": [3]})

    def test_empty_relation(self):
        r = Relation.empty(["a", "b"])
        assert r.n_rows == 0
        assert r.to_tuples() == []

    def test_from_rows_round_trip(self):
        r = Relation.from_rows(["a", "b"], [(1, 2), (3, 4)])
        assert r.to_tuples() == [(1, 2), (3, 4)]

    def test_missing_column(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            Relation({"a": [1]}).column("b")

    def test_decoded_tuples(self):
        from repro.dictionary import Dictionary

        d = Dictionary(["<x>", "<y>"])
        r = Relation({"val": [0, 1], "n": [10, 20]}, oid_columns={"val"})
        assert r.decoded_tuples(d) == [("<x>", 10), ("<y>", 20)]

    def test_sorted_tuples_with_order(self):
        r = Relation({"a": [2, 1], "b": [5, 6]})
        assert r.sorted_tuples(order=["b", "a"]) == [(5, 2), (6, 1)]

    def test_needs_columns(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            Relation({})
