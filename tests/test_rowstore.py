"""Tests for the row-store engine: correctness, access paths, costs."""

import numpy as np
import pytest

from repro.colstore import ColumnStoreEngine
from repro.errors import StorageError
from repro.plan import (
    Comparison,
    Distinct,
    GroupBy,
    Having,
    Join,
    Project,
    Scan,
    Select,
    Union,
)
from repro.rowstore import RowStoreEngine

PERMS = {
    "spo": ["subj", "prop", "obj"],
    "pso": ["prop", "subj", "obj"],
    "pos": ["prop", "obj", "subj"],
    "osp": ["obj", "subj", "prop"],
}


def make_engine(clustering="pso", secondary=("pos", "osp"), n=None, data=None):
    engine = RowStoreEngine()
    if data is None:
        data = {
            "subj": np.array([0, 1, 2, 3, 4, 5]),
            "prop": np.array([10, 10, 11, 11, 12, 12]),
            "obj": np.array([20, 21, 20, 22, 23, 20]),
        }
    engine.create_table(
        "t",
        data,
        sort_by=PERMS[clustering],
        indexes=[{"name": f"idx_{p}", "columns": PERMS[p]} for p in secondary],
    )
    return engine


def scan(alias=None, table="t"):
    return Scan(table, ["subj", "prop", "obj"], alias=alias)


class TestDDL:
    def test_duplicate_table_rejected(self):
        engine = make_engine()
        with pytest.raises(StorageError):
            engine.create_table("t", {"x": [1]})

    def test_index_on_missing_column_rejected(self):
        engine = RowStoreEngine()
        with pytest.raises(StorageError):
            engine.create_table(
                "u", {"x": [1]}, sort_by=["x"],
                indexes=[{"name": "bad", "columns": ["y"]}],
            )

    def test_clustered_index_created(self):
        engine = make_engine()
        table = engine.table("t")
        assert table.clustered_index() is not None
        assert len(table.secondary_indexes()) == 2

    def test_heap_sorted_by_clustering(self):
        engine = make_engine("pso")
        rows = engine.table("t").rows
        keys = [(r[1], r[0], r[2]) for r in rows]  # prop, subj, obj
        assert keys == sorted(keys)

    def test_database_bytes_includes_indexes(self):
        engine = make_engine()
        table = engine.table("t")
        assert table.bytes_on_disk() > table.heap_segment.nbytes


class TestExecutionCorrectness:
    """The row store must compute the same answers as the column store."""

    @pytest.fixture
    def engines(self):
        rng = np.random.default_rng(3)
        n = 2000
        data = {
            "subj": rng.integers(0, 300, n),
            "prop": rng.integers(0, 10, n),
            "obj": rng.integers(0, 100, n),
        }
        row = make_engine(data=data)
        col = ColumnStoreEngine()
        col.create_table("t", data, sort_by=PERMS["pso"])
        return row, col

    def assert_same(self, engines, plan):
        row, col = engines
        got = row.execute(plan).sorted_tuples(order=plan.output_columns())
        expected = col.execute(plan).sorted_tuples(order=plan.output_columns())
        assert got == expected
        return got

    def test_select_equality(self, engines):
        plan = Select(scan(), [Comparison("prop", "=", 3)])
        rows = self.assert_same(engines, plan)
        assert len(rows) > 0

    def test_select_conjunction(self, engines):
        plan = Select(
            scan(), [Comparison("prop", "=", 3), Comparison("obj", "!=", 5)]
        )
        self.assert_same(engines, plan)

    def test_join_on_subject(self, engines):
        a = Select(scan("A"), [Comparison("A.prop", "=", 3)])
        b = Select(scan("B"), [Comparison("B.prop", "=", 4)])
        plan = Join(a, b, on=[("A.subj", "B.subj")])
        rows = self.assert_same(engines, plan)
        assert len(rows) > 0

    def test_join_object_object(self, engines):
        a = Select(scan("A"), [Comparison("A.prop", "=", 1)])
        b = Select(scan("B"), [Comparison("B.prop", "=", 2)])
        plan = Join(a, b, on=[("A.obj", "B.obj")])
        self.assert_same(engines, plan)

    def test_group_by(self, engines):
        plan = GroupBy(scan(), keys=["prop"], count_column="n")
        self.assert_same(engines, plan)

    def test_group_by_global(self, engines):
        plan = GroupBy(scan(), keys=[], count_column="n")
        rows = self.assert_same(engines, plan)
        assert rows == [(2000,)]

    def test_having(self, engines):
        plan = Having(
            GroupBy(scan(), keys=["obj"], count_column="n"),
            Comparison("n", ">", 20),
        )
        self.assert_same(engines, plan)

    def test_union_distinct(self, engines):
        one = Project(
            Select(scan("A"), [Comparison("A.prop", "=", 1)]),
            [("s", "A.subj")],
        )
        two = Project(
            Select(scan("B"), [Comparison("B.prop", "=", 2)]),
            [("s", "B.subj")],
        )
        self.assert_same(engines, Union([one, two], distinct=True))
        self.assert_same(engines, Union([one, two], distinct=False))

    def test_distinct(self, engines):
        plan = Distinct(Project(scan("A"), [("o", "A.obj")]))
        self.assert_same(engines, plan)

    def test_three_way_join(self, engines):
        a = Select(scan("A"), [Comparison("A.prop", "=", 1)])
        b = Select(scan("B"), [Comparison("B.prop", "=", 2)])
        c = Select(scan("C"), [Comparison("C.prop", "=", 3)])
        plan = Join(
            Join(a, b, on=[("A.subj", "B.subj")]),
            c,
            on=[("B.subj", "C.subj")],
        )
        self.assert_same(engines, plan)

    def test_missing_constant_empty(self, engines):
        plan = Select(scan(), [Comparison("prop", "=", None)])
        assert self.assert_same(engines, plan) == []

    def test_inequality_only_seq_scan(self, engines):
        plan = Select(scan(), [Comparison("obj", "!=", 5)])
        self.assert_same(engines, plan)


class TestAccessPathBehaviour:
    def big_engine(self, clustering, secondary):
        rng = np.random.default_rng(0)
        n = 50_000
        data = {
            "subj": rng.integers(0, 10_000, n),
            "prop": np.sort(rng.integers(0, 50, n)),  # any order; resorted
            "obj": rng.integers(0, 5_000, n),
        }
        return make_engine(clustering=clustering, secondary=secondary, data=data)

    def test_pso_clustering_beats_spo_for_property_queries(self):
        """The paper's central row-store finding: queries binding the
        property read far less through PSO clustering than SPO."""
        plan = Select(scan(), [Comparison("prop", "=", 7)])
        times = {}
        for clustering in ("spo", "pso"):
            engine = self.big_engine(clustering, secondary=())
            engine.make_cold()
            _, timing = engine.run(plan)
            times[clustering] = timing
        assert times["pso"].bytes_read < times["spo"].bytes_read / 3
        assert times["pso"].real_seconds < times["spo"].real_seconds

    def test_secondary_index_used_when_better(self):
        """With SPO clustering, a POS secondary turns a full scan into an
        index lookup (paying scattered heap fetches)."""
        plan = Select(
            scan(), [Comparison("prop", "=", 7), Comparison("obj", "=", 100)]
        )
        without = self.big_engine("spo", secondary=())
        with_idx = self.big_engine("spo", secondary=("pos",))
        without.make_cold()
        _, t_without = without.run(plan)
        with_idx.make_cold()
        _, t_with = with_idx.run(plan)
        assert t_with.bytes_read < t_without.bytes_read
        assert t_with.real_seconds < t_without.real_seconds

    def test_hot_cheaper_than_cold(self):
        engine = self.big_engine("pso", secondary=("pos",))
        plan = Select(scan(), [Comparison("prop", "=", 7)])
        engine.make_cold()
        _, cold = engine.run(plan)
        _, hot = engine.run(plan)
        assert hot.real_seconds < cold.real_seconds
        assert hot.bytes_read == 0

    def test_index_nested_loop_for_small_outer(self):
        """A highly selective outer probes the inner's index instead of
        scanning the inner heap: far fewer bytes than two full scans."""
        engine = self.big_engine("pso", secondary=("spo",))
        a = Select(
            scan("A"),
            [Comparison("A.prop", "=", 7), Comparison("A.obj", "=", 100)],
        )
        b = scan("B")
        plan = Join(
            Project(a, [("s", "A.subj")]), b, on=[("s", "B.subj")]
        )
        engine.make_cold()
        relation, timing = engine.run(plan)
        heap_bytes = engine.table("t").heap_segment.nbytes
        assert timing.bytes_read < heap_bytes / 2

    def test_hash_join_for_large_outer(self):
        """A large outer falls back to a hash join: full scans, but few
        seek-bound requests."""
        engine = self.big_engine("pso", secondary=("spo",))
        a = Select(scan("A"), [Comparison("A.prop", "=", 7)])
        b = scan("B")
        plan = Join(
            Project(a, [("s", "A.subj")]), b, on=[("s", "B.subj")]
        )
        engine.make_cold()
        _, timing = engine.run(plan)
        # Far fewer requests than one-per-outer-row probing would need.
        assert timing.io_requests < 500

    def test_plan_operator_overhead(self):
        engine = make_engine()
        small = Project(scan("A"), [("s", "A.subj")])
        parts = [
            Project(scan(f"A{i}"), [("s", f"A{i}.subj")]) for i in range(40)
        ]
        big = Union(parts, distinct=False)
        _, t_small = engine.run(small)
        _, t_big = engine.run(big)
        assert t_big.user_seconds > t_small.user_seconds * 5


class TestRowVsColumnCosts:
    def test_row_store_cpu_slower_than_column_store(self):
        """Tables 6/7: the column store wins by an order of magnitude on
        identical work."""
        rng = np.random.default_rng(1)
        n = 100_000
        data = {
            "subj": rng.integers(0, 30_000, n),
            "prop": rng.integers(0, 50, n),
            "obj": rng.integers(0, 10_000, n),
        }
        row = make_engine(data=data, secondary=())
        col = ColumnStoreEngine()
        col.create_table("t", data, sort_by=PERMS["pso"])
        plan = GroupBy(scan(), keys=["prop"], count_column="n")
        # Hot runs: compare pure CPU.
        row.run(plan)
        col.run(plan)
        _, t_row = row.run(plan)
        _, t_col = col.run(plan)
        # Fixed per-query overheads dilute the ratio at unit-test scale;
        # the per-tuple gap itself is ~10x (see the cost models).
        assert t_row.user_seconds > 2.5 * t_col.user_seconds


class TestAccessPathRegressions:
    def test_contradictory_equalities_on_indexed_column(self):
        """Regression (found by differential testing): two different
        equality constants on the same indexed column must yield the empty
        result — only the predicate instance bound into the index prefix is
        satisfied by the range; the other stays a residual filter."""
        engine = make_engine("pso")
        plan = Select(
            scan(),
            [Comparison("prop", "=", 10), Comparison("prop", "=", 11)],
        )
        assert engine.execute(plan).n_rows == 0

    def test_duplicate_identical_equalities(self):
        engine = make_engine("pso")
        plan = Select(
            scan(),
            [Comparison("prop", "=", 10), Comparison("prop", "=", 10)],
        )
        assert engine.execute(plan).n_rows == 2

    def test_scan_column_subset_alignment(self):
        """Regression: a scan exposing a column subset must project
        physical rows (the wide property table exposed misalignment)."""
        engine = RowStoreEngine()
        engine.create_table(
            "wide",
            {"a": np.array([1, 2]), "b": np.array([10, 20]),
             "c": np.array([100, 200])},
            sort_by=["a"],
        )
        plan = Scan("wide", ["c", "a"])
        rel = engine.execute(plan)
        assert rel.sorted_tuples(order=["c", "a"]) == [(100, 1), (200, 2)]
