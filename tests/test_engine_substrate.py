"""Tests for the simulated disk, buffer pool, clock, and machine profiles."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import (
    MACHINE_A,
    MACHINE_B,
    MACHINE_C,
    MACHINES,
    BufferPool,
    QueryClock,
    SimulatedDisk,
)
from repro.errors import BufferPoolError

MB = 1024 * 1024


def make_pool(capacity_bytes=1024 * 1024, machine=MACHINE_A, page_size=8192,
              max_run_bytes=None):
    disk = SimulatedDisk(page_size=page_size)
    clock = QueryClock(machine)
    pool = BufferPool(disk, clock, capacity_bytes, max_run_bytes=max_run_bytes)
    return disk, clock, pool


class TestSimulatedDisk:
    def test_segments_page_aligned_and_disjoint(self):
        disk = SimulatedDisk(page_size=100)
        a = disk.create_segment("a", 250)
        b = disk.create_segment("b", 10)
        assert a.page_span() == (0, 3)
        assert b.page_span() == (3, 4)

    def test_duplicate_segment_rejected(self):
        disk = SimulatedDisk()
        disk.create_segment("x", 10)
        with pytest.raises(BufferPoolError):
            disk.create_segment("x", 10)

    def test_unknown_segment_rejected(self):
        with pytest.raises(BufferPoolError):
            SimulatedDisk().segment("ghost")

    def test_total_bytes(self):
        disk = SimulatedDisk()
        disk.create_segment("a", 100)
        disk.create_segment("b", 200)
        assert disk.total_bytes() == 300

    def test_page_span_validates_range(self):
        disk = SimulatedDisk(page_size=100)
        seg = disk.create_segment("a", 250)
        with pytest.raises(BufferPoolError):
            seg.page_span(200, 100)
        with pytest.raises(BufferPoolError):
            seg.page_span(-1, 10)

    def test_empty_read_span(self):
        disk = SimulatedDisk(page_size=100)
        seg = disk.create_segment("a", 250)
        assert seg.page_span(10, 0) == (0, 0)


class TestBufferPool:
    def test_cold_read_charges_full_bytes(self):
        disk, clock, pool = make_pool()
        seg = disk.create_segment("col", 10 * 8192)
        transferred = pool.read_segment(seg)
        assert transferred == 10 * 8192
        assert clock.bytes_read() == 10 * 8192

    def test_hot_read_is_free(self):
        disk, clock, pool = make_pool()
        seg = disk.create_segment("col", 10 * 8192)
        pool.read_segment(seg)
        before = clock.timing()
        assert pool.read_segment(seg) == 0
        after = clock.timing()
        assert after.real_seconds == before.real_seconds
        assert after.bytes_read == before.bytes_read

    def test_clear_makes_reads_cold_again(self):
        disk, clock, pool = make_pool()
        seg = disk.create_segment("col", 4 * 8192)
        pool.read_segment(seg)
        pool.clear()
        assert pool.read_segment(seg) == 4 * 8192

    def test_sequential_read_is_one_request(self):
        disk, clock, pool = make_pool()
        seg = disk.create_segment("col", 100 * 8192)
        pool.read_segment(seg)
        assert clock.timing().io_requests == 1

    def test_max_run_bytes_splits_requests(self):
        disk, clock, pool = make_pool(max_run_bytes=8192)
        seg = disk.create_segment("col", 10 * 8192)
        pool.read_segment(seg)
        assert clock.timing().io_requests == 10

    def test_small_requests_are_latency_bound(self):
        """A 4x faster disk barely helps an engine issuing tiny requests
        (the paper's C-Store observation, Section 3)."""
        times = {}
        for machine in (MACHINE_A, MACHINE_B):
            disk, clock, pool = make_pool(
                machine=machine, max_run_bytes=64 * 1024,
                capacity_bytes=512 * MB,
            )
            seg = disk.create_segment("col", 100 * MB)
            pool.read_segment(seg)
            times[machine.name] = clock.timing().real_seconds
        speedup = times["A"] / times["B"]
        bandwidth_ratio = MACHINE_B.read_bandwidth / MACHINE_A.read_bandwidth
        assert speedup < bandwidth_ratio / 2  # far from the 3.7x available

    def test_large_requests_exploit_bandwidth(self):
        times = {}
        for machine in (MACHINE_A, MACHINE_B):
            disk, clock, pool = make_pool(machine=machine, capacity_bytes=512 * MB)
            seg = disk.create_segment("col", 100 * MB)
            pool.read_segment(seg)
            times[machine.name] = clock.timing().real_seconds
        speedup = times["A"] / times["B"]
        assert speedup > 3.0

    def test_eviction_lru(self):
        disk, clock, pool = make_pool(capacity_bytes=2 * 8192)
        a = disk.create_segment("a", 8192)
        b = disk.create_segment("b", 8192)
        c = disk.create_segment("c", 8192)
        pool.read_segment(a)
        pool.read_segment(b)
        pool.read_segment(c)  # evicts a
        assert not pool.is_resident(a)
        assert pool.is_resident(b)
        assert pool.is_resident(c)

    def test_lru_touch_on_hit(self):
        disk, clock, pool = make_pool(capacity_bytes=2 * 8192)
        a = disk.create_segment("a", 8192)
        b = disk.create_segment("b", 8192)
        c = disk.create_segment("c", 8192)
        pool.read_segment(a)
        pool.read_segment(b)
        pool.read_segment(a)  # touch a; b becomes LRU
        pool.read_segment(c)  # evicts b
        assert pool.is_resident(a)
        assert not pool.is_resident(b)

    def test_partial_range_read(self):
        disk, clock, pool = make_pool()
        seg = disk.create_segment("col", 100 * 8192)
        transferred = pool.read(seg, first_byte=0, nbytes=8192)
        assert transferred == 8192

    def test_read_pages_scattered(self):
        disk, clock, pool = make_pool()
        seg = disk.create_segment("col", 100 * 8192)
        transferred = pool.read_pages(seg, [0, 5, 6, 7, 50])
        assert transferred == 5 * 8192
        # runs: [0], [5,6,7], [50] -> 3 requests
        assert clock.timing().io_requests == 3

    def test_read_pages_out_of_range(self):
        disk, clock, pool = make_pool()
        seg = disk.create_segment("col", 10 * 8192)
        with pytest.raises(BufferPoolError):
            pool.read_pages(seg, [100])

    def test_read_pages_hit_then_miss(self):
        disk, clock, pool = make_pool()
        seg = disk.create_segment("col", 10 * 8192)
        pool.read_pages(seg, [0, 1])
        assert pool.read_pages(seg, [0, 1, 2]) == 8192

    def test_tiny_pool_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(BufferPoolError):
            BufferPool(disk, QueryClock(MACHINE_A), 100)


class TestQueryClock:
    def test_real_is_cpu_plus_io(self):
        clock = QueryClock(MACHINE_A)
        clock.charge_cpu(1.0)
        clock.charge_io(MACHINE_A.read_bandwidth, 0)  # exactly 1 second
        assert clock.real_seconds() == pytest.approx(2.0)
        assert clock.user_seconds() == pytest.approx(1.0)

    def test_cpu_scale_applies(self):
        clock = QueryClock(MACHINE_B)
        clock.charge_cpu(1.0)
        assert clock.user_seconds() == pytest.approx(MACHINE_B.cpu_scale)

    def test_reset(self):
        clock = QueryClock(MACHINE_A)
        clock.charge_cpu(1.0)
        clock.reset()
        assert clock.real_seconds() == 0.0
        assert clock.io_history() == [(0.0, 0)]

    def test_negative_charges_rejected(self):
        clock = QueryClock(MACHINE_A)
        with pytest.raises(ValueError):
            clock.charge_cpu(-1)
        with pytest.raises(ValueError):
            clock.charge_io(-1, 0)

    def test_io_history_monotone(self):
        clock = QueryClock(MACHINE_A)
        for _ in range(5):
            clock.charge_io(1024, 1)
        history = clock.io_history()
        times = [t for t, _ in history]
        sizes = [b for _, b in history]
        assert times == sorted(times)
        assert sizes == sorted(sizes)
        assert sizes[-1] == 5 * 1024

    def test_timing_addition(self):
        clock = QueryClock(MACHINE_A)
        clock.charge_cpu(1.0)
        t = clock.timing() + clock.timing()
        assert t.user_seconds == pytest.approx(2.0)


class TestMachines:
    def test_table3_constants(self):
        assert MACHINE_A.raid_disks == 2 and MACHINE_A.raid_level == 0
        assert MACHINE_B.raid_disks == 10 and MACHINE_B.raid_level == 5
        assert MACHINE_C.raid_disks == 3 and MACHINE_C.raid_level == 0
        assert MACHINE_B.read_bandwidth > 3 * MACHINE_A.read_bandwidth

    def test_machines_registry(self):
        assert set(MACHINES) == {"A", "B", "C"}

    def test_table3_row_fields(self):
        row = MACHINE_A.table3_row()
        assert row["Num. of CPU"] == 1
        assert "AMD" in row["CPU"]
        assert row["RAM size"] == "2 GB"

    def test_machine_b_user_time_slightly_higher(self):
        """Paper: user times slightly higher on B despite faster clock."""
        assert MACHINE_B.cpu_scale > MACHINE_A.cpu_scale


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=8),
    page_size=st.sampled_from([512, 4096, 8192]),
)
def test_property_cold_then_hot(sizes, page_size):
    """Any cold read transfers everything once; a repeat transfers nothing."""
    disk = SimulatedDisk(page_size=page_size)
    clock = QueryClock(MACHINE_A)
    pool = BufferPool(disk, clock, capacity_bytes=100 * MB)
    segments = [
        disk.create_segment(f"s{i}", n * page_size) for i, n in enumerate(sizes)
    ]
    total = sum(pool.read_segment(s) for s in segments)
    assert total == sum(n * page_size for n in sizes)
    assert sum(pool.read_segment(s) for s in segments) == 0
