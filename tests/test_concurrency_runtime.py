"""The runtime race harness (repro.observe.race) and the determinism
cross-check (repro.analysis.concurrency.determinism).

The injected-violation tests are the fail-loud proof: an unguarded write
to an annotated structure — including the real ``GLOBAL_STATS`` — is
recorded with its structure, op, thread, and missing lock.
"""

import threading

import pytest

from repro.analysis.concurrency.determinism import run_concurrency_harness
from repro.observe.race import (
    InstrumentedLock,
    enable_race_check,
    guard_lock,
    race_check_enabled,
    race_report,
    reset_race_state,
    shared_state,
)


@pytest.fixture
def race_check():
    """Enable the write barrier for one test, restoring prior state."""
    was_enabled = race_check_enabled()
    enable_race_check(True)
    reset_race_state()
    yield
    reset_race_state()
    enable_race_check(was_enabled)


# ---------------------------------------------------------------------------
# the write barrier
# ---------------------------------------------------------------------------

class TestWriteBarrier:
    def test_guarded_mutations_record_clean(self, race_check):
        lock = guard_lock("t.clean")
        stats = shared_state("t.clean", {"hits": 0}, lock)
        with lock:
            stats["hits"] += 1
            stats.update(misses=0)
        report = race_report()
        assert report["violation_count"] == 0
        assert report["structures"]["t.clean"] == {
            "threads": 1, "mutations": 2, "unguarded": 0,
        }

    def test_unguarded_mutation_is_a_violation(self, race_check):
        lock = guard_lock("t.dirty")
        stats = shared_state("t.dirty", {"hits": 0}, lock)
        stats["hits"] += 1
        report = race_report()
        assert report["violation_count"] == 1
        event = report["violations"][0]
        assert event["structure"] == "t.dirty"
        assert event["op"] == "__setitem__"
        assert event["thread"] == threading.get_ident()
        assert event["lock"] == "t.dirty"

    def test_lock_held_by_another_thread_does_not_count(self, race_check):
        lock = guard_lock("t.other")
        stats = shared_state("t.other", {"hits": 0}, lock)
        lock.acquire()
        try:
            worker = threading.Thread(
                target=lambda: stats.update(hits=1)
            )
            worker.start()
            worker.join()
        finally:
            lock.release()
        assert race_report()["violation_count"] == 1

    def test_list_mutators_are_monitored(self, race_check):
        lock = guard_lock("t.list")
        active = shared_state("t.list", [], lock)
        with lock:
            active.append(1)
            active.extend([2, 3])
            active.remove(2)
            active.pop()
        active.append(4)  # the one unguarded op
        report = race_report()
        assert report["structures"]["t.list"]["mutations"] == 5
        assert report["structures"]["t.list"]["unguarded"] == 1

    def test_construction_records_nothing(self, race_check):
        shared_state("t.init", {"seed": 1}, guard_lock("t.init"))
        shared_state("t.init2", [1, 2, 3], guard_lock("t.init2"))
        assert race_report()["structures"] == {}

    def test_disabled_barrier_records_nothing(self):
        was_enabled = race_check_enabled()
        enable_race_check(False)
        reset_race_state()
        try:
            lock = guard_lock("t.off")
            stats = shared_state("t.off", {}, lock)
            stats["x"] = 1  # unguarded, but the barrier is off
            assert race_report()["structures"] == {}
            assert race_report()["enabled"] is False
        finally:
            enable_race_check(was_enabled)

    def test_shared_state_rejects_scalars(self):
        with pytest.raises(TypeError, match="only wraps dicts and lists"):
            shared_state("t.bad", 42, guard_lock("t.bad"))

    def test_injected_unguarded_write_on_global_stats(self, race_check):
        # The acceptance-criteria injection: mutate the real annotated
        # structure without its lock and the report names it.
        from repro.engine.buffer import GLOBAL_STATS, _GLOBAL_STATS_LOCK

        with _GLOBAL_STATS_LOCK:
            GLOBAL_STATS["page_hits"] += 0  # guarded: no violation
        GLOBAL_STATS["page_hits"] += 0  # unguarded: flagged
        report = race_report()
        entry = report["structures"]["engine.buffer.GLOBAL_STATS"]
        assert entry["mutations"] == 2
        assert entry["unguarded"] == 1
        assert report["violations"][0]["structure"] == (
            "engine.buffer.GLOBAL_STATS"
        )


class TestInstrumentedLock:
    def test_ownership_tracking(self):
        lock = InstrumentedLock("t.lock")
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
            assert lock.locked()
        assert not lock.held_by_current_thread()
        assert not lock.locked()

    def test_other_threads_do_not_appear_to_hold_it(self):
        lock = InstrumentedLock("t.lock")
        seen = {}
        lock.acquire()
        try:
            worker = threading.Thread(
                target=lambda: seen.update(
                    held=lock.held_by_current_thread(), locked=lock.locked()
                )
            )
            worker.start()
            worker.join()
        finally:
            lock.release()
        assert seen == {"held": False, "locked": True}

    def test_reentrant_lock_nests(self):
        lock = InstrumentedLock("t.rlock", reentrant=True)
        with lock:
            with lock:
                assert lock.held_by_current_thread()
            assert lock.held_by_current_thread()
        assert not lock.locked()

    def test_nonblocking_acquire_reports_failure(self):
        lock = InstrumentedLock("t.lock")
        lock.acquire()
        try:
            seen = {}
            worker = threading.Thread(
                target=lambda: seen.update(got=lock.acquire(blocking=False))
            )
            worker.start()
            worker.join()
            assert seen == {"got": False}
        finally:
            lock.release()


# ---------------------------------------------------------------------------
# the determinism cross-check
# ---------------------------------------------------------------------------

class TestDeterminismHarness:
    def test_threaded_replay_matches_serial_byte_for_byte(self):
        document = run_concurrency_harness(
            triples=1_500, queries=10, threads=4
        )
        assert document["ok"] is True
        determinism = document["determinism"]
        assert determinism["queries"] == 10
        assert determinism["threads"] == 4
        assert determinism["identical"] is True
        assert determinism["mismatches"] == []
        race = document["race"]
        assert race["violation_count"] == 0
        # The workload exercised the annotated buffer-pool counters from
        # more than one thread — the barrier was genuinely recording.
        assert race["structures"]["engine.buffer.GLOBAL_STATS"]["threads"] > 1

    def test_harness_restores_the_barrier_state(self):
        was_enabled = race_check_enabled()
        run_concurrency_harness(triples=1_500, queries=2, threads=2)
        assert race_check_enabled() == was_enabled
