"""Integration tests for the static-analysis layer.

The differential guarantee: every shipped benchmark query, planned on
every storage scheme, lints clean (no warning-or-worse diagnostics).
Plus: the frontend wiring, the CLI subcommands, the LogicalPlan
immutability seal and the Join disjoint-columns invariant.
"""

import json

import pytest

from repro.analysis import WARNING, lint_plan, worst
from repro.cli import main
from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.errors import PlanError
from repro.plan import Comparison, Join, Scan, Select
from repro.queries import ALL_QUERY_NAMES, build_query
from repro.storage import (
    build_property_table_store,
    build_triple_store,
    build_vertical_store,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(n_triples=4_000, n_properties=40, seed=11)


@pytest.fixture(scope="module")
def catalogs(dataset):
    built = {}
    for scheme, builder in (
        ("triple", build_triple_store),
        ("vertical", build_vertical_store),
        ("property_table", build_property_table_store),
    ):
        engine = ColumnStoreEngine()
        built[scheme] = builder(
            engine, dataset.triples, dataset.interesting_properties
        )
    return built


# ---------------------------------------------------------------------------
# differential: every shipped plan is clean
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scheme", ["triple", "vertical", "property_table"])
@pytest.mark.parametrize("query", ALL_QUERY_NAMES)
def test_shipped_queries_lint_clean(catalogs, scheme, query):
    plan = build_query(catalogs[scheme], query)
    flagged = worst(lint_plan(plan), at_least=WARNING)
    assert not flagged, "\n".join(d.render() for d in flagged)


def test_sql_frontend_lints(catalogs):
    from repro.sql.planner import plan_sql

    catalog = catalogs["triple"]
    sql = (
        "SELECT A.subj FROM triples AS A, triples AS B "
        "WHERE A.prop = B.subj AND A.subj = B.obj"
    )
    with pytest.raises(PlanError, match="domain-mismatch"):
        plan_sql(sql, catalog, lint="strict")
    # Default mode plans fine (logged, not raised).
    assert plan_sql(sql, catalog, lint="warn") is not None


def test_sparql_frontend_lints(catalogs, monkeypatch):
    from repro.sparql import parse_sparql
    from repro.sparql.executor import sparql_plan

    monkeypatch.setenv("REPRO_LINT", "strict")
    plan, names = sparql_plan(
        catalogs["vertical"],
        parse_sparql("SELECT ?s WHERE { ?s <type> <Text> }"),
    )
    assert plan is not None and names == ["s"]


def test_benchmark_frontend_lint_override(catalogs):
    plan = build_query(catalogs["vertical"], "q1", lint="strict")
    assert plan is not None


def test_optimizer_keeps_plans_lint_clean(dataset):
    from repro.core import RDFStore

    store = RDFStore.from_triples(
        dataset.triples[:2000], engine="column", scheme="triple"
    )
    rows = store.sql(
        "SELECT A.subj, B.obj FROM triples AS A, triples AS B "
        "WHERE A.obj = B.subj AND A.prop = '<type>'",
        optimize=True,
    )
    assert isinstance(rows, list)


def test_store_analyze(dataset):
    from repro.core import RDFStore

    store = RDFStore.from_triples(
        dataset.triples[:2000], engine="column", scheme="vertical"
    )
    assert not worst(store.analyze("q1"), at_least=WARNING)
    # SQL with a cross-domain join draws a warning (triple store: the
    # vertical scheme has no triples table to misuse).
    triple_store = RDFStore.from_triples(
        dataset.triples[:2000], engine="column", scheme="triple"
    )
    flagged = triple_store.analyze(
        "SELECT A.subj FROM triples AS A, triples AS B "
        "WHERE A.prop = B.subj AND A.subj = B.obj"
    )
    assert any(d.rule == "domain-mismatch" for d in flagged)


# ---------------------------------------------------------------------------
# verify wiring (satellite 2)
# ---------------------------------------------------------------------------

def test_verify_carries_diagnostics(dataset):
    from repro.verify import verify_dataset

    result = verify_dataset(dataset, queries=("q1", "q7"))
    assert result.ok
    assert result.lint_clean
    # Informational notes (dead scan columns) are retained, not hidden.
    assert all(len(item) == 3 for item in result.diagnostics)
    assert "lint clean" in result.render()


def test_verify_render_reports_warnings(dataset):
    from repro.analysis.diagnostics import Diagnostic
    from repro.verify import VerificationResult

    result = VerificationResult(configurations=["x"], queries=["q1"])
    result.diagnostics.append((
        "x", "q1",
        Diagnostic(
            rule="domain-mismatch", severity=WARNING, path="$",
            node="Join", message="mixed domains",
        ),
    ))
    assert not result.lint_clean
    assert "lint warnings" in result.render()


# ---------------------------------------------------------------------------
# CLI (tentpole surface + satellite 5's entry points)
# ---------------------------------------------------------------------------

class TestAnalyzeCommand:
    ARGS = ["--triples", "2000", "--properties", "20", "--seed", "1"]

    def test_clean_query_exits_zero(self, capsys):
        code = main(["analyze", "q1"] + self.ARGS)
        assert code == 0
        assert "0 finding(s) at warning+" in capsys.readouterr().out

    def test_all_queries_exit_zero(self, capsys):
        code = main(["analyze", "all", "--scheme", "triple"] + self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "analyzed 12 queries" in out

    def test_strict_promotes_info(self, capsys):
        # Shipped plans carry info-level dead-column notes: --strict fails.
        code = main(["analyze", "q1", "--scheme", "triple", "--strict"]
                    + self.ARGS)
        assert code == 1

    def test_broken_sql_exits_nonzero(self, capsys):
        code = main(
            [
                "analyze",
                "SELECT A.subj FROM triples AS A, triples AS B "
                "WHERE A.prop = B.subj AND A.subj = B.obj",
                "--scheme", "triple",
            ] + self.ARGS
        )
        assert code == 1
        assert "domain-mismatch" in capsys.readouterr().out

    def test_json_document(self, capsys):
        code = main(["analyze", "q1", "--json"] + self.ARGS)
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["sections"] == ["plan"]
        assert set(document["plan"]) == {"q1"}
        assert document["ok"] is True

    def test_unified_json_document(self, capsys):
        code = main(
            ["analyze", "q1", "--code", "--concurrency", "--static-only",
             "--json"] + self.ARGS
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["sections"] == ["plan", "code", "concurrency"]
        assert document["code"]["violations"] == []
        concurrency = document["concurrency"]
        assert concurrency["guarded"] == []
        assert concurrency["lock_order"]["graph"]["cycles"] == []
        assert concurrency["runtime"] is None  # --static-only
        assert document["ok"] is True

    def test_no_sections_is_an_error(self):
        assert main(["analyze"]) == 2


class TestLintCommand:
    def test_package_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 new violation(s)" in capsys.readouterr().out

    def test_seeded_violation_is_caught(self, tmp_path, capsys):
        package = tmp_path / "repro" / "engine"
        package.mkdir(parents=True)
        (package / "sneaky.py").write_text(
            "import time\n\n"
            "def cost():\n"
            "    return time.perf_counter()\n"
        )
        code = main(["lint", str(tmp_path / "repro")])
        assert code == 1
        out = capsys.readouterr().out
        assert "wall-clock-in-engine" in out
        assert "1 new violation(s)" in out

    def test_baseline_suppresses_and_ratchets(self, tmp_path, capsys):
        package = tmp_path / "repro" / "engine"
        package.mkdir(parents=True)
        bad = package / "sneaky.py"
        bad.write_text(
            "import time\n\n"
            "def cost():\n"
            "    return time.perf_counter()\n"
        )
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", str(tmp_path / "repro"),
            "--baseline", str(baseline), "--update-baseline",
        ]) == 0
        capsys.readouterr()
        # Baselined: clean exit, violation suppressed.
        assert main([
            "lint", str(tmp_path / "repro"), "--baseline", str(baseline),
        ]) == 0
        assert "1 suppressed by baseline" in capsys.readouterr().out
        # A second violation in the same scope exceeds the budget.
        bad.write_text(
            "import time\n\n"
            "def cost():\n"
            "    a = time.perf_counter()\n"
            "    return a + time.perf_counter()\n"
        )
        assert main([
            "lint", str(tmp_path / "repro"), "--baseline", str(baseline),
        ]) == 1
        # Fixing everything leaves the baseline entry stale.
        bad.write_text("def cost():\n    return 0\n")
        assert main([
            "lint", str(tmp_path / "repro"), "--baseline", str(baseline),
        ]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        package = tmp_path / "repro" / "colstore"
        package.mkdir(parents=True)
        (package / "j.py").write_text(
            "def go(a, b):\n    return join_indices(a, b)\n"
        )
        code = main(["lint", str(tmp_path / "repro"), "--json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["violations"][0]["rule"] == "join-sort-hint"


# ---------------------------------------------------------------------------
# LogicalPlan immutability + Join invariant (satellite 1)
# ---------------------------------------------------------------------------

class TestPlanInvariants:
    def test_nodes_are_sealed_after_construction(self):
        node = Scan("triples", ["subj", "prop", "obj"], alias="A")
        with pytest.raises(PlanError, match="immutable"):
            node.alias = "B"
        with pytest.raises(PlanError, match="immutable"):
            del node.table

    def test_join_seal(self):
        a = Scan("triples", ["subj", "prop", "obj"], alias="A")
        b = Scan("triples", ["subj", "prop", "obj"], alias="B")
        join = Join(a, b, on=[("A.subj", "B.subj")])
        with pytest.raises(PlanError, match="immutable"):
            join.on = []

    def test_select_seal(self):
        plan = Select(
            Scan("triples", ["subj", "prop", "obj"], alias="A"),
            [Comparison("A.subj", "=", 1)],
        )
        with pytest.raises(PlanError, match="immutable"):
            plan.predicates = []

    def test_join_disjoint_columns_error_names_overlap(self):
        a = Scan("triples", ["subj", "prop", "obj"], alias="A")
        also_a = Scan("triples", ["subj", "prop", "obj"], alias="A")
        with pytest.raises(PlanError) as excinfo:
            Join(a, also_a, on=[("A.subj", "A.subj")])
        message = str(excinfo.value)
        assert "disjoint column names" in message
        assert "A.subj" in message and "A.prop" in message

    def test_plans_survive_deepcopy_and_pickle(self):
        import copy
        import pickle

        plan = Select(
            Scan("triples", ["subj", "prop", "obj"], alias="A"),
            [Comparison("A.subj", "=", 1)],
        )
        for clone in (copy.deepcopy(plan), pickle.loads(pickle.dumps(plan))):
            assert clone.output_columns() == plan.output_columns()
            with pytest.raises(PlanError, match="immutable"):
                clone.predicates = []
