"""Tests for the AST codebase invariant checker and its ratchet baseline."""

import textwrap

import pytest

from repro.analysis import (
    CODE_RULES,
    apply_baseline,
    lint_package,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.errors import ReproError

ENGINE = "repro/engine/bad.py"
REPORT = "repro/bench/report.py"
ELSEWHERE = "repro/model/free.py"


def check(source, relpath):
    return lint_source(textwrap.dedent(source), relpath)


def fired(source, relpath):
    return {v.rule for v in check(source, relpath)}


# ---------------------------------------------------------------------------
# wall clock
# ---------------------------------------------------------------------------

class TestWallClock:
    def test_perf_counter_in_engine(self):
        source = """
        import time

        def cost():
            return time.perf_counter()
        """
        violations = check(source, ENGINE)
        assert [v.rule for v in violations] == ["wall-clock-in-engine"]
        assert violations[0].severity == "error"
        assert violations[0].symbol == "time.perf_counter"
        assert violations[0].scope == "cost"

    def test_from_import_alias(self):
        source = """
        from time import perf_counter as clock

        def cost():
            return clock()
        """
        assert "wall-clock-in-engine" in fired(source, ENGINE)

    def test_datetime_now(self):
        source = """
        from datetime import datetime

        def stamp():
            return datetime.now()
        """
        assert "wall-clock-in-engine" in fired(source, ENGINE)

    def test_wall_clock_allowed_outside_engines(self):
        # Observability genuinely measures wall time.
        source = """
        import time

        def observe():
            return time.perf_counter()
        """
        assert fired(source, "repro/observe/trace.py") == set()
        assert fired(source, ELSEWHERE) == set()

    def test_simulated_clock_not_flagged(self):
        source = """
        def cost(clock):
            return clock.advance(10)
        """
        assert fired(source, ENGINE) == set()


# ---------------------------------------------------------------------------
# randomness
# ---------------------------------------------------------------------------

class TestRandom:
    def test_module_global_random(self):
        source = """
        import random

        def jitter():
            return random.random()
        """
        violations = check(source, ENGINE)
        assert [v.rule for v in violations] == ["unseeded-random-in-engine"]
        assert violations[0].symbol == "random.random"

    def test_seeded_generator_is_fine(self):
        source = """
        import random

        def jitter(seed):
            return random.Random(seed).random()
        """
        assert fired(source, ENGINE) == set()

    def test_legacy_numpy_random(self):
        source = """
        import numpy as np

        def noise(n):
            return np.random.rand(n)
        """
        violations = check(source, ENGINE)
        assert [v.rule for v in violations] == ["unseeded-random-in-engine"]
        assert violations[0].symbol == "numpy.random.rand"

    def test_default_rng_with_seed_is_fine(self):
        source = """
        import numpy as np

        def noise(n, seed):
            return np.random.default_rng(seed).random(n)
        """
        assert fired(source, ENGINE) == set()

    def test_unseeded_default_rng_is_flagged(self):
        source = """
        import numpy as np

        def noise(n):
            return np.random.default_rng().random(n)
        """
        assert "unseeded-random-in-engine" in fired(source, ENGINE)

    def test_random_allowed_in_data_generator(self):
        source = """
        import random

        def sample():
            return random.random()
        """
        assert fired(source, "repro/data/barton.py") == set()


# ---------------------------------------------------------------------------
# set iteration
# ---------------------------------------------------------------------------

class TestSetIteration:
    def test_for_over_set_literal(self):
        source = """
        def report():
            for name in {"a", "b"}:
                print(name)
        """
        violations = check(source, REPORT)
        assert [v.rule for v in violations] == ["set-iteration-in-report"]
        assert violations[0].severity == "warning"

    def test_comprehension_over_set_call(self):
        source = """
        def report(rows):
            return [r for r in set(rows)]
        """
        assert "set-iteration-in-report" in fired(source, REPORT)

    def test_sorted_set_is_fine(self):
        source = """
        def report(rows):
            for r in sorted(set(rows)):
                print(r)
        """
        assert fired(source, REPORT) == set()

    def test_outside_report_paths(self):
        source = """
        def anywhere():
            for name in {"a", "b"}:
                print(name)
        """
        assert fired(source, ELSEWHERE) == set()


# ---------------------------------------------------------------------------
# join sort hint
# ---------------------------------------------------------------------------

class TestJoinSortHint:
    def test_missing_hint(self):
        source = """
        def execute(left, right):
            return join_indices(left, right)
        """
        violations = check(source, "repro/colstore/executor.py")
        assert [v.rule for v in violations] == ["join-sort-hint"]

    def test_hint_present(self):
        source = """
        def execute(left, right, hint):
            return join_indices(left, right, assume_sorted=hint)
        """
        assert fired(source, "repro/colstore/executor.py") == set()

    def test_method_call_form(self):
        source = """
        def execute(kernels, left, right):
            return kernels.join_indices(left, right)
        """
        assert "join-sort-hint" in fired(source, ELSEWHERE)


# ---------------------------------------------------------------------------
# plan mutation
# ---------------------------------------------------------------------------

class TestPlanMutation:
    def test_field_assignment_outside_init(self):
        source = """
        def rewrite(node, new_child):
            node.child = new_child
            return node
        """
        violations = check(source, "repro/plan/rewrite.py")
        assert [v.rule for v in violations] == ["plan-mutation"]
        assert violations[0].symbol == "child"

    def test_self_assignment_in_init_is_fine(self):
        source = """
        class Join:
            def __init__(self, left, right, on):
                self.left = left
                self.right = right
                self.on = on
        """
        assert fired(source, "repro/plan/logical.py") == set()

    def test_augmented_assignment(self):
        source = """
        def grow(node, more):
            node.predicates += more
        """
        assert "plan-mutation" in fired(source, ELSEWHERE)

    def test_tuple_unpacking_target(self):
        source = """
        def swap(node, a, b):
            node.left, node.right = b, a
        """
        violations = check(source, ELSEWHERE)
        assert [v.rule for v in violations] == [
            "plan-mutation", "plan-mutation"
        ]

    def test_generic_attribute_names_are_not_flagged(self):
        source = """
        def tune(config):
            config.value = 3
            config.threshold = 9
        """
        assert fired(source, ELSEWHERE) == set()


# ---------------------------------------------------------------------------
# fingerprints + baseline ratchet
# ---------------------------------------------------------------------------

class TestEngineInternalImport:
    def test_from_import_outside_exec(self):
        assert "engine-internal-import" in fired(
            "from repro.colstore.executor import ColumnExecutor\n",
            "repro/sql/planner.py",
        )

    def test_plain_import_outside_exec(self):
        assert "engine-internal-import" in fired(
            "import repro.rowstore.executor\n",
            "repro/core/store.py",
        )

    def test_package_member_import(self):
        # `from repro.colstore import executor` names the same module.
        assert "engine-internal-import" in fired(
            "from repro.colstore import executor\n",
            "repro/bench/runner.py",
        )

    def test_allowed_in_exec_and_api(self):
        for relpath in (
            "repro/exec/parity.py",
            "repro/api/__init__.py",
            "repro/colstore/__init__.py",
            "repro/colstore/executor.py",
        ):
            assert "engine-internal-import" not in fired(
                "from repro.colstore.executor import ColumnExecutor\n",
                relpath,
            ), relpath

    def test_other_engine_modules_are_fine(self):
        assert "engine-internal-import" not in fired(
            "from repro.colstore.engine import ColumnStoreEngine\n",
            "repro/core/store.py",
        )

    def test_rule_is_catalogued(self):
        assert "engine-internal-import" in CODE_RULES

    def test_package_tree_is_clean_of_new_imports(self):
        violations = [
            v for v in lint_package()
            if v.rule == "engine-internal-import"
        ]
        assert violations == []


class TestBaseline:
    SOURCE = """
    import time

    def cost():
        return time.perf_counter()
    """

    def violation(self):
        return check(self.SOURCE, ENGINE)[0]

    def test_fingerprint_is_line_free(self):
        v = self.violation()
        assert v.fingerprint == (
            "wall-clock-in-engine::repro/engine/bad.py::cost"
            "::time.perf_counter"
        )
        shifted = check("\n\n\n" + textwrap.dedent(self.SOURCE), ENGINE)[0]
        assert shifted.line != v.line
        assert shifted.fingerprint == v.fingerprint

    def test_round_trip(self, tmp_path):
        v = self.violation()
        path = tmp_path / "baseline.json"
        write_baseline(str(path), [v])
        assert load_baseline(str(path)) == {v.fingerprint: 1}
        text = path.read_text()
        assert text.endswith("\n")
        assert '"version": 1' in text

    def test_apply_suppresses_baselined(self):
        v = self.violation()
        new, suppressed, stale = apply_baseline([v], {v.fingerprint: 1})
        assert new == [] and suppressed == 1 and stale == []

    def test_apply_ratchets_on_count_increase(self):
        v = self.violation()
        new, suppressed, stale = apply_baseline(
            [v, v], {v.fingerprint: 1}
        )
        # Over budget: all occurrences reported, nothing silently kept.
        assert len(new) == 2 and suppressed == 0

    def test_apply_reports_stale_entries(self):
        new, suppressed, stale = apply_baseline([], {"gone::x::y::z": 2})
        assert new == [] and stale == ["gone::x::y::z"]

    def test_apply_without_baseline(self):
        v = self.violation()
        new, suppressed, stale = apply_baseline([v], None)
        assert new == [v]

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"entries": {"x": "lots"}, "version": 1}')
        with pytest.raises(ReproError, match="malformed"):
            load_baseline(str(path))
        path.write_text('{"entries": {}, "version": 99}')
        with pytest.raises(ReproError, match="version"):
            load_baseline(str(path))


# ---------------------------------------------------------------------------
# walking real trees
# ---------------------------------------------------------------------------

class TestEntryPoints:
    def test_rule_catalog(self):
        assert set(CODE_RULES) == {
            "wall-clock-in-engine", "unseeded-random-in-engine",
            "set-iteration-in-report", "join-sort-hint", "plan-mutation",
            "engine-internal-import",
        }

    def test_lint_paths_keys_relative_to_argument_parent(self, tmp_path):
        package = tmp_path / "repro" / "engine"
        package.mkdir(parents=True)
        (package / "clockish.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        violations = lint_paths([str(tmp_path / "repro")])
        assert [v.path for v in violations] == ["repro/engine/clockish.py"]

    def test_lint_paths_accepts_single_file(self, tmp_path):
        package = tmp_path / "repro" / "engine"
        package.mkdir(parents=True)
        target = package / "clockish.py"
        target.write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        # Relpath is computed against the file's parent: the engine dir
        # name alone does not select the simulated-cost rules, so key the
        # file through lint_source for single-file precision instead.
        assert lint_source(target.read_text(), "repro/engine/clockish.py")

    def test_installed_package_is_clean(self):
        violations = lint_package()
        assert violations == []

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", "repro/engine/x.py")
