"""Tests for the vectorized relational primitives (including hypothesis
equivalence against brute-force implementations)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.colstore.vectorops import (
    distinct_rows,
    factorize_rows,
    factorize_rows_shared,
    group_aggregate,
    group_count,
    join_indices,
)

keys = st.lists(st.integers(min_value=0, max_value=8), max_size=40)


class TestJoinIndices:
    def test_simple_join(self):
        li, ri = join_indices([1, 2, 3], [2, 3, 4])
        pairs = sorted(zip(li.tolist(), ri.tolist()))
        assert pairs == [(1, 0), (2, 1)]

    def test_many_to_many(self):
        li, ri = join_indices([1, 1], [1, 1, 1])
        assert len(li) == 6

    def test_empty_sides(self):
        for l, r in ([[], [1]], [[1], []], [[], []]):
            li, ri = join_indices(l, r)
            assert len(li) == len(ri) == 0

    def test_no_matches(self):
        li, ri = join_indices([1, 2], [3, 4])
        assert len(li) == 0

    def test_left_order_preserved(self):
        li, _ = join_indices([5, 1, 5, 2], [5, 1, 2])
        assert li.tolist() == sorted(li.tolist())


@given(keys, keys)
def test_property_join_matches_bruteforce(left, right):
    li, ri = join_indices(left, right)
    got = sorted(zip(li.tolist(), ri.tolist()))
    expected = sorted(
        (i, j)
        for i, l in enumerate(left)
        for j, r in enumerate(right)
        if l == r
    )
    assert got == expected


class TestFactorize:
    def test_single_column(self):
        codes, n = factorize_rows([np.array([5, 3, 5])])
        assert n == 2
        assert codes[0] == codes[2] != codes[1]

    def test_multi_column(self):
        codes, n = factorize_rows(
            [np.array([1, 1, 2]), np.array([1, 1, 1])]
        )
        assert n == 2
        assert codes[0] == codes[1] != codes[2]

    def test_empty(self):
        codes, n = factorize_rows([np.array([], dtype=np.int64)])
        assert n == 0 and len(codes) == 0

    def test_requires_arrays(self):
        with pytest.raises(ValueError):
            factorize_rows([])

    def test_shared_code_space(self):
        lc, rc = factorize_rows_shared(
            [np.array([1, 2])], [np.array([2, 3])]
        )
        assert lc[1] == rc[0]
        assert lc[0] != rc[1]


@given(keys, keys)
def test_property_shared_factorization_join_equivalence(left, right):
    """Joining on shared codes equals joining on raw values."""
    if not left or not right:
        return
    lc, rc = factorize_rows_shared([np.array(left)], [np.array(right)])
    li1, ri1 = join_indices(lc, rc)
    li2, ri2 = join_indices(left, right)
    assert sorted(zip(li1.tolist(), ri1.tolist())) == sorted(
        zip(li2.tolist(), ri2.tolist())
    )


class TestGroupCount:
    def test_counts(self):
        (k,), c = group_count([np.array([2, 1, 2, 2])])
        assert k.tolist() == [1, 2]
        assert c.tolist() == [1, 3]

    def test_multi_key(self):
        keys_out, c = group_count(
            [np.array([1, 1, 2]), np.array([7, 7, 7])]
        )
        assert keys_out[0].tolist() == [1, 2]
        assert keys_out[1].tolist() == [7, 7]
        assert c.tolist() == [2, 1]

    def test_empty(self):
        (k,), c = group_count([np.array([], dtype=np.int64)])
        assert len(k) == 0 and len(c) == 0


@given(keys)
def test_property_group_count_matches_counter(values):
    from collections import Counter

    (k,), c = group_count([np.array(values, dtype=np.int64)])
    assert dict(zip(k.tolist(), c.tolist())) == dict(Counter(values))


class TestDistinct:
    def test_distinct_single(self):
        idx = distinct_rows([np.array([3, 1, 3, 2])])
        values = np.array([3, 1, 3, 2])[idx]
        assert sorted(values.tolist()) == [1, 2, 3]

    def test_distinct_multi(self):
        a = np.array([1, 1, 1])
        b = np.array([2, 2, 3])
        idx = distinct_rows([a, b])
        assert len(idx) == 2

    def test_distinct_empty(self):
        assert len(distinct_rows([np.array([], dtype=np.int64)])) == 0


@given(keys, keys)
def test_property_distinct_matches_set(a, b):
    n = min(len(a), len(b))
    if n == 0:
        return
    arr_a, arr_b = np.array(a[:n]), np.array(b[:n])
    idx = distinct_rows([arr_a, arr_b])
    got = {(arr_a[i], arr_b[i]) for i in idx.tolist()}
    assert got == set(zip(a[:n], b[:n]))
    assert len(idx) == len(got)


class TestFastPathEquivalence:
    """The sorted / dense-code fast paths must match numpy's reference."""

    def test_sorted_factorize_matches_unique(self):
        array = np.array([3, 3, 5, 9, 9, 9, 12], dtype=np.int64)
        codes, n = factorize_rows([array])
        ref_uniques, ref_codes = np.unique(array, return_inverse=True)
        assert np.array_equal(codes, ref_codes)
        assert n == len(ref_uniques)

    def test_dense_unsorted_factorize_matches_unique(self):
        rng = np.random.default_rng(7)
        array = rng.integers(100, 160, size=500).astype(np.int64)
        codes, n = factorize_rows([array])
        ref_uniques, ref_codes = np.unique(array, return_inverse=True)
        assert np.array_equal(codes, ref_codes)
        assert n == len(ref_uniques)

    def test_sparse_factorize_matches_unique(self):
        array = np.array([10**12, 5, -(10**12), 5, 0], dtype=np.int64)
        codes, n = factorize_rows([array])
        ref_uniques, ref_codes = np.unique(array, return_inverse=True)
        assert np.array_equal(codes, ref_codes)
        assert n == len(ref_uniques)

    def test_multi_column_matches_unique_axis0(self):
        rng = np.random.default_rng(11)
        a = rng.integers(0, 40, size=300).astype(np.int64)
        b = rng.integers(-5, 30, size=300).astype(np.int64)
        codes, n = factorize_rows([a, b])
        ref_uniques, ref_codes = np.unique(
            np.column_stack([a, b]), axis=0, return_inverse=True
        )
        assert np.array_equal(codes, ref_codes.reshape(-1))
        assert n == len(ref_uniques)

    def test_join_sorted_right_detected_at_runtime(self):
        left = np.array([4, 2, 4, 9], dtype=np.int64)
        right = np.array([2, 2, 4, 8, 9], dtype=np.int64)  # sorted
        li, ri = join_indices(left, right)  # no assume_sorted hint
        li2, ri2 = join_indices(left, right, assume_sorted=True)
        assert np.array_equal(li, li2) and np.array_equal(ri, ri2)

    def test_join_dense_unsorted_right_matches_bruteforce(self):
        rng = np.random.default_rng(13)
        left = rng.integers(0, 50, size=80).astype(np.int64)
        right = rng.integers(0, 50, size=90).astype(np.int64)
        li, ri = join_indices(left, right)
        expected = [
            (i, j)
            for i in range(len(left))
            for j in range(len(right))
            if left[i] == right[j]
        ]
        assert sorted(zip(li.tolist(), ri.tolist())) == sorted(expected)
        # Stable: right indices ascend within each left row's run.
        for i in np.unique(li):
            run = ri[li == i]
            assert np.all(run[1:] > run[:-1])


@given(keys, keys)
def test_property_group_aggregate_matches_reference(a, b):
    n = min(len(a), len(b))
    if n == 0:
        return
    key_arr, val_arr = np.array(a[:n]), np.array(b[:n])
    got = group_aggregate([key_arr], val_arr, "min")
    expected = {}
    for k, v in zip(a[:n], b[:n]):
        expected[k] = min(v, expected.get(k, v))
    assert got.tolist() == [expected[k] for k in sorted(expected)]
