"""The lock-order (deadlock) analyzer (repro.analysis.concurrency.lockorder).

Injected fixture modules prove cycles are detected — lexically nested
``with`` blocks, call-graph propagation, and single-lock self-deadlock —
and that the shipped package's lock-acquisition graph is acyclic.
"""

import textwrap

from repro.analysis import build_lock_graph, lock_graph_document
from repro.analysis.concurrency import (
    lockorder_package,
    lockorder_paths,
    lockorder_source,
)


def lockorder(source, relpath="repro/server/fixture.py"):
    return lockorder_source(textwrap.dedent(source), relpath)


# ---------------------------------------------------------------------------
# cycles via lexical nesting
# ---------------------------------------------------------------------------

class TestLexicalCycles:
    def test_opposite_nesting_orders_are_a_cycle(self):
        violations = lockorder("""\
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def forward():
                with A:
                    with B:
                        pass

            def backward():
                with B:
                    with A:
                        pass
        """)
        assert [v.rule for v in violations] == ["lock-order-cycle"]
        assert violations[0].severity == "error"
        assert "deadlock" in violations[0].message
        assert violations[0].symbol == (
            "repro.server.fixture.A -> repro.server.fixture.B"
        )

    def test_consistent_order_is_clean(self):
        assert lockorder("""\
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def first():
                with A:
                    with B:
                        pass

            def second():
                with A:
                    with B:
                        pass
        """) == []

    def test_nonreentrant_self_nesting_is_a_cycle(self):
        violations = lockorder("""\
            import threading

            A = threading.Lock()

            def oops():
                with A:
                    with A:
                        pass
        """)
        assert [v.rule for v in violations] == ["lock-order-cycle"]
        assert violations[0].symbol == "repro.server.fixture.A"

    def test_rlock_self_nesting_is_exempt(self):
        assert lockorder("""\
            import threading

            A = threading.RLock()

            def fine():
                with A:
                    with A:
                        pass
        """) == []

    def test_guard_lock_reentrant_kwarg_is_exempt(self):
        assert lockorder("""\
            from repro.observe.race import guard_lock

            A = guard_lock("fixture.A", reentrant=True)

            def fine():
                with A:
                    with A:
                        pass
        """) == []


# ---------------------------------------------------------------------------
# cycles through the call graph
# ---------------------------------------------------------------------------

class TestCallGraphCycles:
    def test_lock_taken_inside_a_callee_closes_the_cycle(self):
        violations = lockorder("""\
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def helper():
                with B:
                    pass

            def forward():
                with A:
                    helper()

            def backward():
                with B:
                    with A:
                        pass
        """)
        assert [v.rule for v in violations] == ["lock-order-cycle"]

    def test_transitive_callee_locks_propagate(self):
        violations = lockorder("""\
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def inner():
                with B:
                    pass

            def middle():
                inner()

            def forward():
                with A:
                    middle()

            def backward():
                with B:
                    with A:
                        pass
        """)
        assert [v.rule for v in violations] == ["lock-order-cycle"]

    def test_self_method_calls_resolve(self):
        violations = lockorder("""\
            import threading

            A = threading.Lock()
            B = threading.Lock()

            class Pool:
                def _locked_helper(self):
                    with B:
                        pass

                def forward(self):
                    with A:
                        self._locked_helper()

                def backward(self):
                    with B:
                        with A:
                            pass
        """)
        assert [v.rule for v in violations] == ["lock-order-cycle"]


# ---------------------------------------------------------------------------
# cross-module resolution + instance locks
# ---------------------------------------------------------------------------

class TestCrossModule:
    def test_imported_lock_closes_a_cross_module_cycle(self, tmp_path):
        package = tmp_path / "repro"
        package.mkdir()
        (package / "a.py").write_text(textwrap.dedent("""\
            import threading

            A_LOCK = threading.Lock()
            B_LOCK = threading.Lock()

            def forward():
                with A_LOCK:
                    with B_LOCK:
                        pass
        """))
        (package / "b.py").write_text(textwrap.dedent("""\
            from repro.a import A_LOCK, B_LOCK

            def backward():
                with B_LOCK:
                    with A_LOCK:
                        pass
        """))
        violations = lockorder_paths([str(package)])
        assert [v.rule for v in violations] == ["lock-order-cycle"]
        assert violations[0].symbol == "repro.a.A_LOCK -> repro.a.B_LOCK"

    def test_instance_locks_are_modeled_per_class_attribute(self):
        violations = lockorder("""\
            import threading

            GLOBAL = threading.Lock()

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                def forward(self):
                    with self._lock:
                        with GLOBAL:
                            pass

                def backward(self):
                    with GLOBAL:
                        with self._lock:
                            pass
        """)
        assert [v.rule for v in violations] == ["lock-order-cycle"]


# ---------------------------------------------------------------------------
# the graph document + the shipped tree
# ---------------------------------------------------------------------------

def test_graph_document_records_edges_and_sites(tmp_path):
    package = tmp_path / "repro"
    package.mkdir()
    (package / "mod.py").write_text(textwrap.dedent("""\
        import threading

        OUTER = threading.Lock()
        INNER = threading.Lock()

        def nested():
            with OUTER:
                with INNER:
                    pass
    """))
    graph = build_lock_graph([str(package)])
    document = graph.to_document()
    assert set(document["locks"]) == {"repro.mod.OUTER", "repro.mod.INNER"}
    assert document["edges"] == [{
        "from": "repro.mod.OUTER",
        "to": "repro.mod.INNER",
        "path": "repro/mod.py",
        "line": 8,
    }]
    assert document["cycles"] == []


def test_shipped_package_graph_is_acyclic():
    assert lockorder_package() == []


def test_shipped_package_graph_knows_the_annotated_locks():
    document = lock_graph_document()
    lock_names = set(document["locks"])
    assert "repro.engine.buffer._GLOBAL_STATS_LOCK" in lock_names
    assert "repro.storage.compress._COMPRESS_STATS_LOCK" in lock_names
    assert document["cycles"] == []
