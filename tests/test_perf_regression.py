"""Tests for the regression engine, the perf CLI verbs, and the
always-on counter overhead bound."""

import copy
import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.observe.history import RunRecord, load_snapshot, write_snapshot
from repro.observe.regression import (
    DEFAULT_WALL_TOLERANCE,
    PerfComparison,
    canonical_json,
    compare_bench_documents,
    compare_records,
    first_difference,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
COMPARE_SCRIPT = REPO_ROOT / "scripts" / "compare_bench_json.py"


def make_record(name="run", wall=100.0, simulated=None, parameters=None):
    parameters = parameters if parameters is not None else {"triples": 10}
    from repro.observe.history import config_fingerprint

    return RunRecord(
        name=name,
        simulated=simulated if simulated is not None else {
            "totals": {"real_seconds": 1.25, "bytes_read": 4096},
            "rows": [["q2", 0.5], ["q3", 0.75]],
        },
        wall_ms=wall,
        parameters=parameters,
        config_fingerprint=config_fingerprint(parameters),
        counters={"buffer_pool": {"page_hits": 10}},
    )


class TestFirstDifference:
    def test_none_when_equal(self):
        assert first_difference({"a": [1, 2]}, {"a": [1, 2]}) is None

    def test_names_the_leaf(self):
        where = first_difference(
            {"a": {"b": [1, 2]}}, {"a": {"b": [1, 3]}}
        )
        assert where == "$.a.b[1]: 2 != 3"

    def test_reports_key_and_length_changes(self):
        assert "keys differ" in first_difference({"a": 1}, {"b": 1})
        assert "length" in first_difference([1], [1, 2])
        assert "type" in first_difference(1, "1")


class TestCompareRecords:
    def test_identical_rerun_passes(self):
        baseline = make_record()
        current = copy.deepcopy(baseline)
        comparison = compare_records(baseline, current)
        assert comparison.ok
        assert comparison.identical
        assert "OK" in comparison.render()

    def test_simulated_drift_fails_byte_identity(self):
        baseline = make_record()
        current = copy.deepcopy(baseline)
        # The injected regression: one simulated cost drifts by +1.
        current.simulated["totals"]["real_seconds"] += 1
        comparison = compare_records(baseline, current)
        assert not comparison.ok
        failures = comparison.failures()
        assert [f.metric for f in failures] == ["simulated"]
        assert "totals.real_seconds" in failures[0].detail

    def test_double_wall_trips_tolerance_gate(self):
        baseline = make_record(wall=100.0)
        current = make_record(wall=200.0)  # mocked 2x slowdown
        comparison = compare_records(baseline, current)
        assert not comparison.ok
        assert [f.metric for f in comparison.failures()] == ["wall_ms"]

    def test_wall_within_tolerance_passes(self):
        baseline = make_record(wall=100.0)
        current = make_record(wall=100.0 * DEFAULT_WALL_TOLERANCE * 0.99)
        assert compare_records(baseline, current).ok

    def test_wall_info_mode_never_gates(self):
        baseline = make_record(wall=100.0)
        current = make_record(wall=1000.0)
        comparison = compare_records(baseline, current, wall_gate=False)
        assert comparison.ok
        assert not comparison.identical  # the slowdown is still reported

    def test_custom_tolerance(self):
        baseline = make_record(wall=100.0)
        current = make_record(wall=190.0)
        assert not compare_records(baseline, current).ok
        assert compare_records(
            baseline, current, wall_tolerance=2.0
        ).ok

    def test_missing_wall_is_skipped(self):
        baseline = make_record(wall=None)
        current = make_record(wall=50.0)
        comparison = compare_records(baseline, current)
        assert comparison.ok
        wall = [d for d in comparison.diffs if d.metric == "wall_ms"][0]
        assert wall.status == "skip"

    def test_fingerprint_mismatch_fails(self):
        baseline = make_record(parameters={"triples": 10})
        current = make_record(parameters={"triples": 20})
        comparison = compare_records(baseline, current)
        assert not comparison.ok
        assert [f.metric for f in comparison.failures()] == [
            "config_fingerprint"
        ]

    def test_counter_changes_are_informational(self):
        baseline = make_record()
        current = copy.deepcopy(baseline)
        current.counters["buffer_pool"]["page_hits"] = 0
        comparison = compare_records(baseline, current)
        assert comparison.ok  # info rows never gate
        info = [d for d in comparison.diffs if d.status == "info"]
        assert any(d.metric == "counters.buffer_pool" for d in info)

    def test_to_dict_is_json_safe(self):
        comparison = compare_records(make_record(), make_record())
        document = json.loads(json.dumps(comparison.to_dict()))
        assert document["ok"] is True
        assert all("status" in d for d in document["diffs"])


class TestCompareBenchDocuments:
    def _documents(self):
        return [
            {"name": "figure6_q2", "rows": [["28", 0.5]],
             "meta": {"jobs": 1, "wall_ms": 100.0}},
        ]

    def test_meta_only_changes_are_identical(self):
        left = self._documents()
        right = copy.deepcopy(left)
        right[0]["meta"]["wall_ms"] = 130.0
        right[0]["meta"]["jobs"] = 4
        comparison = compare_bench_documents(left, right)
        assert comparison.ok
        simulated = comparison.diffs[0]
        assert simulated.metric == "simulated"
        assert simulated.status == "ok"

    def test_simulated_drift_fails(self):
        left = self._documents()
        right = copy.deepcopy(left)
        right[0]["rows"][0][1] += 1
        assert not compare_bench_documents(left, right).ok

    def test_wall_gate_optional(self):
        left = self._documents()
        right = copy.deepcopy(left)
        right[0]["meta"]["wall_ms"] = 500.0
        assert compare_bench_documents(left, right).ok
        assert not compare_bench_documents(
            left, right, wall_gate=True
        ).ok

    def test_rejects_non_lists(self):
        with pytest.raises(ValueError):
            compare_bench_documents({}, [])

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )


class TestPerfCli:
    def _snapshot(self, tmp_path, record, stem):
        directory = tmp_path / stem
        directory.mkdir()
        return write_snapshot(record, directory)

    def test_record_compare_report_round_trip(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path / "perf"))
        snapshot_dir = tmp_path / "snap"
        snapshot_dir.mkdir()
        code = cli_main([
            "perf", "record", "--experiment", "table2",
            "--name", "smoke", "--snapshot-dir", str(snapshot_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recorded smoke" in out
        snapshot = snapshot_dir / "BENCH_smoke.json"
        assert snapshot.exists()
        record = load_snapshot(snapshot)
        assert record.name == "smoke"
        assert record.parameters["experiments"] == ["table2"]

        # Identical snapshot compares clean.
        code = cli_main([
            "perf", "compare", str(snapshot), str(snapshot),
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

        # The ledger saw the run.
        code = cli_main(["perf", "report", "--name", "smoke"])
        assert code == 0
        assert "smoke" in capsys.readouterr().out

    def test_compare_detects_injected_drift(self, tmp_path, capsys):
        baseline = make_record("drifty")
        current = copy.deepcopy(baseline)
        current.simulated["totals"]["bytes_read"] += 1
        left = self._snapshot(tmp_path, baseline, "base")
        right = self._snapshot(tmp_path, current, "curr")
        code = cli_main(["perf", "compare", str(left), str(right)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_wall_info_flag(self, tmp_path, capsys):
        baseline = make_record("slow", wall=100.0)
        current = make_record("slow", wall=250.0)
        left = self._snapshot(tmp_path, baseline, "base")
        right = self._snapshot(tmp_path, current, "curr")
        assert cli_main(["perf", "compare", str(left), str(right)]) == 1
        capsys.readouterr()
        assert cli_main([
            "perf", "compare", str(left), str(right), "--wall-info",
        ]) == 0

    def test_compare_json_output(self, tmp_path, capsys):
        record = make_record("j")
        left = self._snapshot(tmp_path, record, "base")
        code = cli_main([
            "perf", "compare", str(left), str(left), "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True

    def test_compare_missing_file_is_usage_error(self, tmp_path, capsys):
        record = make_record("m")
        left = self._snapshot(tmp_path, record, "base")
        code = cli_main([
            "perf", "compare", str(left), str(tmp_path / "absent.json"),
        ])
        assert code == 2

    def test_record_rejects_unknown_experiment(self, capsys):
        code = cli_main([
            "perf", "record", "--experiment", "not_an_experiment",
        ])
        assert code == 2

    def test_report_empty_ledger(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path / "void"))
        assert cli_main(["perf", "report"]) == 0
        assert "no runs recorded" in capsys.readouterr().out


class TestCompareScript:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(COMPARE_SCRIPT), *map(str, argv)],
            capture_output=True, text=True,
        )

    def _write(self, path, document):
        path.write_text(json.dumps(document))
        return path

    def test_identical_documents_exit_zero(self, tmp_path):
        document = [{"name": "t", "rows": [[1]], "meta": {"wall_ms": 5.0}}]
        left = self._write(tmp_path / "a.json", document)
        right = self._write(tmp_path / "b.json", document)
        completed = self._run(left, right)
        assert completed.returncode == 0, completed.stderr

    def test_meta_differences_are_ignored(self, tmp_path):
        left = self._write(tmp_path / "a.json", [
            {"name": "t", "rows": [[1]], "meta": {"wall_ms": 5.0}},
        ])
        right = self._write(tmp_path / "b.json", [
            {"name": "t", "rows": [[1]], "meta": {"wall_ms": 900.0}},
        ])
        assert self._run(left, right).returncode == 0

    def test_simulated_drift_exits_one(self, tmp_path):
        left = self._write(tmp_path / "a.json", [
            {"name": "t", "rows": [[1]]},
        ])
        right = self._write(tmp_path / "b.json", [
            {"name": "t", "rows": [[2]]},
        ])
        completed = self._run(left, right)
        assert completed.returncode == 1
        assert "rows" in completed.stderr

    def test_wall_gate_flag(self, tmp_path):
        left = self._write(tmp_path / "a.json", [
            {"name": "t", "rows": [[1]], "meta": {"wall_ms": 100.0}},
        ])
        right = self._write(tmp_path / "b.json", [
            {"name": "t", "rows": [[1]], "meta": {"wall_ms": 300.0}},
        ])
        assert self._run(left, right).returncode == 0
        assert self._run(left, right, "--wall-gate").returncode == 1
        assert self._run(
            left, right, "--wall-gate", "--wall-tolerance", "4.0"
        ).returncode == 0

    def test_json_diff_output(self, tmp_path):
        document = [{"name": "t", "rows": [[1]]}]
        left = self._write(tmp_path / "a.json", document)
        completed = self._run(left, left, "--json")
        assert completed.returncode == 0
        assert json.loads(completed.stdout)["ok"] is True

    def test_missing_file_exits_two(self, tmp_path):
        left = self._write(tmp_path / "a.json", [])
        assert self._run(left, tmp_path / "nope.json").returncode == 2


class TestCounterOverhead:
    def test_always_on_counters_within_five_percent(self):
        """The fig6 smoke acceptance bound: the plain-int counter updates
        threaded through buffer/runtime/scheduler must cost <= 5% of the
        benchmark's wall-clock.

        Measured structurally rather than by flaky A/B timing: count the
        update events the run actually performed, measure the per-update
        cost of the hot dict-increment in a tight loop, and bound the
        product against the run's wall time.
        """
        from repro.bench.experiments import experiment_figure6
        from repro.data import generate_barton
        from repro.engine import buffer
        from repro.exec import runtime
        from repro.observe.history import reset_counters

        dataset = generate_barton(
            n_triples=6_000, n_properties=40, n_interesting=28, seed=11
        )
        reset_counters()
        start = time.perf_counter()
        results = experiment_figure6(
            dataset, queries=("q2",), property_counts=(28,), jobs=1,
        )
        wall_seconds = time.perf_counter() - start
        assert results  # the smoke run produced output

        stats = buffer.global_stats()
        lowering = runtime.global_lowering_cache_stats()
        # Each _account call performs ~5 dict increments; each lowering
        # lookup performs ~2; evictions one each.  Overcount generously.
        events = (
            stats["account_calls"] * 6
            + (lowering["hits"] + lowering["misses"]) * 3
            + stats["evictions"]
        )
        assert events > 0  # the counters saw the run

        probe = {"value": 0}
        n = 200_000
        tick = time.perf_counter()
        for _ in range(n):
            probe["value"] += 1
        per_update = (time.perf_counter() - tick) / n

        overhead = events * per_update
        assert overhead <= 0.05 * wall_seconds, (
            f"counter overhead {overhead * 1e3:.3f}ms exceeds 5% of "
            f"{wall_seconds * 1e3:.1f}ms wall"
        )
