"""Integration tests: every benchmark query, on every engine x scheme
combination, must return exactly the reference evaluator's answer."""

import pytest

from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.queries import ALL_QUERY_NAMES, build_query, reference_answer
from repro.queries.definitions import parse_query_name
from repro.rowstore import RowStoreEngine
from repro.storage import build_triple_store, build_vertical_store


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(n_triples=6_000, n_properties=40, seed=11)


def _deploy(dataset, engine_kind, scheme, clustering="PSO"):
    engine = ColumnStoreEngine() if engine_kind == "col" else RowStoreEngine()
    if scheme == "triple":
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
            clustering=clustering,
        )
    else:
        catalog = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
    return engine, catalog


CONFIGS = [
    ("col", "triple", "PSO"),
    ("col", "triple", "SPO"),
    ("col", "vertical", None),
    ("row", "triple", "PSO"),
    ("row", "triple", "SPO"),
    ("row", "vertical", None),
]


@pytest.fixture(scope="module")
def deployments(dataset):
    return {
        cfg: _deploy(dataset, cfg[0], cfg[1], cfg[2] or "PSO")
        for cfg in CONFIGS
    }


@pytest.fixture(scope="module")
def expected(dataset):
    graph = dataset.graph()
    return {
        name: reference_answer(
            graph, name, dataset.interesting_properties
        )
        for name in ALL_QUERY_NAMES
    }


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: "-".join(str(x) for x in c if x))
@pytest.mark.parametrize("query_name", ALL_QUERY_NAMES)
def test_query_matches_reference(deployments, expected, config, query_name):
    engine, catalog = deployments[config]
    plan = build_query(catalog, query_name)
    relation = engine.execute(plan)
    got = sorted(
        relation.decoded_tuples(
            catalog.dictionary, order=plan.output_columns()
        )
    )
    assert got == expected[query_name]


@pytest.mark.parametrize("query_name", ALL_QUERY_NAMES)
def test_queries_return_rows(dataset, deployments, expected, query_name):
    """Every benchmark query has a non-empty answer on the generated data
    (the generator guarantees the hooks)."""
    assert len(expected[query_name]) > 0


def test_star_variants_return_supersets(expected):
    """Full-scale variants consider all properties, so their answers cover
    at least the property-restricted groups."""
    for star, base in [("q2*", "q2"), ("q3*", "q3"), ("q6*", "q6")]:
        star_keys = {row[:-1] for row in expected[star]}
        base_keys = {row[:-1] for row in expected[base]}
        assert base_keys <= star_keys
        assert len(expected[star]) >= len(expected[base])


def test_parse_query_name_rejects_bad_stars():
    with pytest.raises(KeyError):
        parse_query_name("q5*")
    with pytest.raises(KeyError):
        parse_query_name("q99")


def test_plan_sizes_grow_with_scope(dataset, deployments):
    """The full-scale vertically-partitioned queries are the giant
    union plans the paper warns about."""
    from repro.plan import count_operators

    _, catalog = deployments[("col", "vertical", None)]
    small = count_operators(build_query(catalog, "q2"))
    big = count_operators(build_query(catalog, "q2*"))
    assert big > small
    assert big > 40  # 40 properties -> at least one operator per table


def test_triple_store_plan_sizes_stable(dataset, deployments):
    from repro.plan import count_operators

    _, catalog = deployments[("col", "triple", "PSO")]
    small = count_operators(build_query(catalog, "q2"))
    big = count_operators(build_query(catalog, "q2*"))
    # The star variant drops the properties join: the plan SHRINKS.
    assert big <= small
