"""Tests for the observability layer: metrics, tracing, logging."""

import json
import logging

import pytest

from repro.engine import MACHINE_A, QueryClock
from repro.observe import (
    NULL_OBSERVATION,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Observation,
    Tracer,
    configure_logging,
    format_key,
    get_logger,
    parse_key,
)


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("disk.requests").inc()
        registry.counter("disk.requests").inc(4)
        assert registry.to_dict()["counters"]["disk.requests"] == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_labels_identify_instruments(self):
        registry = MetricsRegistry()
        registry.counter("hits", segment="a").inc()
        registry.counter("hits", segment="b").inc(2)
        counters = registry.to_dict()["counters"]
        assert counters["hits{segment=a}"] == 1
        assert counters["hits{segment=b}"] == 2

    def test_label_order_is_canonical(self):
        assert format_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        registry = MetricsRegistry()
        registry.counter("m", b=1, a=2).inc()
        registry.counter("m", a=2, b=1).inc()
        assert registry.to_dict()["counters"]["m{a=2,b=1}"] == 2

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("resident")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert registry.to_dict()["gauges"]["resident"] == 12

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("request_bytes")
        for value in (1, 5, 100, 100):
            histogram.observe(value)
        summary = registry.to_dict()["histograms"]["request_bytes"]
        assert summary["count"] == 4
        assert summary["sum"] == 206
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["mean"] == pytest.approx(51.5)
        # 1 -> <4 bucket, 5 -> <16, 100 -> <256 (twice)
        assert summary["buckets"] == {"<4": 1, "<16": 1, "<256": 2}

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(3)
        decoded = json.loads(registry.to_json())
        assert decoded["counters"] == {"c{k=v}": 3}

    def test_render_text(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(2.0)
        text = registry.render_text()
        assert "counter   c = 3" in text
        assert "gauge     g = 7" in text
        assert "histogram h count=1" in text

    def test_histogram_quantiles_empty(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.quantile(0.5) is None
        summary = histogram.summary()
        assert summary["p50"] is None
        assert summary["p95"] is None
        assert summary["p99"] is None

    def test_histogram_quantiles_single_sample(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(42.0)
        # With one observation every quantile is that observation.
        assert histogram.quantile(0.0) == pytest.approx(42.0)
        assert histogram.quantile(0.5) == pytest.approx(42.0)
        assert histogram.quantile(1.0) == pytest.approx(42.0)

    def test_histogram_quantiles_bounded_by_observations(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (10, 20, 30, 1000):
            histogram.observe(value)
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            estimate = histogram.quantile(q)
            assert 10 <= estimate <= 1000
        assert histogram.quantile(1.0) == pytest.approx(1000)

    def test_histogram_quantile_rejects_out_of_range(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_label_values_cannot_collide(self):
        # Without escaping, {"a": "1,b=2"} would render the same key as
        # {"a": "1", "b": "2"}; the injective encoding keeps them apart.
        tricky = format_key("m", {"a": "1,b=2"})
        plain = format_key("m", {"a": "1", "b": "2"})
        assert tricky != plain
        registry = MetricsRegistry()
        registry.counter("m", a="1,b=2").inc()
        registry.counter("m", a="1", b="2").inc(5)
        counters = registry.to_dict()["counters"]
        assert sorted(counters.values()) == [1, 5]

    def test_parse_key_inverts_format_key(self):
        cases = [
            ("plain", {}),
            ("buffer.page_hits", {"segment": "triples.prop"}),
            ("m", {"a": "1", "b": "2"}),
            ("m", {"a": "1,b=2"}),
            ("m", {"empty": ""}),
            ("m", {"br{ace}": "va\\lue"}),
        ]
        for name, labels in cases:
            key = format_key(name, labels)
            assert parse_key(key) == (name, labels), key

    def test_to_dict_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(3)
        registry.gauge("g").set(-2)
        registry.histogram("h", kind="x").observe(7.0)
        document = registry.to_dict()
        decoded = json.loads(json.dumps(document))
        assert decoded == document

    def test_null_registry_is_inert(self):
        instrument = NULL_REGISTRY.counter("anything", label="x")
        instrument.inc(10)
        instrument.observe(3)
        assert NULL_REGISTRY.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert NULL_REGISTRY.render_text() == ""
        assert not NULL_REGISTRY.enabled


class TestTracer:
    def _clock(self):
        return QueryClock(MACHINE_A)

    def test_nested_spans_attribute_self_time(self):
        clock = self._clock()
        tracer = Tracer(clock=clock)
        with tracer.run():
            with tracer.span("outer"):
                clock.charge_cpu(0.010)
                with tracer.span("inner"):
                    clock.charge_cpu(0.002)
                clock.charge_cpu(0.001)
        outer = tracer.root.child_named("outer")
        inner = outer.child_named("inner")
        assert inner.self_seconds() == pytest.approx(0.002)
        assert outer.self_seconds() == pytest.approx(0.011)
        assert outer.inclusive()[0] == pytest.approx(0.013)

    def test_span_sum_equals_clock_total(self):
        clock = self._clock()
        tracer = Tracer(clock=clock)
        with tracer.run():
            clock.charge_cpu(0.005)  # root self-time
            with tracer.span("a"):
                clock.charge_cpu(0.001)
                clock.charge_io(8192, 1)
            with tracer.span("b"):
                clock.charge_cpu(0.002)
        total = sum(s.self_seconds() for s in tracer.root.walk())
        assert total == pytest.approx(clock.real_seconds())

    def test_reentry_accumulates(self):
        clock = self._clock()
        tracer = Tracer(clock=clock)
        key = object()
        with tracer.run():
            for _ in range(3):
                tracer.enter(key)
                clock.charge_cpu(0.001)
                tracer.exit(key)
        span = tracer.span_for(key)
        assert span.calls == 3
        assert span.self_seconds() == pytest.approx(0.003)

    def test_register_plan_mirrors_tree(self):
        from repro.plan import logical as L
        from repro.plan.predicates import Comparison

        scan = L.Scan("t", ["subj", "obj"], alias="A")
        select = L.Select(scan, [Comparison("A.obj", "=", 1)])
        tracer = Tracer()
        tracer.register_plan(select, describe=lambda n: type(n).__name__)
        assert tracer.span_for(select).name == "select"
        assert tracer.span_for(scan).parent is tracer.span_for(select)
        assert tracer.span_for(select).parent is tracer.root

    def test_io_vector_attribution(self):
        clock = self._clock()
        tracer = Tracer(clock=clock)
        with tracer.run():
            with tracer.span("scan"):
                clock.charge_io(16384, 2)
        span = tracer.root.child_named("scan")
        from repro.observe.trace import BYTES, REQUESTS, SEEK, TRANSFER

        assert span.self_sim[BYTES] == 16384
        assert span.self_sim[REQUESTS] == 2
        assert span.self_sim[SEEK] == pytest.approx(
            2 * MACHINE_A.request_latency
        )
        assert span.self_sim[TRANSFER] == pytest.approx(
            16384 / MACHINE_A.read_bandwidth
        )

    def test_current_add(self):
        tracer = Tracer()
        with tracer.run():
            with tracer.span("scan"):
                tracer.current_add(page_hits=3)
                tracer.current_add(page_hits=2, page_misses=1)
        span = tracer.root.child_named("scan")
        assert span.counts == {"page_hits": 5, "page_misses": 1}

    def test_misestimate_ratio(self):
        from repro.observe.trace import Span

        span = Span("x")
        assert span.misestimate_ratio() is None
        span.estimated_rows = 10.0
        span.rows = 100
        assert span.misestimate_ratio() == pytest.approx(10.0)
        span.rows = 0
        assert span.misestimate_ratio() == pytest.approx(10.0)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.run():
            with NULL_TRACER.span("x"):
                NULL_TRACER.current_add(hits=1)
        NULL_TRACER.enter(object())
        NULL_TRACER.exit()
        assert NULL_TRACER.span_for(object()) is None
        assert not NULL_TRACER.enabled


class TestObservation:
    def test_null_observation_disabled(self):
        assert not NULL_OBSERVATION.enabled
        assert NULL_OBSERVATION.metrics is NULL_REGISTRY
        assert NULL_OBSERVATION.tracer is NULL_TRACER

    def test_partial_observation_enabled(self):
        assert Observation(metrics=MetricsRegistry()).enabled
        assert Observation(tracer=Tracer()).enabled
        assert not Observation().enabled

    def test_engines_accept_observation(self):
        from repro.colstore import ColumnStoreEngine
        from repro.rowstore import RowStoreEngine

        for engine_cls in (ColumnStoreEngine, RowStoreEngine):
            engine = engine_cls()
            assert engine.observe is NULL_OBSERVATION
            observation = Observation(metrics=MetricsRegistry())
            engine.install_observation(observation)
            assert engine.observe is observation
            assert engine.pool.observe is observation
            engine.install_observation(None)
            assert engine.observe is NULL_OBSERVATION


class TestLogging:
    def test_logger_namespace(self):
        assert get_logger().name == "repro"
        assert get_logger("cli").name == "repro.cli"

    def test_configure_is_idempotent(self):
        configure_logging(0)
        configure_logging(0)
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
        assert root.level == logging.INFO

    def test_verbose_enables_debug(self, capsys):
        configure_logging(1)
        assert logging.getLogger("repro").level == logging.DEBUG
        get_logger("test").debug("a debug line")
        assert "a debug line" in capsys.readouterr().err
        configure_logging(0)

    def test_info_goes_to_stderr(self, capsys):
        configure_logging(0)
        get_logger("test").info("hello %d", 7)
        captured = capsys.readouterr()
        assert "INFO repro.test: hello 7" in captured.err
        assert captured.out == ""


class TestJsonLogging:
    @pytest.fixture(autouse=True)
    def _restore_plain_format(self):
        yield
        configure_logging(0, json_lines=False)

    def test_json_lines_format(self, capsys):
        configure_logging(0, json_lines=True)
        get_logger("test").info("hello %d", 7)
        line = capsys.readouterr().err.strip()
        document = json.loads(line)
        assert document["level"] == "INFO"
        assert document["logger"] == "repro.test"
        assert document["message"] == "hello 7"
        assert isinstance(document["ts"], float)
        assert "span_id" not in document

    def test_json_lines_carry_active_span_id(self, capsys):
        configure_logging(0, json_lines=True)
        tracer = Tracer()
        with tracer.run():
            with tracer.span("scan") as span:
                get_logger("test").info("inside the scan")
        document = json.loads(capsys.readouterr().err.strip())
        assert document["span_id"] == span.sid

    def test_env_var_selects_json(self, monkeypatch, capsys):
        from repro.observe.log import json_lines_default

        monkeypatch.setenv("REPRO_LOG_JSON", "1")
        assert json_lines_default()
        configure_logging(0)  # json_lines=None defers to the env var
        get_logger("test").info("structured")
        assert json.loads(capsys.readouterr().err.strip())[
            "message"
        ] == "structured"
        monkeypatch.setenv("REPRO_LOG_JSON", "0")
        assert not json_lines_default()

    def test_exceptions_are_captured(self, capsys):
        configure_logging(0, json_lines=True)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("test").exception("it failed")
        document = json.loads(capsys.readouterr().err.strip())
        assert document["message"] == "it failed"
        assert "RuntimeError: boom" in document["exc_info"]
