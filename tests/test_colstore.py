"""Tests for the column-store engine: correctness and I/O/cost behaviour."""

import numpy as np
import pytest

from repro.colstore import ColumnStoreEngine
from repro.errors import StorageError
from repro.plan import (
    Comparison,
    Distinct,
    GroupBy,
    Having,
    Join,
    Project,
    Scan,
    Select,
    Union,
)


@pytest.fixture
def engine():
    e = ColumnStoreEngine()
    e.create_table(
        "t",
        {
            "subj": np.array([0, 1, 2, 3, 4, 5]),
            "prop": np.array([10, 10, 11, 11, 12, 12]),
            "obj": np.array([20, 21, 20, 22, 23, 20]),
        },
        sort_by=["prop", "subj", "obj"],
    )
    return e


def scan(alias=None, table="t"):
    return Scan(table, ["subj", "prop", "obj"], alias=alias)


class TestDDL:
    def test_duplicate_table_rejected(self, engine):
        with pytest.raises(StorageError):
            engine.create_table("t", {"x": [1]})

    def test_unknown_table(self, engine):
        with pytest.raises(StorageError):
            engine.table("nope")

    def test_indices_rejected(self, engine):
        """MonetDB/SQL has no user-defined indices (paper, Section 4.1)."""
        with pytest.raises(StorageError):
            engine.create_table("u", {"x": [1]}, indexes=[{"name": "i"}])

    def test_sort_applied(self, engine):
        table = engine.table("t")
        prop = table.array("prop")
        assert prop.tolist() == sorted(prop.tolist())

    def test_table_catalog(self, engine):
        assert engine.has_table("t")
        assert "t" in engine.table_names()
        assert engine.database_bytes() == 3 * 6 * 8 or engine.database_bytes() > 0


class TestExecution:
    def test_full_scan(self, engine):
        rel = engine.execute(scan())
        assert rel.n_rows == 6
        assert set(rel.column_names()) == {"subj", "prop", "obj"}

    def test_select_equality(self, engine):
        plan = Select(scan(), [Comparison("prop", "=", 11)])
        rel = engine.execute(plan)
        assert sorted(rel.column("subj").tolist()) == [2, 3]

    def test_select_inequality(self, engine):
        plan = Select(scan(), [Comparison("obj", "!=", 20)])
        rel = engine.execute(plan)
        assert rel.n_rows == 3

    def test_select_conjunction(self, engine):
        plan = Select(
            scan(), [Comparison("prop", "=", 12), Comparison("obj", "=", 20)]
        )
        rel = engine.execute(plan)
        assert rel.column("subj").tolist() == [5]

    def test_select_missing_constant_yields_empty(self, engine):
        plan = Select(scan(), [Comparison("prop", "=", None)])
        assert engine.execute(plan).n_rows == 0

    def test_project_rename(self, engine):
        plan = Project(scan("A"), [("s", "A.subj"), ("o", "A.obj")])
        rel = engine.execute(plan)
        assert set(rel.column_names()) == {"s", "o"}
        assert rel.n_rows == 6

    def test_self_join_on_subject(self, engine):
        a = Select(scan("A"), [Comparison("A.prop", "=", 10)])
        b = Select(scan("B"), [Comparison("B.prop", "=", 11)])
        plan = Join(a, b, on=[("A.subj", "B.subj")])
        rel = engine.execute(plan)
        # subj 1 does not appear with prop 11; only subj 2,3 with prop 11 and
        # subj 0,1 with prop 10 -> no overlap? subj values: prop10 -> {0,1},
        # prop11 -> {2,3}. No matches.
        assert rel.n_rows == 0

    def test_join_with_matches(self, engine):
        a = Select(scan("A"), [Comparison("A.obj", "=", 20)])
        b = Select(scan("B"), [Comparison("B.obj", "=", 20)])
        plan = Join(a, b, on=[("A.obj", "B.obj")])
        rel = engine.execute(plan)
        assert rel.n_rows == 9  # 3 x 3 rows with obj == 20

    def test_group_by_counts(self, engine):
        plan = GroupBy(scan(), keys=["prop"], count_column="n")
        rel = engine.execute(plan)
        assert dict(zip(rel.column("prop").tolist(), rel.column("n").tolist())) == {
            10: 2, 11: 2, 12: 2,
        }

    def test_group_by_global(self, engine):
        plan = GroupBy(scan(), keys=[], count_column="n")
        rel = engine.execute(plan)
        assert rel.column("n").tolist() == [6]

    def test_having(self, engine):
        plan = Having(
            GroupBy(scan(), keys=["obj"], count_column="n"),
            Comparison("n", ">", 1),
        )
        rel = engine.execute(plan)
        assert rel.column("obj").tolist() == [20]
        assert rel.column("n").tolist() == [3]

    def test_union_all_and_distinct(self, engine):
        one = Project(scan("A"), [("s", "A.subj")])
        two = Project(scan("B"), [("s", "B.subj")])
        assert engine.execute(Union([one, two], distinct=False)).n_rows == 12
        assert engine.execute(Union([one, two], distinct=True)).n_rows == 6

    def test_union_positional_alignment(self, engine):
        """UNION matches columns by position, as SQL does."""
        one = Project(scan("A"), [("x", "A.subj")])
        two = Project(scan("B"), [("y", "B.obj")])
        rel = engine.execute(Union([one, two], distinct=False))
        assert rel.column_names() == ["x"]
        assert rel.n_rows == 12

    def test_distinct(self, engine):
        plan = Distinct(Project(scan("A"), [("o", "A.obj")]))
        rel = engine.execute(plan)
        assert sorted(rel.column("o").tolist()) == [20, 21, 22, 23]

    def test_count_column_not_oid(self, engine):
        plan = GroupBy(scan(), keys=["prop"], count_column="n")
        rel = engine.execute(plan)
        assert "n" not in rel.oid_columns
        assert "prop" in rel.oid_columns


class TestCostBehaviour:
    def test_hot_run_cheaper_than_cold(self, engine):
        plan = Select(scan(), [Comparison("prop", "=", 11)])
        engine.make_cold()
        _, cold = engine.run(plan)
        _, hot = engine.run(plan)
        assert hot.real_seconds < cold.real_seconds
        assert hot.bytes_read == 0

    def test_user_time_machine_independent_io(self, engine):
        plan = scan()
        engine.make_cold()
        _, timing = engine.run(plan)
        assert timing.user_seconds <= timing.real_seconds
        assert timing.bytes_read > 0

    def test_column_pruning_reads_only_touched_columns(self):
        e = ColumnStoreEngine()
        n = 100_000
        e.create_table(
            "wide",
            {"a": np.arange(n), "b": np.arange(n), "c": np.arange(n)},
            sort_by=["a"],
        )
        plan = Project(Scan("wide", ["a", "b", "c"]), [("a", "a")])
        e.make_cold()
        _, timing = e.run(plan)
        one_column_bytes = n * 8
        assert timing.bytes_read <= one_column_bytes * 1.1

    def test_sorted_leading_selection_reads_slice_only(self):
        """Equality on the leading sort column reads ~the qualifying range,
        not the whole table (the PSO-clustering advantage)."""
        e = ColumnStoreEngine()
        n = 200_000
        prop = np.repeat(np.arange(20), n // 20)
        e.create_table(
            "t",
            {"prop": prop, "subj": np.arange(n), "obj": np.arange(n)},
            sort_by=["prop", "subj"],
        )
        plan = Select(
            Scan("t", ["prop", "subj", "obj"]), [Comparison("prop", "=", 3)]
        )
        e.make_cold()
        _, timing = e.run(plan)
        slice_bytes = (n // 20) * 8 * 2  # subj + obj slices
        total_bytes = n * 8 * 3
        assert timing.bytes_read < total_bytes / 5
        assert timing.bytes_read >= slice_bytes

    def test_unsorted_selection_reads_whole_column(self):
        e = ColumnStoreEngine()
        n = 200_000
        rng = np.random.default_rng(0)
        e.create_table(
            "t",
            {"prop": rng.integers(0, 20, n), "subj": np.arange(n)},
            sort_by=["subj"],  # prop not leading -> full column scan
        )
        plan = Select(Scan("t", ["prop", "subj"]), [Comparison("prop", "=", 3)])
        e.make_cold()
        _, timing = e.run(plan)
        assert timing.bytes_read >= n * 8  # at least the full prop column

    def test_plan_size_overhead_charged(self, engine):
        """Bigger plans cost more CPU even over identical data — the
        union-heavy vertically-partitioned query tax."""
        small = Project(scan("A"), [("s", "A.subj")])
        parts = [Project(scan(f"A{i}"), [("s", f"A{i}.subj")]) for i in range(40)]
        big = Union(parts, distinct=False)
        engine.make_cold()
        _, t_small = engine.run(small)
        engine.make_cold()
        _, t_big = engine.run(big)
        assert t_big.user_seconds > t_small.user_seconds * 5

    def test_io_history_collected(self, engine):
        engine.make_cold()
        engine.run(scan())
        history = engine.io_history()
        assert history[-1][1] > 0
