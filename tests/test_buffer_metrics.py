"""BufferPool accounting: exact hit/miss/eviction/request/charge values.

Uses a hand-built machine profile with round numbers (1 MiB/s bandwidth,
10 ms seek) so every expected value can be computed in the test by hand.
"""

import pytest

from repro.engine import BufferPool, MachineProfile, QueryClock, SimulatedDisk
from repro.engine.buffer import SCATTERED_BANDWIDTH_PENALTY
from repro.observe import MetricsRegistry, Observation, Tracer

PAGE = 4096
BANDWIDTH = 1024 * 1024  # 1 MiB/s
LATENCY = 0.010  # seconds per request

TEST_MACHINE = MachineProfile(
    name="T",
    num_cpus=1,
    cpu_model="test",
    cpu_ghz=1.0,
    cache_kb=512,
    ram_bytes=1024 * 1024 * 1024,
    read_bandwidth=BANDWIDTH,
    request_latency=LATENCY,
    raid_disks=1,
    raid_level=0,
    operating_system="none",
)


def make_pool(capacity_pages=64, max_run_bytes=None, observe=None):
    disk = SimulatedDisk(page_size=PAGE)
    clock = QueryClock(TEST_MACHINE)
    pool = BufferPool(
        disk, clock, capacity_pages * PAGE,
        max_run_bytes=max_run_bytes, observe=observe,
    )
    return disk, clock, pool


class TestSequentialAccounting:
    def test_cold_scan_counts_and_charges(self):
        disk, clock, pool = make_pool()
        segment = disk.create_segment("col", 10 * PAGE)
        transferred = pool.read_segment("col")
        assert transferred == 10 * PAGE
        assert pool.stats() == {
            "page_hits": 0,
            "page_misses": 10,
            "evictions": 0,
            "disk_requests": 1,
            "bytes_transferred": 10 * PAGE,
        }
        assert clock.seek_seconds() == pytest.approx(LATENCY)
        assert clock.transfer_seconds() == pytest.approx(
            10 * PAGE / BANDWIDTH
        )
        assert clock.real_seconds() == pytest.approx(
            LATENCY + 10 * PAGE / BANDWIDTH
        )
        assert segment.num_pages() == 10

    def test_hot_scan_is_all_hits(self):
        disk, clock, pool = make_pool()
        disk.create_segment("col", 10 * PAGE)
        pool.read_segment("col")
        before = clock.real_seconds()
        assert pool.read_segment("col") == 0
        stats = pool.stats()
        assert stats["page_hits"] == 10
        assert stats["page_misses"] == 10  # from the cold scan only
        assert clock.real_seconds() == before

    def test_partial_residency_reads_only_misses(self):
        disk, clock, pool = make_pool()
        segment = disk.create_segment("col", 10 * PAGE)
        pool.read(segment, 0, 4 * PAGE)  # pages 0-3 now hot
        pool.reset_stats()
        pool.read_segment("col")
        stats = pool.stats()
        assert stats["page_hits"] == 4
        assert stats["page_misses"] == 6
        assert stats["bytes_transferred"] == 6 * PAGE

    def test_request_splitting_at_max_run_bytes(self):
        disk, clock, pool = make_pool(max_run_bytes=2 * PAGE)
        disk.create_segment("col", 10 * PAGE)
        pool.read_segment("col")
        # One 10-page miss run split into ceil(10/2) = 5 requests.
        assert pool.stats()["disk_requests"] == 5
        assert clock.seek_seconds() == pytest.approx(5 * LATENCY)
        assert clock.timing().io_requests == 5

    def test_sequential_continuation_pays_no_new_seek(self):
        disk, clock, pool = make_pool()
        segment = disk.create_segment("col", 10 * PAGE)
        pool.read(segment, 0, 5 * PAGE)
        assert clock.seek_seconds() == pytest.approx(LATENCY)
        # The next read starts exactly where the disk head stopped: it rides
        # readahead, so bytes are charged but no request/seek is.
        pool.read(segment, 5 * PAGE, 5 * PAGE)
        assert clock.seek_seconds() == pytest.approx(LATENCY)
        assert pool.stats()["disk_requests"] == 1
        assert pool.stats()["bytes_transferred"] == 10 * PAGE

    def test_evictions_counted(self):
        disk, clock, pool = make_pool(capacity_pages=4)
        disk.create_segment("col", 10 * PAGE)
        pool.read_segment("col")
        assert pool.stats()["evictions"] == 6
        assert pool.resident_pages() == 4


class TestScatteredAccounting:
    def test_scattered_read_pays_bandwidth_penalty(self):
        disk, clock, pool = make_pool()
        segment = disk.create_segment("heap", 10 * PAGE)
        transferred = pool.read_pages(segment, [0, 2, 4], scattered=True)
        assert transferred == 3 * PAGE
        # Three one-page runs -> three requests.
        assert pool.stats()["disk_requests"] == 3
        assert clock.seek_seconds() == pytest.approx(3 * LATENCY)
        assert clock.transfer_seconds() == pytest.approx(
            3 * PAGE * SCATTERED_BANDWIDTH_PENALTY / BANDWIDTH
        )

    def test_contiguous_pages_coalesce(self):
        disk, clock, pool = make_pool()
        segment = disk.create_segment("heap", 10 * PAGE)
        pool.read_pages(segment, [3, 4, 5, 7])
        # [3,4,5] is one run, [7] another.
        assert pool.stats()["disk_requests"] == 2
        assert pool.stats()["page_misses"] == 4

    def test_cached_pages_count_as_hits(self):
        disk, clock, pool = make_pool()
        segment = disk.create_segment("heap", 10 * PAGE)
        pool.read_pages(segment, [1, 2])
        pool.read_pages(segment, [1, 2, 3])
        stats = pool.stats()
        assert stats["page_hits"] == 2
        assert stats["page_misses"] == 3


class TestObservedAccounting:
    def _observed_pool(self, **kwargs):
        registry = MetricsRegistry()
        tracer = Tracer()
        observation = Observation(metrics=registry, tracer=tracer)
        disk, clock, pool = make_pool(observe=observation, **kwargs)
        return disk, clock, pool, registry, tracer

    def test_labeled_counters(self):
        disk, clock, pool, registry, tracer = self._observed_pool()
        disk.create_segment("col", 10 * PAGE)
        pool.read_segment("col")
        pool.read_segment("col")
        counters = registry.to_dict()["counters"]
        assert counters["buffer.page_misses{segment=col}"] == 10
        assert counters["buffer.page_hits{segment=col}"] == 10
        assert counters["disk.requests{kind=sequential,segment=col}"] == 1
        assert counters["disk.bytes_read{segment=col}"] == 10 * PAGE

    def test_scattered_kind_label_and_histogram(self):
        disk, clock, pool, registry, tracer = self._observed_pool()
        segment = disk.create_segment("heap", 10 * PAGE)
        pool.read_pages(segment, [0, 2], scattered=True)
        exported = registry.to_dict()
        assert exported["counters"][
            "disk.requests{kind=scattered,segment=heap}"
        ] == 2
        summary = exported["histograms"]["disk.request_bytes"]
        assert summary["count"] == 1
        assert summary["mean"] == pytest.approx(PAGE)  # 2 pages / 2 requests

    def test_eviction_counter(self):
        disk, clock, pool, registry, tracer = self._observed_pool(
            capacity_pages=4
        )
        disk.create_segment("col", 10 * PAGE)
        pool.read_segment("col")
        assert registry.to_dict()["counters"]["buffer.evictions"] == 6

    def test_active_span_receives_counts(self):
        disk, clock, pool, registry, tracer = self._observed_pool()
        disk.create_segment("col", 4 * PAGE)
        with tracer.run():
            with tracer.span("scan"):
                pool.read_segment("col")
            with tracer.span("rescan"):
                pool.read_segment("col")
        scan = tracer.root.child_named("scan")
        rescan = tracer.root.child_named("rescan")
        assert scan.counts == {
            "page_hits": 0, "page_misses": 4, "disk_requests": 1,
        }
        assert rescan.counts == {
            "page_hits": 4, "page_misses": 0, "disk_requests": 0,
        }

    def test_segment_read_log(self):
        disk, clock, pool, registry, tracer = self._observed_pool()
        segment = disk.create_segment("heap", 10 * PAGE)
        pool.read_segment("heap")
        pool.read_pages(segment, [0, 2], scattered=True)  # all hits: no read
        stats = disk.read_stats()["heap"].to_dict()
        assert stats["reads"] == 1
        assert stats["bytes"] == 10 * PAGE
        assert stats["requests"] == 1
        assert stats["scattered_reads"] == 0
        assert stats["seek_seconds"] == pytest.approx(LATENCY)
        disk.reset_read_stats()
        assert disk.read_stats() == {}

    def test_disabled_observation_keeps_plain_counters_only(self):
        disk, clock, pool = make_pool()
        disk.create_segment("col", 4 * PAGE)
        pool.read_segment("col")
        assert pool.stats()["page_misses"] == 4
        # The engine-facing registry never saw anything.
        assert pool.observe.metrics.to_dict()["counters"] == {}
