"""EXPLAIN ANALYZE profiler: attribution invariants, schema, CLI."""

import json

import pytest

from repro.core import RDFStore
from repro.data import generate_barton
from repro.observe import (
    NULL_OBSERVATION,
    PROFILE_SCHEMA_VERSION,
    validate_profile,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(
        n_triples=3_000, n_properties=60, n_interesting=28, seed=42
    )


@pytest.fixture(scope="module")
def column_store(dataset):
    return RDFStore.from_triples(dataset.triples, engine="column")


@pytest.fixture(scope="module")
def row_store(dataset):
    return RDFStore.from_triples(dataset.triples, engine="row")


class TestAttribution:
    @pytest.mark.parametrize("mode", ["cold", "hot"])
    def test_span_self_times_sum_to_total_charge_column(
        self, column_store, mode
    ):
        profile = column_store.profile("q2", mode=mode)
        assert profile.total_span_seconds() == pytest.approx(
            profile.timing.real_seconds, abs=1e-12
        )

    @pytest.mark.parametrize("mode", ["cold", "hot"])
    def test_span_self_times_sum_to_total_charge_row(self, row_store, mode):
        profile = row_store.profile("q2", mode=mode)
        assert profile.total_span_seconds() == pytest.approx(
            profile.timing.real_seconds, abs=1e-12
        )

    def test_bytes_and_requests_attributed(self, column_store):
        profile = column_store.profile("q2", mode="cold")
        inclusive = profile.root.inclusive()
        from repro.observe.trace import BYTES, REQUESTS

        assert inclusive[BYTES] == profile.timing.bytes_read
        assert inclusive[REQUESTS] == profile.timing.io_requests
        assert profile.timing.bytes_read > 0

    def test_hot_run_reads_less_than_cold(self, column_store):
        cold = column_store.profile("q2", mode="cold")
        hot = column_store.profile("q2", mode="hot")
        assert hot.timing.bytes_read < cold.timing.bytes_read

    def test_per_operator_rows_recorded(self, column_store):
        profile = column_store.profile("q2", mode="cold")
        spans = profile.operator_spans()
        assert any(s.rows is not None and s.rows > 0 for s in spans)
        # The root knows the final result cardinality.
        assert profile.root.rows == profile.n_rows

    def test_estimates_and_misestimate_ratio(self, column_store):
        profile = column_store.profile("q2", mode="cold")
        measured = [
            s for s in profile.operator_spans()
            if s.estimated_rows is not None and s.rows is not None
        ]
        assert measured
        for span in measured:
            assert span.misestimate_ratio() >= 1.0

    def test_seek_transfer_decomposition(self, column_store):
        profile = column_store.profile("q2", mode="cold")
        t = profile.timing
        io = t.real_seconds - t.user_seconds
        assert t.seek_seconds + t.transfer_seconds == pytest.approx(io)
        categories = profile.categories
        assert categories["io.seek"] == pytest.approx(t.seek_seconds)
        assert categories["io.transfer"] == pytest.approx(t.transfer_seconds)

    def test_categories_sum_to_real_time(self, column_store):
        profile = column_store.profile("q2", mode="cold")
        assert sum(profile.categories.values()) == pytest.approx(
            profile.timing.real_seconds
        )


class TestIsolation:
    def test_results_identical_with_observability(self, dataset):
        plain = RDFStore.from_triples(dataset.triples, engine="column")
        rows_plain, _ = plain.benchmark_query("q2", mode="cold")

        observed = RDFStore.from_triples(dataset.triples, engine="column")
        profile = observed.profile("q2", mode="cold")
        rows_observed = profile.relation.decoded_tuples(
            observed.catalog.dictionary,
            order=profile.plan.output_columns(),
        )
        assert sorted(rows_plain) == sorted(rows_observed)

    def test_timings_identical_with_observability(self, dataset):
        plain = RDFStore.from_triples(dataset.triples, engine="row")
        _, timing_plain = plain.benchmark_query("q2", mode="cold")

        observed = RDFStore.from_triples(dataset.triples, engine="row")
        profile = observed.profile("q2", mode="cold")
        assert profile.timing.real_seconds == pytest.approx(
            timing_plain.real_seconds
        )
        assert profile.timing.bytes_read == timing_plain.bytes_read

    def test_observation_uninstalled_after_profile(self, column_store):
        column_store.profile("q2", mode="cold")
        assert column_store.engine.observe is NULL_OBSERVATION
        assert column_store.engine.pool.observe is NULL_OBSERVATION


class TestExport:
    def test_json_document_validates(self, column_store):
        profile = column_store.profile("q2", mode="cold")
        document = json.loads(profile.to_json())
        assert validate_profile(document) is document
        assert document["schema_version"] == PROFILE_SCHEMA_VERSION
        assert document["engine"] == "column-store"
        assert document["totals"]["n_rows"] == profile.n_rows

    def test_json_document_validates_row(self, row_store):
        document = json.loads(row_store.profile("q2", mode="cold").to_json())
        validate_profile(document)
        assert document["engine"] == "row-store"

    def test_validate_rejects_missing_totals(self, column_store):
        document = column_store.profile("q1").to_dict()
        del document["totals"]["bytes_read"]
        with pytest.raises(ValueError, match="bytes_read"):
            validate_profile(document)

    def test_validate_rejects_bad_version(self, column_store):
        document = column_store.profile("q1").to_dict()
        document["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_profile(document)

    def test_render_text_shape(self, column_store):
        text = column_store.profile("q2", mode="cold").render()
        assert "EXPLAIN ANALYZE q2" in text
        assert "rows=" in text
        assert "est=" in text
        assert "by category:" in text

    def test_metrics_present_in_document(self, column_store):
        document = column_store.profile("q2", mode="cold").to_dict()
        counters = document["metrics"]["counters"]
        assert any(k.startswith("buffer.page_misses") for k in counters)
        assert any(k.startswith("disk.requests") for k in counters)

    def test_sql_and_sparql_queries_profilable(self, column_store):
        sparql = (
            "SELECT ?s WHERE { ?s <type> <Text> }"
        )
        profile = column_store.profile(sparql, mode="hot")
        assert profile.total_span_seconds() == pytest.approx(
            profile.timing.real_seconds, abs=1e-12
        )

    def test_unknown_mode_rejected(self, column_store):
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            column_store.profile("q1", mode="lukewarm")


class TestCli:
    def test_profile_text(self, capsys):
        from repro.cli import main

        code = main(["profile", "q2", "--triples", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE q2" in out
        assert "rows=" in out

    def test_profile_json(self, capsys):
        from repro.cli import main

        code = main(
            ["profile", "q2", "--triples", "3000", "--engine", "row",
             "--mode", "hot", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        validate_profile(document)
        assert document["mode"] == "hot"


class TestExperimentResultJson:
    def test_to_dict_is_json_safe(self):
        import numpy as np

        from repro.bench.experiments import ExperimentResult

        result = ExperimentResult(
            name="t",
            title="T",
            headers=["a", "b"],
            rows=[[np.int64(3), 1.5], ["x", None]],
            series={"s": [np.float64(2.0)]},
            x_values=[1],
            x_label="n",
        )
        document = result.to_dict()
        json.dumps(document)  # must not raise
        assert document["rows"][0][0] == 3
        assert isinstance(document["rows"][0][0], int)
        assert document["series"]["s"] == [2.0]
