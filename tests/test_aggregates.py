"""Tests for MIN/MAX aggregates across the stack.

With order-preserving dictionary encoding, integer min/max on encoded
columns realizes lexicographic string min/max — so aggregate answers decode
to meaningful strings.
"""

import numpy as np
import pytest

from repro import RDFStore
from repro.colstore import ColumnStoreEngine
from repro.colstore.vectorops import group_aggregate, group_count
from repro.errors import PlanError
from repro.plan import GroupBy, Scan
from repro.rowstore import RowStoreEngine

NT = """
<a> <score> "1" .
<b> <score> "5" .
<c> <score> "3" .
<a> <type> <Text> .
<b> <type> <Text> .
<c> <type> <Date> .
<a> <tag> "x" .
"""


def engines():
    data = {
        "k": np.array([1, 1, 2, 2, 2]),
        "v": np.array([30, 10, 20, 50, 40]),
    }
    col = ColumnStoreEngine()
    col.create_table("t", data, sort_by=["k"])
    row = RowStoreEngine()
    row.create_table("t", data, sort_by=["k"])
    return col, row


class TestVectorOps:
    def test_group_aggregate_min_max(self):
        keys = [np.array([2, 1, 2, 1])]
        values = np.array([9, 4, 3, 8])
        assert group_aggregate(keys, values, "min").tolist() == [4, 3]
        assert group_aggregate(keys, values, "max").tolist() == [8, 9]

    def test_alignment_with_group_count(self):
        keys = [np.array([3, 1, 3, 2, 1])]
        values = np.array([10, 20, 30, 40, 50])
        (k,), counts = group_count(keys)
        mins = group_aggregate(keys, values, "min")
        assert dict(zip(k.tolist(), mins.tolist())) == {1: 20, 2: 40, 3: 10}

    def test_empty(self):
        assert len(group_aggregate([np.array([], dtype=np.int64)],
                                   np.array([], dtype=np.int64), "min")) == 0


class TestGroupByNode:
    def test_validates_aggregate_function(self):
        with pytest.raises(PlanError):
            GroupBy(
                Scan("t", ["k", "v"]), keys=["k"],
                aggregates=[("sum", "v", "s")],
            )

    def test_validates_duplicate_output(self):
        with pytest.raises(PlanError):
            GroupBy(
                Scan("t", ["k", "v"]), keys=["k"],
                aggregates=[("min", "v", "count")],
            )

    def test_output_columns(self):
        g = GroupBy(
            Scan("t", ["k", "v"]), keys=["k"], count_column="n",
            aggregates=[("min", "v", "lo"), ("max", "v", "hi")],
        )
        assert g.output_columns() == ["k", "n", "lo", "hi"]


class TestEngines:
    @pytest.mark.parametrize("which", ["col", "row"])
    def test_keyed_min_max(self, which):
        col, row = engines()
        engine = col if which == "col" else row
        plan = GroupBy(
            Scan("t", ["k", "v"]), keys=["k"], count_column="n",
            aggregates=[("min", "v", "lo"), ("max", "v", "hi")],
        )
        rel = engine.execute(plan)
        rows = dict(
            (k, (n, lo, hi))
            for k, n, lo, hi in rel.to_tuples(order=["k", "n", "lo", "hi"])
        )
        assert rows == {1: (2, 10, 30), 2: (3, 20, 50)}

    @pytest.mark.parametrize("which", ["col", "row"])
    def test_global_min_max(self, which):
        col, row = engines()
        engine = col if which == "col" else row
        plan = GroupBy(
            Scan("t", ["k", "v"]), keys=[], count_column="n",
            aggregates=[("min", "v", "lo"), ("max", "v", "hi")],
        )
        rel = engine.execute(plan)
        assert rel.to_tuples(order=["n", "lo", "hi"]) == [(5, 10, 50)]

    def test_engines_agree(self):
        col, row = engines()
        plan = GroupBy(
            Scan("t", ["k", "v"]), keys=["k"], count_column="n",
            aggregates=[("max", "v", "hi")],
        )
        assert col.execute(plan).sorted_tuples(
            order=plan.output_columns()
        ) == row.execute(plan).sorted_tuples(order=plan.output_columns())


class TestSQL:
    @pytest.fixture(params=["triple", "vertical"])
    def store(self, request):
        return RDFStore.from_ntriples(NT, scheme=request.param)

    def test_min_max_with_group(self):
        store = RDFStore.from_ntriples(NT, scheme="triple")
        rows = store.sql(
            "SELECT A.prop, count(*), min(A.obj), max(A.obj) "
            "FROM triples AS A GROUP BY A.prop ORDER BY A.prop"
        )
        as_dict = {r[0]: r[1:] for r in rows}
        assert as_dict["<score>"] == (3, '"1"', '"5"')
        assert as_dict["<type>"] == (3, "<Date>", "<Text>")
        assert as_dict["<tag>"] == (1, '"x"', '"x"')

    def test_global_aggregate(self):
        store = RDFStore.from_ntriples(NT, scheme="triple")
        rows = store.sql(
            "SELECT min(A.obj) FROM triples AS A "
            "WHERE A.prop = '<score>'"
        )
        assert rows == [('"1"',)]

    def test_aggregate_alias(self):
        store = RDFStore.from_ntriples(NT, scheme="triple")
        rows = store.sql(
            "SELECT max(A.obj) AS top FROM triples AS A "
            "WHERE A.prop = '<score>'"
        )
        assert rows == [('"5"',)]

    def test_serializer_round_trip(self):
        from repro.sql import parse_sql

        text = (
            "SELECT A.prop, min(A.obj) AS lo FROM triples AS A "
            "GROUP BY A.prop"
        )
        stmt = parse_sql(text)
        assert parse_sql(stmt.sql()) == stmt

    def test_decoded_as_strings(self):
        """min/max outputs are oid columns: they decode to strings."""
        store = RDFStore.from_ntriples(NT, scheme="triple")
        rows = store.sql(
            "SELECT min(A.subj) FROM triples AS A WHERE A.prop = '<type>'"
        )
        assert rows == [("<a>",)]
