"""Unit tests for the unified execution layer (repro.exec)."""

import numpy as np
import pytest

from repro.analysis import ERROR, lint_physical_plan
from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.errors import EngineError
from repro.exec import (
    PhysicalPlan,
    count_physical_operators,
    engine_ops,
    execute_plan,
    lower_plan,
    registered_engines,
    run_plan,
    walk_physical,
)
from repro.plan import logical as L
from repro.plan.render import render_physical_plan
from repro.queries import ALL_QUERY_NAMES, build_physical_query, build_query
from repro.rowstore import RowStoreEngine
from repro.storage import build_triple_store, build_vertical_store


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(
        n_triples=1500, n_properties=24, n_interesting=16, seed=11
    )


@pytest.fixture(scope="module")
def column_setup(dataset):
    engine = ColumnStoreEngine()
    catalog = build_triple_store(
        engine, dataset.triples, dataset.interesting_properties,
        clustering="PSO",
    )
    return engine, catalog


@pytest.fixture(scope="module")
def row_setup(dataset):
    engine = RowStoreEngine()
    catalog = build_vertical_store(
        engine, dataset.triples, dataset.interesting_properties
    )
    return engine, catalog


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_both_engines_registered():
    assert registered_engines() == ["column-store", "row-store"]


def test_paradigms():
    assert engine_ops("column-store").paradigm == "vector"
    assert engine_ops("row-store").paradigm == "pull"


def test_unknown_engine_raises():
    with pytest.raises(EngineError, match="no physical operators"):
        engine_ops("paper-store")


def test_fused_operators_registered_before_generic():
    names = engine_ops("column-store").operator_names()
    assert names.index("scan+select") < names.index("filter")
    row_names = engine_ops("row-store").operator_names()
    assert row_names.index("access-path") < row_names.index("filter")


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------

def test_lowering_fuses_select_scan(column_setup):
    _, catalog = column_setup
    plan = build_query(catalog, "q1")
    physical = lower_plan(plan, "column-store")
    fused = [p for p in walk_physical(physical) if p.fused]
    assert fused, "q1 has a Select(Scan) that must fuse"
    for pnode in fused:
        assert isinstance(pnode.logical, L.Select)
        assert isinstance(pnode.fused[0], L.Scan)
        assert pnode.logical_nodes() == (pnode.logical, pnode.fused[0])


def test_lowering_covers_every_benchmark_query(column_setup, row_setup):
    for engine, catalog in (column_setup, row_setup):
        for name in ALL_QUERY_NAMES:
            plan = build_query(catalog, name)
            physical = lower_plan(plan, engine.kind)
            for pnode in walk_physical(physical):
                assert pnode.op.engine == engine.kind


def test_physical_counts_fused_groups_once(column_setup):
    _, catalog = column_setup
    plan = build_query(catalog, "q2")
    physical = lower_plan(plan, "column-store")
    n_logical = L.count_operators(plan)
    n_physical = count_physical_operators(physical)
    n_fused = sum(len(p.fused) for p in walk_physical(physical))
    assert n_physical + n_fused == n_logical
    assert n_fused > 0


def test_engine_lower_is_cached(column_setup):
    engine, catalog = column_setup
    plan = build_query(catalog, "q1")
    assert engine.lower(plan) is engine.lower(plan)
    assert engine.executor() is engine._executor


def test_output_columns_match_logical(row_setup):
    engine, catalog = row_setup
    plan = build_query(catalog, "q5")
    physical = engine.lower(plan)
    assert physical.output_columns() == plan.output_columns()


# ---------------------------------------------------------------------------
# execution entry points
# ---------------------------------------------------------------------------

def test_execute_plan_matches_engine_run(column_setup):
    engine, catalog = column_setup
    plan = build_query(catalog, "q1")
    engine.make_cold()
    via_run, timing = run_plan(engine, plan)
    engine.make_cold()
    via_execute = execute_plan(engine, plan)
    assert timing.real_seconds > 0
    assert via_run.sorted_tuples() == via_execute.sorted_tuples()


def test_build_physical_query(row_setup):
    engine, catalog = row_setup
    physical = build_physical_query(catalog, engine, "q1")
    assert isinstance(physical, PhysicalPlan)
    assert physical is engine.lower(build_query(catalog, "q1")) or (
        physical.op.engine == "row-store"
    )


def test_row_join_strategy_knob(row_setup, dataset):
    """The ablation bench's engine._executor.join_strategy hook still
    selects the join method (and changes the simulated cost)."""
    engine = RowStoreEngine()
    catalog = build_vertical_store(
        engine, dataset.triples, dataset.interesting_properties
    )
    plan = build_query(catalog, "q5")
    timings = {}
    for strategy in ("hash", "inl"):
        engine._executor.join_strategy = strategy
        engine.make_cold()
        _, timing = engine.run(plan)
        timings[strategy] = timing.real_seconds
    engine._executor.join_strategy = "auto"
    assert timings["hash"] != timings["inl"]


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def test_render_physical_plan(column_setup):
    engine, catalog = column_setup
    text = render_physical_plan(engine.lower(build_query(catalog, "q2")))
    assert "scan+select [column-store]" in text
    assert "::" in text
    assert "Scan triples" in text


def test_render_physical_elides_union_branches(row_setup):
    engine, catalog = row_setup
    text = render_physical_plan(
        engine.lower(build_query(catalog, "q2", scope="all")),
        max_union_branches=2,
    )
    assert "more union branches" in text


# ---------------------------------------------------------------------------
# physical linting
# ---------------------------------------------------------------------------

def test_lint_physical_clean_on_benchmark_plans(column_setup):
    engine, catalog = column_setup
    for name in ("q1", "q5"):
        diagnostics = lint_physical_plan(
            engine.lower(build_query(catalog, name))
        )
        assert not [d for d in diagnostics if d.severity == ERROR]


def test_lint_physical_includes_logical_findings(column_setup):
    from repro.analysis import lint_plan

    engine, catalog = column_setup
    plan = build_query(catalog, "q1")
    logical_keys = {
        (d.rule, d.path, d.message) for d in lint_plan(plan)
    }
    physical_keys = {
        (d.rule, d.path, d.message)
        for d in lint_physical_plan(engine.lower(plan))
    }
    assert logical_keys <= physical_keys


def test_lint_flags_wrong_engine_operator(column_setup):
    engine, catalog = column_setup
    physical = engine.lower(build_query(catalog, "q1"))
    row_op = engine_ops("row-store").rules[0]
    # Rebind one node to an operator from the other engine's registry.
    wrong = PhysicalPlan(
        row_op, physical.engine, physical.logical,
        children=physical.children, fused=physical.fused,
    )
    diagnostics = lint_physical_plan(wrong)
    flagged = [d for d in diagnostics if d.rule == "wrong-engine-operator"]
    assert flagged and flagged[0].severity == ERROR
    assert "row-store" in flagged[0].message


def test_lint_flags_mixed_engine_tree(row_setup):
    engine, catalog = row_setup
    physical = engine.lower(build_query(catalog, "q1"))
    child = physical.children[0]
    # An internally-consistent column-store node inside a row-store tree:
    # op.engine matches the node's engine, but not the root's.
    column_op = engine_ops("column-store").rules[0]
    mixed_child = PhysicalPlan(
        column_op, "column-store", child.logical,
        children=child.children, fused=child.fused,
    )
    mixed = PhysicalPlan(
        physical.op, physical.engine, physical.logical,
        children=(mixed_child,) + physical.children[1:],
        fused=physical.fused,
    )
    diagnostics = lint_physical_plan(mixed)
    assert any(
        d.rule == "wrong-engine-operator" and "mixes engines" in d.message
        for d in diagnostics
    )


# ---------------------------------------------------------------------------
# profiler integration
# ---------------------------------------------------------------------------

def test_profile_reports_physical_tree(dataset):
    from repro.core.store import RDFStore

    store = RDFStore(
        [(t.s, t.p, t.o) for t in dataset.triples],
        engine="column", scheme="vertical",
    )
    profile = store.profile("q1", mode="cold")
    assert profile.physical is not None
    text = profile.render()
    assert "physical plan:" in text
    document = profile.to_dict()
    assert document["physical"]["engine"] == "column-store"
    from repro.observe.profiler import validate_profile

    validate_profile(document)


def test_store_explain_physical(dataset):
    from repro.core.store import RDFStore

    from repro import Var

    store = RDFStore(
        [(t.s, t.p, t.o) for t in dataset.triples],
        engine="row", scheme="vertical",
    )
    text = store.explain(
        [(Var("s"), "<prop/0>", Var("o"))], physical=True
    )
    assert "physical plan:" in text
    assert "[row-store]" in text


# ---------------------------------------------------------------------------
# runtime internals
# ---------------------------------------------------------------------------

def test_vector_intermediate_sortedness(column_setup):
    from repro.exec import Intermediate
    from repro.relation import Relation

    rel = Relation({"a": np.array([1, 2], dtype=np.int64)})
    inter = Intermediate(rel, sorted_by=["a"])
    assert inter.sorted_by == ("a",)


def test_lower_cache_evicts(column_setup):
    from repro.exec.runtime import LOWER_CACHE_SIZE, Runtime

    engine, catalog = column_setup
    runtime = Runtime(engine)
    plans = [
        build_query(catalog, "q1") for _ in range(LOWER_CACHE_SIZE + 5)
    ]
    for plan in plans:
        runtime.lower(plan)
    assert len(runtime._lowered) <= LOWER_CACHE_SIZE
