"""Tests for the concurrent query server and workload replay.

Exercises the session scheduler (admission control, deadlines, drain
shutdown), the HTTP front-end end-to-end over real sockets, and the
replay harness — including the acceptance contract that a serial
single-client replay's simulated per-query costs are byte-identical to
direct ``Session.query`` execution.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro.api as api
from repro.data import generate_barton
from repro.errors import QueryTimeout, ServerOverloaded, SessionClosed
from repro.server import (
    QueryServer,
    ReplayConfig,
    SchedulerConfig,
    SessionScheduler,
    WorkloadMix,
    record_from_replay,
    run_replay,
    serve,
)

SCALE = dict(n_triples=3_000, n_properties=30, seed=7)


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(**SCALE)


def fresh_connection(dataset):
    return api.connect(
        triples=dataset.triples,
        interesting_properties=dataset.interesting_properties,
    )


def post_query(url, body):
    """POST /v1/query; returns (status, document) without raising."""
    request = urllib.request.Request(
        url.rstrip("/") + "/v1/query",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# ---------------------------------------------------------------------------
# the session scheduler
# ---------------------------------------------------------------------------

class TestSessionScheduler:
    def test_execute_returns_results(self, dataset):
        scheduler = SessionScheduler(fresh_connection(dataset))
        try:
            result = scheduler.execute("q1")
            assert result.n_rows > 0
            assert result.cost.real_seconds > 0
        finally:
            scheduler.shutdown()

    def test_concurrent_submissions_all_complete(self, dataset):
        scheduler = SessionScheduler(
            fresh_connection(dataset),
            SchedulerConfig(workers=4, queue_depth=64),
        )
        try:
            requests = [
                scheduler.submit(name)
                for name in ("q1", "q2", "q3", "q5", "q1", "q2") * 4
            ]
            for request in requests:
                assert request.done.wait(timeout=60)
                assert request.error is None
            stats = scheduler.stats()
            completed = stats["counters"]["server.queries{outcome=completed}"]
            assert completed == len(requests)
        finally:
            scheduler.shutdown()

    def test_admission_control_rejects_when_full(self, dataset):
        connection = fresh_connection(dataset)
        scheduler = SessionScheduler(
            connection, SchedulerConfig(workers=1, queue_depth=2)
        )
        try:
            # Park the single worker by holding the execution lock, so
            # submissions pile up deterministically.
            with connection._exec_lock:
                first = scheduler.submit("q1")   # worker picks this up
                # Let the worker dequeue the first request before filling
                # the queue behind it.
                deadline = threading.Event()
                for _ in range(100):
                    if scheduler._queue.qsize() == 0:
                        break
                    deadline.wait(0.01)
                queued = [scheduler.submit("q1"), scheduler.submit("q1")]
                with pytest.raises(ServerOverloaded, match="queue full"):
                    scheduler.submit("q1")
            for request in [first] + queued:
                assert request.done.wait(timeout=60)
                assert request.error is None
            stats = scheduler.stats()
            assert stats["counters"]["server.admission{outcome=rejected}"] == 1
            assert stats["counters"]["server.admission{outcome=accepted}"] == 3
        finally:
            scheduler.shutdown()

    def test_deadline_expired_while_queued(self, dataset):
        connection = fresh_connection(dataset)
        scheduler = SessionScheduler(
            connection, SchedulerConfig(workers=1, queue_depth=8)
        )
        try:
            with connection._exec_lock:
                blocker = scheduler.submit("q1")
                doomed = scheduler.submit("q2", timeout=0.05)
                # Hold the lock well past the doomed request's deadline.
                doomed.done.wait(timeout=0)
                threading.Event().wait(0.2)
            assert blocker.done.wait(timeout=60)
            assert doomed.done.wait(timeout=60)
            assert isinstance(doomed.error, QueryTimeout)
            assert "while queued" in str(doomed.error)
        finally:
            scheduler.shutdown()

    def test_latency_summary_reports_percentiles(self, dataset):
        scheduler = SessionScheduler(fresh_connection(dataset))
        try:
            for _ in range(5):
                scheduler.execute("q1")
            summary = scheduler.latency_summary()
            assert summary["count"] == 5
            assert summary["p50"] is not None
            assert summary["p95"] is not None
            assert summary["p99"] is not None
        finally:
            scheduler.shutdown()

    def test_graceful_shutdown_drains_in_flight(self, dataset):
        scheduler = SessionScheduler(
            fresh_connection(dataset),
            SchedulerConfig(workers=2, queue_depth=32),
        )
        requests = [scheduler.submit("q1") for _ in range(10)]
        scheduler.shutdown(drain=True)
        for request in requests:
            assert request.done.is_set()
            assert request.error is None
        with pytest.raises(SessionClosed):
            scheduler.submit("q1")

    def test_non_drain_shutdown_fails_queued(self, dataset):
        connection = fresh_connection(dataset)
        scheduler = SessionScheduler(
            connection, SchedulerConfig(workers=1, queue_depth=32)
        )
        with connection._exec_lock:
            requests = [scheduler.submit("q1") for _ in range(6)]
            scheduler._accepting = False
            # fail everything still queued, then release the lock
            shutdown = threading.Thread(
                target=scheduler.shutdown, kwargs={"drain": False}
            )
            shutdown.start()
            for _ in range(100):
                if sum(1 for r in requests if r.done.is_set()) >= 4:
                    break
                threading.Event().wait(0.01)
        shutdown.join(timeout=30)
        outcomes = [
            type(r.error).__name__ if r.error else "ok" for r in requests
        ]
        assert outcomes.count("SessionClosed") >= 4
        assert all(o in ("ok", "SessionClosed") for o in outcomes)


# ---------------------------------------------------------------------------
# the HTTP front-end
# ---------------------------------------------------------------------------

class TestQueryServer:
    @pytest.fixture()
    def server(self, dataset):
        instance = serve(
            fresh_connection(dataset), port=0, workers=3, queue_depth=16,
            background=True,
        )
        yield instance
        instance.close()

    def test_query_roundtrip(self, server):
        status, document = post_query(server.address, {"query": "q1"})
        assert status == 200
        assert document["kind"] == "benchmark"
        assert document["n_rows"] == len(document["rows"]) > 0
        assert document["cost"]["real_seconds"] > 0
        assert document["queue_ms"] >= 0
        assert document["exec_ms"] >= 0

    def test_sparql_over_http(self, server):
        status, document = post_query(
            server.address,
            {"query": "SELECT ?s WHERE { ?s <type> <Text> }"},
        )
        assert status == 200
        assert document["kind"] == "sparql"
        assert document["columns"] == ["s"]

    def test_malformed_requests_get_400(self, server):
        assert post_query(server.address, {})[0] == 400
        assert post_query(server.address, {"query": "   "})[0] == 400
        status, document = post_query(
            server.address, {"query": "SELECT nonsense FROM nowhere"}
        )
        assert status == 400
        assert "error" in document

    def test_unknown_route_404(self, server):
        try:
            urllib.request.urlopen(server.address + "/nope", timeout=10)
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        else:
            pytest.fail("expected 404")

    def test_healthz_stats_metrics(self, server):
        post_query(server.address, {"query": "q1"})
        with urllib.request.urlopen(
            server.address + "/healthz", timeout=10
        ) as response:
            assert json.loads(response.read()) == {"status": "ok"}
        with urllib.request.urlopen(
            server.address + "/v1/stats", timeout=10
        ) as response:
            stats = json.loads(response.read())
        assert stats["live"]["workers"] == 3
        assert stats["store"]["engine"] == "column"
        assert "server.latency_ms" in stats["histograms"]
        with urllib.request.urlopen(
            server.address + "/metrics", timeout=10
        ) as response:
            exposition = response.read().decode("utf-8")
        assert "server_latency_ms" in exposition

    def test_stats_expose_race_report_when_enabled(self, server):
        from repro.observe.race import (
            enable_race_check,
            race_check_enabled,
            reset_race_state,
        )

        was_enabled = race_check_enabled()
        enable_race_check(True)
        reset_race_state()
        try:
            post_query(server.address, {"query": "q1"})
            with urllib.request.urlopen(
                server.address + "/v1/stats", timeout=10
            ) as response:
                stats = json.loads(response.read())
        finally:
            reset_race_state()
            enable_race_check(was_enabled)
        assert stats["race"]["enabled"] is True
        assert stats["race"]["violation_count"] == 0
        assert "engine.buffer.GLOBAL_STATS" in stats["race"]["structures"]

    def test_stats_omit_race_report_when_disabled(self, server):
        from repro.observe.race import race_check_enabled

        if race_check_enabled():
            pytest.skip("REPRO_RACE_CHECK is enabled in this environment")
        with urllib.request.urlopen(
            server.address + "/v1/stats", timeout=10
        ) as response:
            stats = json.loads(response.read())
        assert "race" not in stats

    def test_sessions_lifecycle_and_defaults(self, server):
        request = urllib.request.Request(
            server.address + "/v1/sessions",
            data=json.dumps({"timeout": 60}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 201
            session_id = json.loads(response.read())["session"]
        status, document = post_query(
            server.address, {"query": "q1", "session": session_id}
        )
        assert status == 200
        assert document["session"] == session_id
        delete = urllib.request.Request(
            f"{server.address}/v1/sessions/{session_id}", method="DELETE"
        )
        with urllib.request.urlopen(delete, timeout=10) as response:
            assert json.loads(response.read())["closed"] is True
        status, _ = post_query(
            server.address, {"query": "q1", "session": session_id}
        )
        assert status == 404

    def test_concurrent_http_clients(self, server):
        outcomes = []
        lock = threading.Lock()

        def client(n):
            for name in ("q1", "q2", "q3") * 2:
                status, _ = post_query(server.address, {"query": name})
                with lock:
                    outcomes.append(status)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(outcomes) == 36
        assert all(status == 200 for status in outcomes)
        summary = server.scheduler.latency_summary()
        assert summary["count"] == 36
        assert summary["p95"] is not None

    def test_graceful_close_drains(self, dataset):
        instance = serve(
            fresh_connection(dataset), port=0, workers=2, queue_depth=32,
            background=True,
        )
        requests = [instance.scheduler.submit("q1") for _ in range(8)]
        instance.close()
        for request in requests:
            assert request.done.is_set()
            assert request.error is None
        # idempotent
        instance.close()

    def test_server_is_context_manager(self, dataset):
        with serve(
            fresh_connection(dataset), port=0, background=True
        ) as instance:
            status, _ = post_query(instance.address, {"query": "q1"})
            assert status == 200
        assert instance._closed


# ---------------------------------------------------------------------------
# workload replay
# ---------------------------------------------------------------------------

class TestWorkloadMix:
    def test_sampling_is_deterministic(self):
        mix = WorkloadMix(seed=5)
        assert mix.sample(50) == WorkloadMix(seed=5).sample(50)
        assert mix.sample(50) != WorkloadMix(seed=6).sample(50)

    def test_zipf_skew_prefers_head_queries(self):
        mix = WorkloadMix(exponent=1.5, seed=1)
        sample = mix.sample(2000)
        counts = {name: sample.count(name) for name in mix.names}
        assert counts[mix.names[0]] > counts[mix.names[-1]]

    def test_unknown_names_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown benchmark queries"):
            WorkloadMix(names=["q1", "q99"])


class TestReplay:
    def test_serial_replay_costs_match_direct_session(self, dataset):
        """The acceptance contract: clients=1 replay produces simulated
        per-query costs byte-identical to a direct Session.query loop on
        an identically fresh store."""
        config = ReplayConfig(clients=1, queries=30, seed=23)
        report = run_replay(
            connection=fresh_connection(dataset), config=config
        )
        assert report.failed == 0 and report.timeouts == 0
        assert report.issued == 30
        session = fresh_connection(dataset).session()
        direct = [
            {"query": name, "cost": session.query(name).cost_dict()}
            for name in config.mix().sample(30)
        ]
        assert json.dumps(report.simulated, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    def test_concurrent_replay_completes_cleanly(self, dataset):
        report = run_replay(
            connection=fresh_connection(dataset),
            config=ReplayConfig(clients=8, queries=64, seed=3),
        )
        assert report.issued == 64
        assert report.completed == 64
        assert report.failed == 0
        assert report.simulated is None  # interleaving-dependent
        assert report.latency_ms["count"] == 64
        assert report.latency_ms["p95"] is not None
        assert report.latency_ms["p99"] is not None
        assert report.throughput_qps > 0

    def test_replay_against_http_server(self, dataset):
        with serve(
            fresh_connection(dataset), port=0, workers=3, queue_depth=8,
            background=True,
        ) as instance:
            report = run_replay(
                url=instance.address,
                config=ReplayConfig(clients=4, queries=32, seed=9),
            )
        assert report.completed == 32
        assert report.failed == 0

    def test_replay_needs_exactly_one_target(self, dataset):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="exactly one"):
            run_replay()

    def test_duration_mode_runs_and_stops(self, dataset):
        report = run_replay(
            connection=fresh_connection(dataset),
            config=ReplayConfig(clients=2, duration=0.5, seed=4),
        )
        assert report.issued > 0
        assert report.failed == 0
        assert report.simulated is None

    def test_record_from_replay_serial(self, dataset):
        config = ReplayConfig(clients=1, queries=10, seed=2)
        report = run_replay(
            connection=fresh_connection(dataset), config=config
        )
        record = record_from_replay(report, name="unit")
        assert record.kind == "replay"
        assert len(record.simulated) == 10
        assert record.wall_ms is not None
        assert "buffer_pool" in record.counters
        # round-trips through the ledger schema
        from repro.observe.history import RunRecord

        assert RunRecord.from_dict(record.to_dict()).name == "unit"

    def test_record_from_replay_concurrent_notes_omission(self, dataset):
        report = run_replay(
            connection=fresh_connection(dataset),
            config=ReplayConfig(clients=3, queries=12, seed=2),
        )
        record = record_from_replay(report, name="unit")
        assert record.simulated is None
        assert any("interleaving" in note for note in record.notes)

    def test_report_document_and_text(self, dataset):
        report = run_replay(
            connection=fresh_connection(dataset),
            config=ReplayConfig(clients=2, queries=16, seed=6),
        )
        document = report.to_dict()
        json.dumps(document)  # JSON-ready
        assert document["completed"] == 16
        text = report.summary_text()
        assert "throughput" in text
        assert "p95" in text
