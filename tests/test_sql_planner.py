"""End-to-end SQL tests: the appendix SQL, planned and executed on real
engines, must reproduce the reference answers — and the generated
vertically-partitioned SQL must agree with the triple-store SQL."""

import pytest

from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.errors import SQLError
from repro.queries import ALL_QUERY_NAMES, reference_answer
from repro.rowstore import RowStoreEngine
from repro.sql import APPENDIX_SQL, generate_vertical_sql, plan_sql
from repro.storage import build_triple_store, build_vertical_store


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(n_triples=6_000, n_properties=40, seed=11)


@pytest.fixture(scope="module")
def triple_deploy(dataset):
    engine = ColumnStoreEngine()
    catalog = build_triple_store(
        engine, dataset.triples, dataset.interesting_properties,
        clustering="PSO",
    )
    return engine, catalog


@pytest.fixture(scope="module")
def vertical_deploy(dataset):
    engine = ColumnStoreEngine()
    catalog = build_vertical_store(
        engine, dataset.triples, dataset.interesting_properties,
    )
    return engine, catalog


@pytest.fixture(scope="module")
def row_vertical_deploy(dataset):
    engine = RowStoreEngine()
    catalog = build_vertical_store(
        engine, dataset.triples, dataset.interesting_properties,
    )
    return engine, catalog


def run_sql(engine, catalog, sql):
    plan = plan_sql(sql, catalog)
    relation = engine.execute(plan)
    return sorted(
        relation.decoded_tuples(catalog.dictionary, order=plan.output_columns())
    )


class TestAppendixOnTripleStore:
    @pytest.mark.parametrize("query_name", ALL_QUERY_NAMES)
    def test_matches_reference(self, dataset, triple_deploy, query_name):
        engine, catalog = triple_deploy
        got = run_sql(engine, catalog, APPENDIX_SQL[query_name])
        expected = reference_answer(
            dataset.graph(), query_name, dataset.interesting_properties
        )
        assert got == expected


class TestGeneratedVerticalSQL:
    @pytest.mark.parametrize("query_name", ALL_QUERY_NAMES)
    def test_matches_reference_on_column_store(
        self, dataset, vertical_deploy, query_name
    ):
        engine, catalog = vertical_deploy
        scope = (
            None if query_name.endswith("*") or query_name == "q8"
            else dataset.interesting_properties
        )
        sql = generate_vertical_sql(
            APPENDIX_SQL[query_name], catalog, properties=scope
        )
        got = run_sql(engine, catalog, sql)
        expected = reference_answer(
            dataset.graph(), query_name, dataset.interesting_properties
        )
        assert got == expected

    @pytest.mark.parametrize("query_name", ["q1", "q5", "q7", "q8"])
    def test_matches_reference_on_row_store(
        self, dataset, row_vertical_deploy, query_name
    ):
        engine, catalog = row_vertical_deploy
        sql = generate_vertical_sql(APPENDIX_SQL[query_name], catalog)
        got = run_sql(engine, catalog, sql)
        expected = reference_answer(
            dataset.graph(), query_name, dataset.interesting_properties
        )
        assert got == expected

    def test_bound_property_becomes_single_table(self, vertical_deploy):
        _, catalog = vertical_deploy
        sql = generate_vertical_sql(APPENDIX_SQL["q1"], catalog)
        assert "UNION" not in sql.upper()
        assert catalog.property_table("<type>") in sql

    def test_unbound_property_becomes_union(self, vertical_deploy):
        _, catalog = vertical_deploy
        sql = generate_vertical_sql(APPENDIX_SQL["q2*"], catalog)
        assert sql.upper().count("UNION ALL") >= 39  # 40 properties

    def test_restricted_list_drops_properties_join(
        self, dataset, vertical_deploy
    ):
        _, catalog = vertical_deploy
        sql = generate_vertical_sql(
            APPENDIX_SQL["q2"], catalog,
            properties=dataset.interesting_properties,
        )
        assert "properties" not in sql
        assert sql.upper().count("UNION ALL") == 27  # 28 properties

    def test_generated_sql_size_explodes_with_properties(
        self, dataset, vertical_deploy
    ):
        """Section 4.2: queries 'grow to a size that seriously challenges
        the optimizer'."""
        _, catalog = vertical_deploy
        small = generate_vertical_sql(
            APPENDIX_SQL["q2"], catalog,
            properties=dataset.interesting_properties[:5],
        )
        big = generate_vertical_sql(APPENDIX_SQL["q2*"], catalog)
        assert len(big) > 4 * len(small)


class TestPlannerErrors:
    def test_unknown_table(self, triple_deploy):
        _, catalog = triple_deploy
        with pytest.raises(SQLError):
            plan_sql("SELECT x.a FROM nope AS x", catalog)

    def test_unknown_column(self, triple_deploy):
        _, catalog = triple_deploy
        with pytest.raises(SQLError):
            plan_sql("SELECT A.missing FROM triples AS A", catalog)

    def test_ambiguous_column(self, triple_deploy):
        _, catalog = triple_deploy
        with pytest.raises(SQLError):
            plan_sql(
                "SELECT subj FROM triples AS A, triples AS B "
                "WHERE A.subj = B.subj",
                catalog,
            )

    def test_cross_product_rejected(self, triple_deploy):
        _, catalog = triple_deploy
        with pytest.raises(SQLError):
            plan_sql(
                "SELECT A.subj FROM triples AS A, triples AS B", catalog
            )

    def test_having_without_group_by(self, triple_deploy):
        _, catalog = triple_deploy
        with pytest.raises(SQLError):
            plan_sql(
                "SELECT A.subj FROM triples AS A HAVING count(*) > 1",
                catalog,
            )

    def test_ungrouped_select_column(self, triple_deploy):
        _, catalog = triple_deploy
        with pytest.raises(SQLError):
            plan_sql(
                "SELECT A.subj, count(*) FROM triples AS A GROUP BY A.obj",
                catalog,
            )

    def test_non_equi_join_rejected(self, triple_deploy):
        _, catalog = triple_deploy
        with pytest.raises(SQLError):
            plan_sql(
                "SELECT A.subj FROM triples AS A, triples AS B "
                "WHERE A.subj != B.subj",
                catalog,
            )

    def test_unqualified_resolution(self, triple_deploy):
        engine, catalog = triple_deploy
        rows = run_sql(
            engine, catalog,
            "SELECT prop, count(*) FROM triples GROUP BY prop",
        )
        assert len(rows) == 40

    def test_missing_string_constant_gives_empty(self, triple_deploy):
        engine, catalog = triple_deploy
        rows = run_sql(
            engine, catalog,
            "SELECT A.subj FROM triples AS A WHERE A.prop = '<nothing>'",
        )
        assert rows == []


class TestColumnColumnConditions:
    def test_non_equi_filter_with_join(self, dataset, triple_deploy):
        """q8-style: join on obj, filter subj pairs apart — expressible now
        that column-column predicates exist."""
        engine, catalog = triple_deploy
        rows = run_sql(
            engine, catalog,
            "SELECT A.subj, B.subj FROM triples AS A, triples AS B "
            "WHERE A.obj = B.obj AND A.prop = '<records>' "
            "AND B.prop = '<records>' AND A.subj != B.subj",
        )
        for a_subj, b_subj in rows:
            assert a_subj != b_subj

    def test_within_relation_column_condition(self, dataset, triple_deploy):
        """Self-referential triples: subject equals object."""
        engine, catalog = triple_deploy
        rows = run_sql(
            engine, catalog,
            "SELECT A.subj FROM triples AS A WHERE A.subj = A.obj",
        )
        expected = sorted(
            (t.s,) for t in dataset.triples if t.s == t.o
        )
        assert rows == expected

    def test_cyclic_join_graph(self, dataset, triple_deploy):
        """A triangle of join conditions: the third edge becomes a
        post-join filter."""
        engine, catalog = triple_deploy
        rows = run_sql(
            engine, catalog,
            "SELECT A.subj FROM triples AS A, triples AS B, triples AS C "
            "WHERE A.subj = B.subj AND B.subj = C.subj "
            "AND C.subj = A.subj AND A.prop = '<type>' "
            "AND B.prop = '<language>' AND C.prop = '<origin>'",
        )
        # Equivalent tree-shaped query gives the same bag.
        tree = run_sql(
            engine, catalog,
            "SELECT A.subj FROM triples AS A, triples AS B, triples AS C "
            "WHERE A.subj = B.subj AND B.subj = C.subj "
            "AND A.prop = '<type>' "
            "AND B.prop = '<language>' AND C.prop = '<origin>'",
        )
        assert rows == tree
