"""Unit and property tests for the string dictionary."""

import pytest
from hypothesis import given, strategies as st

from repro.dictionary import Dictionary, FrozenDictionary
from repro.errors import DictionaryError


class TestDictionary:
    def test_encode_assigns_dense_oids_in_first_seen_order(self):
        d = Dictionary()
        assert d.encode("<type>") == 0
        assert d.encode("<Text>") == 1
        assert d.encode("<Date>") == 2

    def test_encode_is_idempotent(self):
        d = Dictionary()
        assert d.encode("x") == d.encode("x") == 0
        assert len(d) == 1

    def test_decode_round_trip(self):
        d = Dictionary()
        oid = d.encode("<origin>")
        assert d.decode(oid) == "<origin>"

    def test_init_from_iterable(self):
        d = Dictionary(["a", "b", "a"])
        assert len(d) == 2
        assert list(d) == ["a", "b"]

    def test_encode_many_and_decode_many(self):
        d = Dictionary()
        oids = d.encode_many(["a", "b", "a", "c"])
        assert oids == [0, 1, 0, 2]
        assert d.decode_many(oids) == ["a", "b", "a", "c"]

    def test_lookup_unknown_raises(self):
        d = Dictionary()
        with pytest.raises(DictionaryError):
            d.lookup("missing")

    def test_lookup_or_none(self):
        d = Dictionary(["present"])
        assert d.lookup_or_none("present") == 0
        assert d.lookup_or_none("missing") is None

    def test_decode_out_of_range_raises(self):
        d = Dictionary(["only"])
        with pytest.raises(DictionaryError):
            d.decode(5)
        with pytest.raises(DictionaryError):
            d.decode(-1)

    def test_encode_rejects_non_strings(self):
        d = Dictionary()
        with pytest.raises(DictionaryError):
            d.encode(42)

    def test_contains(self):
        d = Dictionary(["here"])
        assert "here" in d
        assert "gone" not in d

    def test_byte_size_counts_utf8_plus_slot(self):
        d = Dictionary(["ab"])
        assert d.byte_size() == 2 + 8

    def test_iteration_in_oid_order(self):
        d = Dictionary()
        for s in ["z", "a", "m"]:
            d.encode(s)
        assert list(d) == ["z", "a", "m"]


class TestFrozenDictionary:
    def test_freeze_snapshot_is_independent(self):
        d = Dictionary(["a"])
        frozen = d.freeze()
        d.encode("b")
        assert len(frozen) == 1
        assert len(d) == 2

    def test_frozen_has_no_encode(self):
        frozen = Dictionary(["a"]).freeze()
        assert not hasattr(frozen, "encode")

    def test_frozen_lookup_and_decode(self):
        frozen = Dictionary(["a", "b"]).freeze()
        assert frozen.lookup("b") == 1
        assert frozen.decode(0) == "a"
        assert frozen.lookup_or_none("zzz") is None
        with pytest.raises(DictionaryError):
            frozen.lookup("zzz")
        with pytest.raises(DictionaryError):
            frozen.decode(99)

    def test_frozen_type(self):
        assert isinstance(Dictionary().freeze(), FrozenDictionary)

    def test_frozen_byte_size_matches_source(self):
        d = Dictionary(["hello", "world"])
        assert d.freeze().byte_size() == d.byte_size()


@given(st.lists(st.text(min_size=0, max_size=30)))
def test_property_round_trip(strings):
    """encode/decode round-trips for arbitrary strings."""
    d = Dictionary()
    oids = [d.encode(s) for s in strings]
    assert [d.decode(o) for o in oids] == strings


@given(st.lists(st.text(max_size=20), unique=True))
def test_property_oids_are_dense_and_ordered(strings):
    d = Dictionary()
    oids = [d.encode(s) for s in strings]
    assert oids == list(range(len(strings)))
    assert list(d) == strings


@given(st.lists(st.text(max_size=20)))
def test_property_length_counts_distinct(strings):
    d = Dictionary()
    for s in strings:
        d.encode(s)
    assert len(d) == len(set(strings))
