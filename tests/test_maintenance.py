"""Tests for the incremental-maintenance extension."""

import pytest

from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.errors import StorageError
from repro.model.graph import RDFGraph
from repro.model.triple import Triple
from repro.queries import build_query, reference_answer
from repro.rowstore import RowStoreEngine
from repro.storage import build_triple_store, build_vertical_store
from repro.storage.maintenance import insert_triples


@pytest.fixture()
def dataset():
    return generate_barton(
        n_triples=4_000, n_properties=25, n_interesting=20, seed=9
    )


def _answers(engine, catalog, query_name):
    plan = build_query(catalog, query_name)
    relation = engine.execute(plan)
    return sorted(
        relation.decoded_tuples(catalog.dictionary, order=plan.output_columns())
    )


NEW_TRIPLES = [
    Triple("<entity/1>", "<language>", "<language/iso639-2b/fre>"),
    Triple("<new-subject>", "<type>", "<Text>"),
    Triple("<new-subject>", "<language>", "<language/iso639-2b/fre>"),
]

NEW_PROPERTY_TRIPLES = [
    Triple("<entity/2>", "<brand-new-prop>", "<whatever>"),
]


class TestTripleStoreMaintenance:
    @pytest.mark.parametrize("engine_cls", [ColumnStoreEngine, RowStoreEngine])
    def test_insert_then_query(self, dataset, engine_cls):
        engine = engine_cls()
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        catalog, report = insert_triples(engine, catalog, NEW_TRIPLES)
        assert report.n_triples == 3
        assert report.tables_rebuilt == ["triples"]
        assert not report.schema_changed
        assert not report.plans_invalidated

        graph = RDFGraph(dataset.triples + NEW_TRIPLES)
        for q in ("q1", "q2", "q4"):
            assert _answers(engine, catalog, q) == reference_answer(
                graph, q, dataset.interesting_properties
            ), q

    def test_new_property_does_not_change_schema(self, dataset):
        engine = ColumnStoreEngine()
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        n_tables = len(engine.table_names())
        catalog, report = insert_triples(
            engine, catalog, NEW_PROPERTY_TRIPLES
        )
        assert report.new_properties == ["<brand-new-prop>"]
        assert not report.schema_changed  # still one triples table
        assert len(engine.table_names()) == n_tables
        assert "<brand-new-prop>" in catalog.all_properties

    def test_clustering_preserved_after_rebuild(self, dataset):
        import numpy as np

        engine = ColumnStoreEngine()
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
            clustering="PSO",
        )
        catalog, _ = insert_triples(engine, catalog, NEW_TRIPLES)
        prop = engine.table("triples").array("prop")
        assert (np.diff(prop) >= 0).all()

    def test_row_store_indexes_survive(self, dataset):
        engine = RowStoreEngine()
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
            clustering="PSO",
        )
        before = sorted(
            i.name for i in engine.table("triples").secondary_indexes()
        )
        catalog, _ = insert_triples(engine, catalog, NEW_TRIPLES)
        after = sorted(
            i.name for i in engine.table("triples").secondary_indexes()
        )
        assert after == before


class TestVerticalMaintenance:
    @pytest.mark.parametrize("engine_cls", [ColumnStoreEngine, RowStoreEngine])
    def test_insert_rebuilds_only_affected_tables(self, dataset, engine_cls):
        engine = engine_cls()
        catalog = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        catalog, report = insert_triples(engine, catalog, NEW_TRIPLES)
        # Only <type> and <language> tables were touched.
        assert len(report.tables_rebuilt) == 2
        assert not report.schema_changed

        graph = RDFGraph(dataset.triples + NEW_TRIPLES)
        for q in ("q1", "q2", "q4"):
            assert _answers(engine, catalog, q) == reference_answer(
                graph, q, dataset.interesting_properties
            ), q

    def test_new_property_changes_schema_and_invalidates_plans(self, dataset):
        """The paper's Section 4.2 observation, executable: a new property
        means CREATE TABLE and re-producing the generated queries."""
        engine = ColumnStoreEngine()
        catalog = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        stale_plan = build_query(catalog, "q2*")
        n_tables_before = len(engine.table_names())

        catalog, report = insert_triples(
            engine, catalog, NEW_PROPERTY_TRIPLES
        )
        assert report.schema_changed
        assert report.plans_invalidated
        assert len(engine.table_names()) == n_tables_before + 1

        # The stale plan still runs but is silently incomplete; the
        # re-produced plan covers the new table.
        from repro.plan import count_operators

        fresh_plan = build_query(catalog, "q2*")
        assert count_operators(fresh_plan) > count_operators(stale_plan)

    def test_rebuild_cost_asymmetry(self, dataset):
        """Inserting a handful of triples rewrites far less in the vertical
        scheme (small property tables) than in the triple-store (whole
        table) — the flip side of the schema-change susceptibility."""
        col_t = ColumnStoreEngine()
        cat_t = build_triple_store(
            col_t, dataset.triples, dataset.interesting_properties
        )
        _, report_t = insert_triples(col_t, cat_t, NEW_TRIPLES)

        col_v = ColumnStoreEngine()
        cat_v = build_vertical_store(
            col_v, dataset.triples, dataset.interesting_properties
        )
        _, report_v = insert_triples(col_v, cat_v, NEW_TRIPLES)

        assert report_v.bytes_rewritten < report_t.bytes_rewritten

    def test_unsupported_scheme_rejected(self, dataset):
        engine = ColumnStoreEngine()
        from repro.storage import build_property_table_store

        catalog = build_property_table_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        with pytest.raises(StorageError):
            insert_triples(engine, catalog, NEW_TRIPLES)


class TestDropTable:
    def test_column_store_drop_and_recreate(self):
        engine = ColumnStoreEngine()
        engine.create_table("t", {"x": [1, 2]}, sort_by=["x"])
        engine.drop_table("t")
        assert not engine.has_table("t")
        engine.create_table("t", {"x": [3]}, sort_by=["x"])  # name reusable
        assert engine.table("t").n_rows == 1

    def test_row_store_drop_and_recreate(self):
        engine = RowStoreEngine()
        engine.create_table(
            "t", {"x": [1, 2], "y": [3, 4]}, sort_by=["x"],
            indexes=[{"name": "ix", "columns": ["y"]}],
        )
        engine.drop_table("t")
        assert not engine.has_table("t")
        engine.create_table("t", {"x": [9], "y": [8]}, sort_by=["x"])
        assert engine.table("t").n_rows == 1

    def test_drop_unknown_table(self):
        engine = ColumnStoreEngine()
        with pytest.raises(StorageError):
            engine.drop_table("ghost")
