"""Tests for the content-addressed benchmark artifact cache."""

import pickle

import pytest

from repro.bench.artifacts import (
    ArtifactCache,
    cached_dataset,
    cached_store_payload,
    dataset_cache_key,
)
from repro.bench.runner import BenchmarkRunner
from repro.bench.systems import deploy
from repro.data import generate_barton
from repro.data.barton import BartonConfig
from repro.queries import build_query


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(root=tmp_path / "cache")


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(n_triples=6_000, n_properties=40, seed=11)


def _run_queries(deployment, queries=("q1", "q2", "q5")):
    """Simulated timings + result rows for a few benchmark queries."""
    timings = {}
    for query in queries:
        runner = BenchmarkRunner(deployment.engine)
        result = runner.run(query, deployment.executor(query), "cold")
        timings[query] = (
            result.timing.real_seconds,
            result.timing.bytes_read,
        )
    return timings


class TestCacheBasics:
    def test_miss_then_hit(self, cache):
        calls = []

        def build():
            calls.append(1)
            return {"x": 1}

        first = cache.get_or_build("thing", {"a": 1}, build)
        second = cache.get_or_build("thing", {"a": 1}, build)
        assert first == second == {"x": 1}
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_key_is_order_insensitive(self, cache):
        assert cache.key("k", {"a": 1, "b": 2}) == cache.key(
            "k", {"b": 2, "a": 1}
        )

    def test_eviction_prunes_oldest(self, cache):
        cache.max_bytes = 1  # anything written is immediately over budget
        cache.get_or_build("thing", {"n": 1}, lambda: list(range(100)))
        assert cache.entries() == []


class TestHitIdentity:
    def test_dataset_hit_equals_fresh_build(self, cache):
        config = BartonConfig(n_triples=4_000, n_properties=30, seed=5)
        built = cached_dataset(config, cache=cache)
        hit = cached_dataset(
            BartonConfig(n_triples=4_000, n_properties=30, seed=5),
            cache=cache,
        )
        assert cache.hits == 1
        assert hit.triples == built.triples
        assert hit.interesting_properties == built.interesting_properties

    @pytest.mark.parametrize("system,scheme", [
        ("MonetDB", "triple"),
        ("MonetDB", "vert"),
        ("DBX", "triple"),
    ])
    def test_cached_store_matches_fresh_build(
        self, cache, dataset, system, scheme
    ):
        fresh = deploy(dataset, system, scheme, "PSO", cache=False)
        cached = deploy(dataset, system, scheme, "PSO", cache=cache)
        warm = deploy(dataset, system, scheme, "PSO", cache=cache)
        assert cache.hits == 1 and cache.misses == 1

        fresh_timings = _run_queries(fresh)
        assert _run_queries(cached) == fresh_timings
        # The decisive property: a cache hit yields identical *simulated*
        # timings, not just identical result rows.
        assert _run_queries(warm) == fresh_timings

    def test_cached_store_rows_match(self, cache, dataset):
        import numpy as np

        fresh = deploy(dataset, "MonetDB", "vert", cache=False)
        warm = deploy(dataset, "MonetDB", "vert", cache=cache)
        for query in ("q1", "q2", "q7"):
            one, _ = fresh.engine.run(build_query(fresh.catalog, query))
            two, _ = warm.engine.run(build_query(warm.catalog, query))
            assert list(one.columns) == list(two.columns)
            for name in one.columns:
                assert np.array_equal(one.columns[name], two.columns[name])


class TestKeyInvalidation:
    def test_n_triples_changes_key(self, cache):
        base = dataset_cache_key(generate_barton(n_triples=2_000, seed=3))
        other = dataset_cache_key(generate_barton(n_triples=2_001, seed=3))
        assert cache.key("dataset", base) != cache.key("dataset", other)

    def test_seed_changes_key(self, cache):
        base = dataset_cache_key(generate_barton(n_triples=2_000, seed=3))
        other = dataset_cache_key(generate_barton(n_triples=2_000, seed=4))
        assert cache.key("dataset", base) != cache.key("dataset", other)

    def test_schema_version_changes_key(self, tmp_path):
        one = ArtifactCache(root=tmp_path, schema=1)
        two = ArtifactCache(root=tmp_path, schema=2)
        params = {"n": 1}
        assert one.key("dataset", params) != two.key("dataset", params)
        one.get_or_build("dataset", params, lambda: "v1")
        # The schema bump misses the old entry and rebuilds.
        assert two.get_or_build("dataset", params, lambda: "v2") == "v2"

    def test_store_key_varies_with_physical_design(self, cache, dataset):
        cached_store_payload(dataset, "triple", "PSO", cache=cache)
        cached_store_payload(dataset, "triple", "SPO", cache=cache)
        cached_store_payload(dataset, "vertical", cache=cache)
        assert cache.misses == 3 and cache.hits == 0

    def test_uncacheable_dataset_builds_fresh(self, cache):
        class Plain:
            triples = generate_barton(n_triples=1_000, seed=2).triples
            interesting_properties = []

        assert dataset_cache_key(Plain()) is None
        payload = cached_store_payload(Plain(), "triple", cache=cache)
        assert payload["tables"]
        assert cache.hits == cache.misses == 0  # never touched the cache


class TestCorruption:
    def _entry_path(self, cache):
        entries = cache.entries()
        assert len(entries) == 1
        return entries[0][0]

    @pytest.mark.parametrize("damage", [
        lambda blob: blob[: len(blob) // 2],          # truncated
        lambda blob: b"0" * 64 + b"\n" + blob[65:],   # checksum mismatch
        lambda blob: blob[:65] + b"not a pickle",     # unpicklable body
        lambda blob: b"junk with no header",          # malformed header
    ])
    def test_corrupt_entry_rebuilt(self, cache, damage):
        cache.get_or_build("thing", {"n": 1}, lambda: {"v": 1})
        path = self._entry_path(cache)
        path.write_bytes(damage(path.read_bytes()))
        value = cache.get_or_build("thing", {"n": 1}, lambda: {"v": 2})
        assert value == {"v": 2}  # rebuilt, not crashed
        assert cache.corrupt == 1
        # The rebuilt entry replaced the corrupt one and hits again.
        assert cache.get_or_build("thing", {"n": 1}, lambda: 0) == {"v": 2}

    def test_checksum_guards_bit_flips(self, cache):
        cache.get_or_build("thing", {"n": 1}, lambda: list(range(64)))
        path = self._entry_path(cache)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.get_or_build("thing", {"n": 1}, lambda: "fresh") == "fresh"
        assert cache.corrupt == 1

    def test_valid_entry_round_trips_pickle(self, cache):
        value = {"arrays": [1, 2, 3], "nested": {"k": "v"}}
        cache.get_or_build("thing", {"n": 1}, lambda: value)
        blob = self._entry_path(cache).read_bytes()
        assert pickle.loads(blob.partition(b"\n")[2]) == value
