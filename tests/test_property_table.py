"""Tests for the property-table scheme extension."""

import numpy as np
import pytest

from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.errors import StorageError
from repro.model.triple import Triple
from repro.queries import ALL_QUERY_NAMES, build_query, reference_answer
from repro.rowstore import RowStoreEngine
from repro.storage import build_property_table_store
from repro.storage.property_table import NULL_OID, property_column_name


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(n_triples=6_000, n_properties=40, seed=11)


def deploy(dataset, engine_kind="col"):
    engine = (
        ColumnStoreEngine() if engine_kind == "col" else RowStoreEngine()
    )
    catalog = build_property_table_store(
        engine, dataset.triples, dataset.interesting_properties
    )
    return engine, catalog


class TestLayout:
    SMALL = [
        Triple("<s1>", "<a>", "<x>"),      # single-valued -> wide table
        Triple("<s1>", "<b>", "<y1>"),     # multi-valued -> leftover
        Triple("<s1>", "<b>", "<y2>"),
        Triple("<s2>", "<a>", "<z>"),
        Triple("<s2>", "<c>", "<w>"),      # non-clustered -> leftover
    ]

    def small_catalog(self):
        engine = ColumnStoreEngine()
        catalog = build_property_table_store(
            engine, self.SMALL, ["<a>", "<b>"],
            clustered_properties=["<a>", "<b>"],
        )
        return engine, catalog

    def test_single_valued_goes_to_wide_table(self):
        engine, catalog = self.small_catalog()
        wide = engine.table(catalog.property_table_name)
        d = catalog.dictionary
        col_a = property_column_name(d.lookup("<a>"))
        values = {
            d.decode(s): v
            for s, v in zip(wide.array("subj"), wide.array(col_a))
        }
        assert d.decode(values["<s1>"]) == "<x>"
        assert d.decode(values["<s2>"]) == "<z>"

    def test_multi_valued_spills_to_leftover(self):
        engine, catalog = self.small_catalog()
        wide = engine.table(catalog.property_table_name)
        d = catalog.dictionary
        col_b = property_column_name(d.lookup("<b>"))
        # <s1> has two <b> values: the wide cell is NULL...
        values = dict(zip(wide.array("subj"), wide.array(col_b)))
        assert values[d.lookup("<s1>")] == NULL_OID
        # ... and both triples are in the leftover table.
        leftover = engine.table(catalog.triples_table)
        b_rows = [
            (s, o)
            for s, p, o in zip(
                leftover.array("subj"),
                leftover.array("prop"),
                leftover.array("obj"),
            )
            if p == d.lookup("<b>")
        ]
        assert len(b_rows) == 2

    def test_every_triple_represented_exactly_once(self):
        engine, catalog = self.small_catalog()
        wide = engine.table(catalog.property_table_name)
        leftover = engine.table(catalog.triples_table)
        n_wide_cells = sum(
            int((wide.array(c) != NULL_OID).sum())
            for c in wide.column_names()
            if c != "subj"
        )
        assert n_wide_cells + leftover.n_rows == len(self.SMALL)

    def test_null_sentinel_never_a_real_oid(self):
        _, catalog = self.small_catalog()
        assert NULL_OID < 0
        assert len(catalog.dictionary) > 0

    def test_needs_clustered_properties(self):
        engine = ColumnStoreEngine()
        with pytest.raises(StorageError):
            build_property_table_store(
                engine, self.SMALL, [], clustered_properties=[]
            )

    def test_scheme_marker(self):
        _, catalog = self.small_catalog()
        assert catalog.scheme == "property_table"
        assert not catalog.is_triple_store()
        assert not catalog.is_vertical()


class TestQueriesMatchReference:
    @pytest.fixture(scope="class")
    def col_deploy(self, dataset):
        return deploy(dataset, "col")

    @pytest.fixture(scope="class")
    def row_deploy(self, dataset):
        return deploy(dataset, "row")

    @pytest.mark.parametrize("query_name", ALL_QUERY_NAMES)
    def test_column_store(self, dataset, col_deploy, query_name):
        engine, catalog = col_deploy
        plan = build_query(catalog, query_name)
        relation = engine.execute(plan)
        got = sorted(
            relation.decoded_tuples(
                catalog.dictionary, order=plan.output_columns()
            )
        )
        expected = reference_answer(
            dataset.graph(), query_name, dataset.interesting_properties
        )
        assert got == expected

    @pytest.mark.parametrize("query_name", ["q1", "q2", "q5", "q7", "q8"])
    def test_row_store(self, dataset, row_deploy, query_name):
        engine, catalog = row_deploy
        plan = build_query(catalog, query_name)
        relation = engine.execute(plan)
        got = sorted(
            relation.decoded_tuples(
                catalog.dictionary, order=plan.output_columns()
            )
        )
        expected = reference_answer(
            dataset.graph(), query_name, dataset.interesting_properties
        )
        assert got == expected


class TestPaperCriticisms:
    """The criticisms quoted in Section 4.2 hold mechanically."""

    def test_unbound_property_queries_union_everything(self, dataset):
        from repro.plan import Union, walk

        _, catalog = deploy(dataset)
        plan = build_query(catalog, "q2*")
        unions = [n for n in walk(plan) if isinstance(n, Union)]
        # 28 wide columns + the leftover table in one union.
        assert any(len(u.inputs) >= 29 for u in unions)

    def test_bound_property_still_needs_two_branches(self, dataset):
        from repro.plan import Union, walk

        _, catalog = deploy(dataset)
        plan = build_query(catalog, "q1")
        unions = [n for n in walk(plan) if isinstance(n, Union)]
        assert any(len(u.inputs) == 2 for u in unions)

    def test_plan_larger_than_triple_store(self, dataset):
        from repro.plan import count_operators
        from repro.storage import build_triple_store

        _, pt_catalog = deploy(dataset)
        engine = ColumnStoreEngine()
        t_catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        assert count_operators(build_query(pt_catalog, "q2*")) > (
            3 * count_operators(build_query(t_catalog, "q2*"))
        )
