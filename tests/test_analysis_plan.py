"""Golden-diagnostic tests for the plan linter: one deliberately
misshaped plan per rule, plus the frontend mode machinery."""

import pytest

from repro.analysis import (
    ERROR,
    INFO,
    WARNING,
    lint_plan,
    max_severity,
    worst,
)
from repro.analysis.plan_lint import (
    PLAN_RULES,
    assert_no_regression,
    check_plan,
    lint_mode,
    set_lint_mode,
)
from repro.errors import PlanError
from repro.plan import (
    ColumnComparison,
    Comparison,
    Extend,
    GroupBy,
    Having,
    Join,
    Project,
    Scan,
    Select,
    Union,
)


def scan(alias):
    return Scan("triples", ["subj", "prop", "obj"], alias=alias)


def rules_fired(plan, severity=None):
    diagnostics = lint_plan(plan)
    if severity is not None:
        diagnostics = [d for d in diagnostics if d.severity == severity]
    return {d.rule for d in diagnostics}


@pytest.fixture(autouse=True)
def _reset_mode():
    from repro.analysis import plan_lint

    previous = plan_lint._lint_mode
    yield
    plan_lint._lint_mode = previous


# ---------------------------------------------------------------------------
# one golden misshaped plan per rule
# ---------------------------------------------------------------------------

class TestCartesianProduct:
    def test_join_on_equality_pinned_keys_both_sides(self):
        plan = Join(
            Select(scan("A"), [Comparison("A.subj", "=", 5)]),
            Select(scan("B"), [Comparison("B.subj", "=", 7)]),
            on=[("A.subj", "B.subj")],
        )
        findings = [
            d for d in lint_plan(plan) if d.rule == "cartesian-product"
        ]
        assert len(findings) == 1
        assert findings[0].severity == WARNING
        assert "cartesian" in findings[0].message
        assert findings[0].path == "$"

    def test_join_on_extend_constants(self):
        plan = Join(
            Extend(scan("A"), "A.tag", 3),
            Extend(scan("B"), "B.tag", 3),
            on=[("A.tag", "B.tag")],
        )
        assert "cartesian-product" in rules_fired(plan)

    def test_varying_key_is_not_cartesian(self):
        plan = Join(
            Select(scan("A"), [Comparison("A.prop", "=", 5)]),
            scan("B"),
            on=[("A.subj", "B.subj")],
        )
        assert "cartesian-product" not in rules_fired(plan)


class TestUnsatisfiableFilter:
    def test_contradictory_range(self):
        plan = Select(
            scan("A"),
            [Comparison("A.obj", ">", 5), Comparison("A.obj", "<", 3)],
        )
        findings = [
            d for d in lint_plan(plan) if d.rule == "unsatisfiable-filter"
        ]
        assert len(findings) == 1
        assert findings[0].severity == WARNING
        assert "A.obj" in findings[0].message

    def test_contradictory_equalities_across_select_chain(self):
        # The chain Select(Select(...)) is folded as one conjunction.
        plan = Select(
            Select(scan("A"), [Comparison("A.obj", "=", 6)]),
            [Comparison("A.obj", "=", 5)],
        )
        assert "unsatisfiable-filter" in rules_fired(plan)

    def test_strict_bounds_tighten_by_one(self):
        # Integer oids: x > 4 AND x < 6 admits exactly x = 5.
        satisfiable = Select(
            scan("A"),
            [Comparison("A.obj", ">", 4), Comparison("A.obj", "<", 6)],
        )
        assert "unsatisfiable-filter" not in rules_fired(satisfiable)
        # ...but excluding the single admitted value closes the interval.
        empty = Select(
            scan("A"),
            [
                Comparison("A.obj", ">", 4),
                Comparison("A.obj", "<", 6),
                Comparison("A.obj", "!=", 5),
            ],
        )
        assert "unsatisfiable-filter" in rules_fired(empty)

    def test_self_comparison(self):
        plan = Select(
            scan("A"), [ColumnComparison("A.obj", "<", "A.obj")]
        )
        assert "unsatisfiable-filter" in rules_fired(plan)

    def test_negative_having_bound(self):
        plan = Having(
            GroupBy(scan("A"), keys=["A.prop"]),
            Comparison("count", "<", -1),
        )
        assert "unsatisfiable-filter" in rules_fired(plan)

    def test_pinned_value_outside_range(self):
        plan = Select(
            scan("A"),
            [Comparison("A.obj", "=", 2), Comparison("A.obj", ">=", 10)],
        )
        assert "unsatisfiable-filter" in rules_fired(plan)


class TestDeadColumn:
    def test_unconsumed_scan_column_is_info(self):
        plan = Project(scan("A"), [("s", "A.subj")])
        findings = [d for d in lint_plan(plan) if d.rule == "dead-column"]
        assert {d.severity for d in findings} == {INFO}
        dead = {d.message.split()[2] for d in findings}
        assert dead == {"A.prop", "A.obj"}

    def test_predicate_consumption_counts(self):
        plan = Project(
            Select(scan("A"), [Comparison("A.prop", "=", 1)]),
            [("s", "A.subj")],
        )
        findings = [d for d in lint_plan(plan) if d.rule == "dead-column"]
        assert all("A.obj" in d.message for d in findings)

    def test_unconsumed_extend(self):
        plan = Project(
            Extend(scan("A"), "A.lit", 9),
            [("s", "A.subj")],
        )
        assert any(
            d.rule == "dead-column" and "A.lit" in d.message
            for d in lint_plan(plan)
        )


class TestDomainMismatch:
    def test_property_vs_subject_join(self):
        plan = Join(scan("A"), scan("B"), on=[("A.prop", "B.subj")])
        findings = [
            d for d in lint_plan(plan) if d.rule == "domain-mismatch"
        ]
        assert len(findings) == 1
        assert findings[0].severity == WARNING
        assert "property-coded" in findings[0].message

    def test_subject_object_join_is_fine(self):
        # q5 walks an object into a subject; q8 joins object to object.
        plan = Join(scan("A"), scan("B"), on=[("A.obj", "B.subj")])
        assert "domain-mismatch" not in rules_fired(plan)

    def test_count_vs_entity_join(self):
        counted = GroupBy(scan("A"), keys=["A.subj"], count_column="count")
        plan = Join(counted, scan("B"), on=[("count", "B.obj")])
        assert "domain-mismatch" in rules_fired(plan)

    def test_union_mixing_property_and_entity(self):
        plan = Union(
            [
                Project(scan("A"), [("x", "A.prop")]),
                Project(scan("B"), [("x", "B.obj")]),
            ],
            distinct=False,
        )
        assert "domain-mismatch" in rules_fired(plan)


class TestDuplicateColumns:
    def test_duplicate_scan_columns_are_error(self):
        plan = Scan("triples", ["subj", "subj"], alias="A")
        findings = [
            d for d in lint_plan(plan) if d.rule == "duplicate-columns"
        ]
        assert findings and findings[0].severity == ERROR

    def test_union_branch_shadowing_is_info(self):
        plan = Union(
            [
                Project(scan("A"), [("x", "A.subj")]),
                Project(scan("B"), [("y", "B.subj")]),
            ],
            distinct=False,
        )
        findings = [
            d for d in lint_plan(plan) if d.rule == "duplicate-columns"
        ]
        assert findings and findings[0].severity == INFO
        assert "shadowed" in findings[0].message


class TestPushdownSelect:
    def test_one_sided_selection_above_join(self):
        plan = Select(
            Join(scan("A"), scan("B"), on=[("A.subj", "B.subj")]),
            [Comparison("A.obj", "=", 3)],
        )
        findings = [
            d for d in lint_plan(plan) if d.rule == "pushdown-select"
        ]
        assert len(findings) == 1
        assert findings[0].severity == WARNING
        assert "left input" in findings[0].message

    def test_cross_filters_stay_put(self):
        # A column-column filter over both inputs belongs above the join.
        plan = Select(
            Join(scan("A"), scan("B"), on=[("A.subj", "B.subj")]),
            [ColumnComparison("A.obj", "=", "B.obj")],
        )
        assert "pushdown-select" not in rules_fired(plan)


class TestMissingConstant:
    def test_none_value_is_info(self):
        plan = Select(scan("A"), [Comparison("A.obj", "=", None)])
        findings = [
            d for d in lint_plan(plan) if d.rule == "missing-constant"
        ]
        assert findings and findings[0].severity == INFO
        assert "never satisfied" in findings[0].message

    def test_not_equal_none_is_redundant(self):
        plan = Select(scan("A"), [Comparison("A.obj", "!=", None)])
        findings = [
            d for d in lint_plan(plan) if d.rule == "missing-constant"
        ]
        assert findings and "always true" in findings[0].message


# ---------------------------------------------------------------------------
# machinery
# ---------------------------------------------------------------------------

class TestMachinery:
    def test_every_rule_is_catalogued(self):
        expected = {
            "cartesian-product", "unsatisfiable-filter", "dead-column",
            "domain-mismatch", "duplicate-columns", "pushdown-select",
            "missing-constant",
        }
        assert set(PLAN_RULES) == expected

    def test_diagnostics_sorted_most_severe_first(self):
        plan = Select(
            Join(
                Scan("triples", ["subj", "subj"], alias="A"),
                scan("B"),
                on=[("A.subj", "B.subj")],
            ),
            [Comparison("A.subj", "=", None)],
        )
        diagnostics = lint_plan(plan)
        ranks = [("info", "warning", "error").index(d.severity)
                 for d in diagnostics]
        assert ranks == sorted(ranks, reverse=True)

    def test_rule_subset(self):
        plan = Project(
            Select(scan("A"), [Comparison("A.obj", "=", None)]),
            [("s", "A.subj")],
        )
        only = lint_plan(plan, rules=["dead-column"])
        assert {d.rule for d in only} == {"dead-column"}

    def test_worst_and_max_severity(self):
        plan = Select(
            scan("A"),
            [Comparison("A.obj", ">", 5), Comparison("A.obj", "<", 3)],
        )
        diagnostics = lint_plan(plan)
        assert max_severity(diagnostics) == WARNING
        assert worst(diagnostics, at_least=WARNING)
        assert not worst(diagnostics, at_least=ERROR)

    def test_check_plan_strict_raises(self):
        plan = Join(scan("A"), scan("B"), on=[("A.prop", "B.subj")])
        with pytest.raises(PlanError, match="fails lint"):
            check_plan(plan, where="test", mode="strict")

    def test_check_plan_off_is_empty(self):
        plan = Join(scan("A"), scan("B"), on=[("A.prop", "B.subj")])
        assert check_plan(plan, where="test", mode="off") == ()

    def test_check_plan_warn_returns_diagnostics(self):
        plan = Join(scan("A"), scan("B"), on=[("A.prop", "B.subj")])
        diagnostics = check_plan(plan, where="test", mode="warn")
        assert any(d.rule == "domain-mismatch" for d in diagnostics)

    def test_set_lint_mode_validates(self):
        with pytest.raises(ValueError):
            set_lint_mode("loud")
        set_lint_mode("strict")
        assert lint_mode() == "strict"

    def test_env_mode(self, monkeypatch):
        from repro.analysis import plan_lint

        plan_lint._lint_mode = None
        monkeypatch.setenv("REPRO_LINT", "off")
        assert lint_mode() == "off"
        monkeypatch.setenv("REPRO_LINT", "garbage")
        assert lint_mode() == "warn"

    def test_assert_no_regression(self):
        clean = Join(scan("A"), scan("B"), on=[("A.subj", "B.subj")])
        worse = Join(scan("A"), scan("B"), on=[("A.prop", "B.subj")])
        assert_no_regression(clean, clean)
        with pytest.raises(PlanError, match="regression"):
            assert_no_regression(clean, worse, where="test-rewrite")

    def test_diagnostic_render_and_dict(self):
        plan = Join(scan("A"), scan("B"), on=[("A.prop", "B.subj")])
        d = [x for x in lint_plan(plan) if x.rule == "domain-mismatch"][0]
        assert "domain-mismatch" in d.render()
        document = d.to_dict()
        assert document["severity"] == WARNING
        assert document["path"] == "$"
