"""Differential testing of the BGP translator.

Hypothesis generates small random graphs and random tree-shaped basic graph
patterns; the engine answers (through bgp_plan, on both schemes) must equal
the naive RDFGraph.solve reference.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import RDFStore, Var
from repro.model import RDFGraph, Triple

SUBJECTS = [f"<s{i}>" for i in range(4)]
PROPERTIES = [f"<p{i}>" for i in range(3)]
OBJECTS = ["<s0>", "<s1>", "<o0>", "<o1>"]  # overlap with subjects

triples_strategy = st.lists(
    st.tuples(
        st.sampled_from(SUBJECTS),
        st.sampled_from(PROPERTIES),
        st.sampled_from(OBJECTS),
    ),
    min_size=1,
    max_size=20,
)


@st.composite
def tree_bgps(draw):
    """A connected, tree-shaped BGP of 1-3 patterns."""
    n_patterns = draw(st.integers(1, 3))
    variables = ["a", "b", "c", "d"]
    patterns = []
    used_vars = []

    def term(position, must_include=None):
        if must_include is not None and draw(st.booleans()):
            return Var(must_include)
        choice = draw(st.integers(0, 2))
        if choice == 0:
            pool = {
                "s": SUBJECTS, "p": PROPERTIES, "o": OBJECTS,
            }[position]
            return draw(st.sampled_from(pool))
        name = draw(st.sampled_from(variables))
        used_vars.append(name)
        return Var(name)

    for i in range(n_patterns):
        connector = None
        if i > 0 and used_vars:
            connector = draw(st.sampled_from(sorted(set(used_vars))))
        # Ensure connectivity: put the connector somewhere in the pattern.
        s = term("s")
        p = term("p")
        o = term("o")
        if connector is not None:
            slot = draw(st.integers(0, 2))
            replacement = Var(connector)
            s, p, o = [
                replacement if j == slot else t
                for j, t in enumerate((s, p, o))
            ]
            used_vars.append(connector)
        for t in (s, p, o):
            if isinstance(t, Var):
                used_vars.append(t.name)
        patterns.append((s, p, o))
    return patterns


def _is_connected(patterns):
    if len(patterns) <= 1:
        return True
    sets = []
    for pattern in patterns:
        sets.append({t.name for t in pattern if isinstance(t, Var)})
    joined = sets[0].copy()
    remaining = sets[1:]
    while remaining:
        for s in list(remaining):
            if s & joined:
                joined |= s
                remaining.remove(s)
                break
        else:
            return False
    return True


@settings(deadline=None, max_examples=40)
@given(raw_triples=triples_strategy, bgp=tree_bgps(),
       scheme=st.sampled_from(["vertical", "triple"]))
def test_bgp_matches_reference(raw_triples, bgp, scheme):
    if bgp is None or not _is_connected(bgp):
        return
    triples = [Triple(*t) for t in raw_triples]
    graph = RDFGraph(triples)
    expected = graph.solve(bgp)

    store = RDFStore.from_triples(triples, scheme=scheme)
    variables = sorted(
        {t.name for pattern in bgp for t in pattern if isinstance(t, Var)}
    )
    got = store.solve(bgp, projection=variables)

    def canon(bindings):
        return sorted(
            tuple(b.get(v) for v in variables) for b in bindings
        )

    assert canon(got) == canon(expected)
