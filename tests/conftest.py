"""Shared pytest configuration for the unit/integration test suite."""

from hypothesis import HealthCheck, settings

# The engines under test execute real (if small) query plans per example;
# wall-clock per example varies too much for hypothesis's default deadline,
# and module-scoped engine fixtures are intentional (they are stateless
# across runs).
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro")
