"""CancellationToken under concurrent sessions.

Covers the satellite's three scenarios: a timeout firing while the query
is still queued behind another session, a timeout firing mid-execution,
and the single-use (bind-once) token contract.
"""

import threading

import pytest

import repro.api as api
from repro.data import generate_barton
from repro.errors import QueryTimeout, ReproError
from repro.exec.cancel import CancellationToken
from repro.server.scheduler import SchedulerConfig, SessionScheduler

SCALE = dict(n_triples=3_000, n_properties=30, seed=7)


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(**SCALE)


class _SelectiveTimer:
    """threading.Timer stand-in that fires synchronously on start() for
    sub-second deadlines and never for generous ones — makes "the
    deadline expired mid-execution" deterministic instead of racing the
    query (the same idiom as test_api's _InstantTimer, extended so
    threads with long timeouts coexist with doomed ones)."""

    def __init__(self, interval, function, args=None, kwargs=None):
        self.interval = interval
        self.function = function
        self.args = args or ()
        self.kwargs = kwargs or {}
        self.daemon = True

    def start(self):
        if self.interval < 1:
            self.function(*self.args, **self.kwargs)

    def cancel(self):
        pass


def fresh_connection(dataset):
    return api.connect(
        triples=dataset.triples,
        interesting_properties=dataset.interesting_properties,
    )


# ---------------------------------------------------------------------------
# single-use tokens
# ---------------------------------------------------------------------------

class TestTokenReuse:
    def test_bind_returns_the_token(self):
        token = CancellationToken()
        assert token.bind() is token

    def test_second_bind_is_rejected(self):
        token = CancellationToken()
        token.bind()
        with pytest.raises(ReproError, match="single-use"):
            token.bind()

    def test_cancelled_token_cannot_be_rebound(self):
        # The failure the contract prevents: a stale cancellation from
        # query 1 silently killing query 2.
        token = CancellationToken().bind()
        token.cancel(reason="deadline exceeded")
        with pytest.raises(ReproError, match="single-use"):
            token.bind()

    def test_concurrent_binds_admit_exactly_one(self):
        token = CancellationToken()
        outcomes = []
        barrier = threading.Barrier(8)

        def claim():
            barrier.wait()
            try:
                token.bind()
                outcomes.append("bound")
            except ReproError:
                outcomes.append("rejected")

        workers = [threading.Thread(target=claim) for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert outcomes.count("bound") == 1
        assert outcomes.count("rejected") == 7

    def test_fresh_token_per_query_keeps_sessions_reusable(
        self, dataset, monkeypatch
    ):
        # The executor binds a fresh token for every timed query, so a
        # session can keep issuing them after an earlier one timed out.
        connection = fresh_connection(dataset)
        monkeypatch.setattr(threading, "Timer", _SelectiveTimer)
        with connection.session() as session:
            with pytest.raises(QueryTimeout):
                session.query("q5", timeout=0.001)
            result = session.query("q1", timeout=60)
            assert result.n_rows > 0
            result = session.query("q1", timeout=60)
            assert result.n_rows > 0


# ---------------------------------------------------------------------------
# timeout while queued vs mid-execution, across concurrent sessions
# ---------------------------------------------------------------------------

class TestConcurrentTimeouts:
    def test_timeout_fires_while_queued(self, dataset):
        connection = fresh_connection(dataset)
        scheduler = SessionScheduler(
            connection, SchedulerConfig(workers=1, queue_depth=8)
        )
        try:
            # Park the single worker by holding the execution lock so the
            # doomed request's deadline expires before it is dequeued.
            with connection._exec_lock:
                blocker = scheduler.submit("q1")
                doomed = scheduler.submit("q2", timeout=0.05)
                doomed.done.wait(timeout=0)
                threading.Event().wait(0.2)
            assert blocker.done.wait(timeout=60)
            assert doomed.done.wait(timeout=60)
            assert blocker.error is None
            assert isinstance(doomed.error, QueryTimeout)
            assert "while queued" in str(doomed.error)
        finally:
            scheduler.shutdown()

    def test_timeout_fires_mid_execution(self, dataset, monkeypatch):
        connection = fresh_connection(dataset)
        monkeypatch.setattr(threading, "Timer", _SelectiveTimer)
        with connection.session() as session:
            with pytest.raises(QueryTimeout, match="exceeded timeout"):
                session.query("q5", timeout=0.001)

    def test_one_sessions_timeout_does_not_leak_into_others(
        self, dataset, monkeypatch
    ):
        # Concurrent sessions over one connection: some time out, the
        # rest must complete untouched and the store must stay usable.
        connection = fresh_connection(dataset)
        monkeypatch.setattr(threading, "Timer", _SelectiveTimer)
        outcomes = [None] * 6

        def run(index):
            with connection.session() as session:
                try:
                    if index % 2:
                        session.query("q5", timeout=0.001)
                        outcomes[index] = "completed"
                    else:
                        result = session.query("q1", timeout=60)
                        outcomes[index] = (
                            "completed" if result.n_rows > 0 else "empty"
                        )
                except QueryTimeout:
                    outcomes[index] = "timeout"

        workers = [
            threading.Thread(target=run, args=(index,))
            for index in range(len(outcomes))
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(
            outcomes[index] == "completed"
            for index in range(len(outcomes)) if index % 2 == 0
        )
        assert all(
            outcomes[index] == "timeout"
            for index in range(len(outcomes)) if index % 2
        )
        # The shared engine survived the cancellations.
        with connection.session() as session:
            assert session.query("q1").n_rows > 0
