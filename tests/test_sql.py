"""Tests for the SQL front-end: lexer, parser, planner, serializer."""

import pytest

from repro.errors import SQLError
from repro.sql import parse_sql
from repro.sql.ast import (
    ColumnRef,
    Condition,
    CountStar,
    FromSubquery,
    FromTable,
    NumberLit,
    SelectStmt,
    StringLit,
    UnionStmt,
)
from repro.sql.lexer import tokenize


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("SELECT a.b, count(*) FROM t")]
        assert kinds == [
            "SELECT", "IDENT", "DOT", "IDENT", "COMMA", "COUNT", "LPAREN",
            "STAR", "RPAREN", "FROM", "IDENT", "EOF",
        ]

    def test_string_literal(self):
        tokens = tokenize("'<type>'")
        assert tokens[0].kind == "STRING"
        assert tokens[0].value == "<type>"

    def test_string_with_inner_double_quotes(self):
        tokens = tokenize("'\"end\"'")
        assert tokens[0].value == '"end"'

    def test_numbers_and_comparisons(self):
        kinds = [t.kind for t in tokenize("x != 10 y <> 2 z >= 3")]
        assert "NE" in kinds and "GE" in kinds
        values = [t.value for t in tokenize("count(*) > 1") if t.kind == "NUMBER"]
        assert values == [1]

    def test_comments_skipped(self):
        tokens = tokenize("-- Query 1\nSELECT x FROM t")
        assert tokens[0].kind == "SELECT"

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].kind == "SELECT"

    def test_unterminated_string(self):
        with pytest.raises(SQLError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SQLError):
            tokenize("SELECT @")

    def test_line_numbers(self):
        tokens = tokenize("SELECT x\nFROM t")
        assert tokens[2].line == 2  # FROM


class TestParser:
    def test_minimal_select(self):
        stmt = parse_sql("SELECT A.obj FROM triples AS A")
        assert isinstance(stmt, SelectStmt)
        assert stmt.items[0].expr == ColumnRef("A", "obj")
        assert stmt.from_items[0] == FromTable("triples", "A")

    def test_alias_without_as(self):
        stmt = parse_sql("SELECT P.prop FROM properties P")
        assert stmt.from_items[0] == FromTable("properties", "P")

    def test_count_star_and_group_by(self):
        stmt = parse_sql(
            "SELECT A.obj, count(*) FROM triples AS A GROUP BY A.obj"
        )
        assert isinstance(stmt.items[1].expr, CountStar)
        assert stmt.group_by == (ColumnRef("A", "obj"),)

    def test_where_conjunction(self):
        stmt = parse_sql(
            "SELECT A.subj FROM triples AS A "
            "WHERE A.prop = '<type>' AND A.obj != '<Text>'"
        )
        assert stmt.where == (
            Condition(ColumnRef("A", "prop"), "=", StringLit("<type>")),
            Condition(ColumnRef("A", "obj"), "!=", StringLit("<Text>")),
        )

    def test_having(self):
        stmt = parse_sql(
            "SELECT A.obj, count(*) FROM triples AS A "
            "GROUP BY A.obj HAVING count(*) > 1"
        )
        assert stmt.having == Condition(CountStar(), ">", NumberLit(1))

    def test_union(self):
        stmt = parse_sql(
            "(SELECT A.subj FROM t AS A) UNION (SELECT B.subj FROM t AS B)"
        )
        assert isinstance(stmt, UnionStmt)
        assert not stmt.all
        assert len(stmt.selects) == 2

    def test_union_all(self):
        stmt = parse_sql(
            "(SELECT subj FROM a) UNION ALL (SELECT subj FROM b)"
        )
        assert stmt.all

    def test_mixed_union_rejected(self):
        with pytest.raises(SQLError):
            parse_sql(
                "(SELECT s FROM a) UNION (SELECT s FROM b) "
                "UNION ALL (SELECT s FROM c)"
            )

    def test_subquery_in_from(self):
        stmt = parse_sql(
            "SELECT u.subj FROM (SELECT B.subj FROM t AS B) AS u"
        )
        assert isinstance(stmt.from_items[0], FromSubquery)
        assert stmt.from_items[0].alias == "u"

    def test_literal_select_item_with_alias(self):
        stmt = parse_sql("SELECT subj, '<p>' AS prop FROM vp_1")
        assert stmt.items[1].expr == StringLit("<p>")
        assert stmt.items[1].alias == "prop"

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT s FROM t").distinct

    def test_trailing_semicolon(self):
        parse_sql("SELECT s FROM t;")

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT FROM t",
            "SELECT s",
            "SELECT s FROM t WHERE",
            "SELECT s FROM t WHERE a = ",
            "SELECT s FROM t GROUP s",
            "SELECT s FROM (SELECT x FROM y)",  # subquery needs alias
            "SELECT count(*) FROM t HAVING count(*) ~ 1",
            "SELECT s FROM t extra garbage",
        ],
    )
    def test_malformed_sql_rejected(self, bad):
        with pytest.raises(SQLError):
            parse_sql(bad)

    def test_round_trip_through_serializer(self):
        text = (
            "SELECT B.prop, count(*) FROM triples AS A, triples AS B "
            "WHERE A.subj = B.subj AND A.prop = '<type>' GROUP BY B.prop"
        )
        stmt = parse_sql(text)
        again = parse_sql(stmt.sql())
        assert again == stmt

    def test_union_round_trip(self):
        text = (
            "(SELECT subj, '<a>' AS prop, obj FROM vp_1) "
            "UNION ALL (SELECT subj, '<b>' AS prop, obj FROM vp_2)"
        )
        stmt = parse_sql(text)
        assert parse_sql(stmt.sql()) == stmt

    def test_nested_union_subquery_round_trip(self):
        from repro.sql.appendix import APPENDIX_SQL

        for name, text in APPENDIX_SQL.items():
            stmt = parse_sql(text)
            assert parse_sql(stmt.sql()) == stmt, name
