"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def data_file(tmp_path):
    path = tmp_path / "data.nt"
    path.write_text(
        "<e1> <type> <Text> .\n"
        "<e1> <language> <fre> .\n"
        "<e2> <type> <Date> .\n"
    )
    return str(path)


class TestGenerate:
    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "tiny.nt"
        code = main(
            [
                "generate", "--triples", "2000", "--properties", "20",
                "--seed", "1", "--out", str(out),
            ]
        )
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) > 1800
        assert all(line.endswith(" .") for line in lines)
        # Progress chatter goes through the logger (stderr), not stdout.
        assert "wrote" in capsys.readouterr().err

    def test_generate_to_stdout(self, capsys):
        main(["generate", "--triples", "2000", "--properties", "20"])
        out = capsys.readouterr().out
        assert "<type>" in out

    def test_generated_file_round_trips(self, tmp_path):
        out = tmp_path / "round.nt"
        main(["generate", "--triples", "2000", "--properties", "20",
              "--out", str(out)])
        from repro.model.parser import parse_ntriples_text

        triples = parse_ntriples_text(out.read_text())
        assert len(triples) > 1800


class TestQuery:
    def test_sparql(self, data_file, capsys):
        code = main(
            [
                "query", "--data", data_file,
                "--sparql", "SELECT ?s WHERE { ?s <type> <Text> }",
            ]
        )
        assert code == 0
        assert "?s=<e1>" in capsys.readouterr().out

    def test_sql_on_triple_scheme(self, data_file, capsys):
        main(
            [
                "query", "--data", data_file, "--scheme", "triple",
                "--sql",
                "SELECT A.obj, count(*) FROM triples AS A "
                "WHERE A.prop = '<type>' GROUP BY A.obj",
            ]
        )
        out = capsys.readouterr().out
        assert "<Text>\t1" in out
        assert "<Date>\t1" in out

    def test_row_engine(self, data_file, capsys):
        main(
            [
                "query", "--data", data_file, "--engine", "row",
                "--sparql", "SELECT ?s WHERE { ?s <type> <Date> }",
            ]
        )
        assert "?s=<e2>" in capsys.readouterr().out

    def test_benchmark_query(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.data import generate_barton
        from repro.model.parser import serialize_ntriples

        dataset = generate_barton(n_triples=3_000, n_properties=30, seed=2)
        path = tmp_path / "barton.nt"
        path.write_text(serialize_ntriples(dataset.triples))
        code = cli_main(
            ["query", "--data", str(path), "--benchmark", "q1",
             "--mode", "cold"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "real" in captured.err
        assert captured.out.strip()

    def test_mutually_exclusive_query_args(self, data_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", "--data", data_file,
                    "--sparql", "SELECT * WHERE { ?s ?p ?o }",
                    "--sql", "SELECT x FROM t",
                ]
            )


class TestBench:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out and "figure7" in out

    def test_static_experiment(self, capsys):
        assert main(["bench", "--experiment", "table2"]) == 0
        assert "Coverage" in capsys.readouterr().out

    def test_dataset_experiment(self, capsys):
        code = main(
            ["bench", "--experiment", "table1", "--triples", "3000"]
        )
        assert code == 0
        assert "total triples" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["bench", "--experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestVerify:
    def test_verify_reports_agreement(self, capsys):
        code = main(
            ["verify", "--triples", "4000", "--properties", "30",
             "--seed", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all implementations agree" in out

    def test_verify_result_object(self):
        from repro.data import generate_barton
        from repro.verify import verify_dataset

        dataset = generate_barton(
            n_triples=4_000, n_properties=30, n_interesting=28, seed=5
        )
        result = verify_dataset(dataset, queries=("q1", "q5"))
        assert result.ok
        # 6 SQL configurations x 2 queries + C-Store x 2.
        assert result.checks == 14
        assert "c-store/vertical" in result.configurations
