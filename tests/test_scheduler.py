"""Tests for the process-pool experiment scheduler."""

import pytest

from repro.bench import scheduler
from repro.bench.scheduler import (
    Cell,
    JOBS_ENV,
    default_jobs,
    map_cells,
    run_cells,
    scheduler_meta,
)


def _square(dataset, x):
    return (dataset, x * x)


def _boom(dataset):
    raise ValueError("cell failure")


class TestDefaultJobs:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs() == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert default_jobs() == 3

    def test_invalid_value_falls_back(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert default_jobs() == 1

    def test_nonpositive_clamped(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "-2")
        assert default_jobs() == 1


class TestRunCells:
    def test_serial_results_in_submission_order(self):
        outcomes = run_cells(
            [Cell(fn=_square, args=(x,), label=f"x={x}") for x in range(5)],
            dataset="d", jobs=1,
        )
        assert [o.value for o in outcomes] == [
            ("d", 0), ("d", 1), ("d", 4), ("d", 9), ("d", 16)
        ]
        assert [o.label for o in outcomes] == [f"x={x}" for x in range(5)]
        assert all(o.wall_ms >= 0 for o in outcomes)

    def test_parallel_matches_serial(self):
        cells = [Cell(fn=_square, args=(x,)) for x in range(8)]
        serial = [o.value for o in run_cells(cells, dataset="d", jobs=1)]
        parallel = [o.value for o in run_cells(cells, dataset="d", jobs=2)]
        assert parallel == serial

    def test_single_cell_stays_in_process(self):
        # One cell never pays for a pool: the worker dataset global stays
        # untouched.
        run_cells([Cell(fn=_square, args=(1,))], dataset="d", jobs=8)
        assert scheduler._WORKER_DATASET is None

    def test_worker_receives_dataset(self):
        values, _ = map_cells(
            _square, [(i,) for i in range(4)], dataset="shared", jobs=2
        )
        assert all(dataset == "shared" for dataset, _ in values)

    def test_cell_exception_propagates(self):
        with pytest.raises(ValueError, match="cell failure"):
            run_cells(
                [Cell(fn=_boom), Cell(fn=_boom)], dataset=None, jobs=2
            )

    def test_jobs_env_respected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "2")
        cells = [Cell(fn=_square, args=(x,)) for x in range(4)]
        outcomes = run_cells(cells, dataset="d", jobs=None)
        assert [o.value for o in outcomes] == [
            ("d", x * x) for x in range(4)
        ]


class TestMapCells:
    def test_values_and_outcomes(self):
        values, outcomes = map_cells(
            _square, [(2,), (3,)], dataset="d", jobs=1,
            labels=["two", "three"],
        )
        assert values == [("d", 4), ("d", 9)]
        assert [o.label for o in outcomes] == ["two", "three"]

    def test_default_labels(self):
        _, outcomes = map_cells(_square, [(7,)], dataset="d", jobs=1)
        assert outcomes[0].label == "(7,)"


class TestSchedulerMeta:
    def test_meta_shape(self):
        _, outcomes = map_cells(
            _square, [(1,), (2,)], dataset="d", jobs=1, labels=["a", "b"]
        )
        meta = scheduler_meta(outcomes, jobs=4)
        assert meta["jobs"] == 4
        assert meta["wall_ms"] == pytest.approx(
            sum(o.wall_ms for o in outcomes), abs=0.01
        )
        assert [c["label"] for c in meta["cells"]] == ["a", "b"]

    def test_meta_default_jobs(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        meta = scheduler_meta([], jobs=None)
        assert meta["jobs"] == 1 and meta["wall_ms"] == 0

    def test_meta_records_repeats(self, monkeypatch):
        monkeypatch.setenv(scheduler.REPEATS_ENV, "3")
        assert scheduler_meta([], jobs=1)["repeats"] == 3


class TestRepeats:
    def test_default_repeats(self, monkeypatch):
        monkeypatch.delenv(scheduler.REPEATS_ENV, raising=False)
        assert scheduler.default_repeats() == 1
        monkeypatch.setenv(scheduler.REPEATS_ENV, "5")
        assert scheduler.default_repeats() == 5
        monkeypatch.setenv(scheduler.REPEATS_ENV, "junk")
        assert scheduler.default_repeats() == 1
        monkeypatch.setenv(scheduler.REPEATS_ENV, "0")
        assert scheduler.default_repeats() == 1

    def test_repeats_rerun_cell_and_keep_first_value(self, monkeypatch):
        monkeypatch.setenv(scheduler.REPEATS_ENV, "4")
        calls = []

        def probe(dataset):
            calls.append(dataset)
            return len(calls)  # impure on purpose, to observe the re-runs

        outcomes = run_cells([Cell(fn=probe, label="p")], dataset="d",
                             jobs=1)
        assert len(calls) == 4
        # The reported value comes from the first run.
        assert outcomes[0].value == 1
        assert outcomes[0].wall_ms >= 0

    def test_repeats_report_minimum_wall(self):
        import time

        sleeps = iter([0.02, 0.0, 0.0])

        def uneven(dataset):
            time.sleep(next(sleeps))
            return 1

        outcome = scheduler._run_cell(
            Cell(fn=uneven, label="u"), "d", repeats=3
        )
        # min-of-N: the 20ms first run must not be the reported wall.
        assert outcome.wall_ms < 20.0

    def test_stats_accumulate(self, monkeypatch):
        monkeypatch.delenv(scheduler.REPEATS_ENV, raising=False)
        scheduler.reset_scheduler_stats()
        run_cells([Cell(fn=_square, args=(2,))] * 3, dataset="d", jobs=1)
        stats = scheduler.scheduler_stats()
        assert stats["cells"] == 3
        assert stats["repeats"] == 3
        assert stats["wall_ms"] >= 0
        scheduler.reset_scheduler_stats()
        assert scheduler.scheduler_stats()["cells"] == 0


class TestExperimentParity:
    """Parallel experiment drivers must be byte-identical to serial."""

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.data import generate_barton

        return generate_barton(n_triples=5_000, n_properties=40, seed=11)

    def test_figure7_parallel_identical(self, dataset, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.bench.experiments import experiment_figure7

        base = len({t.p for t in dataset.triples})
        counts = (base, base + 4)
        serial = experiment_figure7(dataset, property_counts=counts, jobs=1)
        parallel = experiment_figure7(
            dataset, property_counts=counts, jobs=2
        )
        assert parallel.render() == serial.render()
        assert parallel.series == serial.series

    def test_figure6_parallel_identical(self, dataset, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.bench.experiments import experiment_figure6

        serial = experiment_figure6(
            dataset, property_counts=(10, 20), jobs=1
        )
        parallel = experiment_figure6(
            dataset, property_counts=(10, 20), jobs=2
        )
        serial = serial if isinstance(serial, list) else [serial]
        parallel = parallel if isinstance(parallel, list) else [parallel]
        assert [p.render() for p in parallel] == [s.render() for s in serial]
        assert [p.series for p in parallel] == [s.series for s in serial]
