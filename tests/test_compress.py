"""Property-based roundtrip tests for the columnar compression codecs.

Every codec must satisfy ``decode(encode(values)) == values`` exactly, its
advertised byte layout must stay inside ``nbytes`` (the simulated disk
charges for exactly those ranges), and the run-at-a-time helpers must
reproduce decoded slices — the identities the operate-on-compressed
kernels rely on.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageError
from repro.storage.compress import (
    CODEC_ORDER,
    DELTA_BLOCK,
    HEADER_BYTES,
    RUN_BYTES,
    VALUE_BYTES,
    CompressionConfig,
    DeltaColumn,
    DictColumn,
    RleColumn,
    choose_codec,
    column_stats,
    compress_stats,
    note_column,
    note_runs_skipped,
    note_scan,
    reset_compress_stats,
)

CODEC_CLASSES = (RleColumn, DeltaColumn, DictColumn)

# Bounded so bit-pack widths stay legal (<= MAX_PACK_WIDTH) — the picker
# enforces that bound in production; direct codec construction must get
# eligible input.
_values = st.integers(min_value=-2**50, max_value=2**50)

#: Arbitrary columns: possibly unsorted, with duplicates.
columns = st.lists(_values, max_size=400).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)

#: Sorted columns with run structure — the shape the VP scheme stores.
run_columns = st.lists(
    st.tuples(_values, st.integers(min_value=1, max_value=20)),
    max_size=40,
).map(
    lambda runs: np.repeat(
        np.asarray(sorted(v for v, _ in runs), dtype=np.int64),
        np.asarray(
            [n for _, n in sorted(runs, key=lambda r: r[0])], dtype=np.int64
        ),
    )
)


def _check_byte_ranges(encoding, lo, hi):
    """Every advertised range must be non-empty and inside the encoding."""
    ranges = encoding.byte_ranges(lo, hi)
    if hi <= lo or encoding.n_values == 0:
        assert ranges == []
        return
    for offset, length in ranges:
        assert length > 0
        assert 0 <= offset
        assert offset + length <= encoding.nbytes, (offset, length)


class TestRoundtrip:
    @pytest.mark.parametrize("cls", CODEC_CLASSES)
    @given(values=columns)
    def test_decode_identity(self, cls, values):
        encoding = cls(values)
        np.testing.assert_array_equal(encoding.decode(), values)
        assert encoding.n_values == len(values)
        assert encoding.logical_nbytes == len(values) * VALUE_BYTES

    @pytest.mark.parametrize("cls", CODEC_CLASSES)
    @given(values=run_columns)
    def test_decode_identity_sorted_runs(self, cls, values):
        np.testing.assert_array_equal(cls(values).decode(), values)

    @pytest.mark.parametrize("cls", CODEC_CLASSES)
    def test_empty_column(self, cls):
        encoding = cls(np.empty(0, dtype=np.int64))
        assert encoding.n_values == 0
        assert len(encoding.decode()) == 0
        assert encoding.byte_ranges(0, 0) == []

    @pytest.mark.parametrize("cls", CODEC_CLASSES)
    def test_single_run(self, cls):
        values = np.full(500, 7, dtype=np.int64)
        encoding = cls(values)
        np.testing.assert_array_equal(encoding.decode(), values)
        if cls is RleColumn:
            assert encoding.n_runs == 1
            assert encoding.nbytes == RUN_BYTES

    @pytest.mark.parametrize("cls", CODEC_CLASSES)
    def test_all_distinct(self, cls):
        values = np.arange(300, dtype=np.int64) * 3 + 11
        encoding = cls(values)
        np.testing.assert_array_equal(encoding.decode(), values)
        if cls is RleColumn:
            assert encoding.n_runs == 300


class TestByteLayout:
    @pytest.mark.parametrize("cls", CODEC_CLASSES)
    @given(values=columns, data=st.data())
    def test_byte_ranges_within_encoding(self, cls, values, data):
        encoding = cls(values)
        n = len(values)
        lo = data.draw(st.integers(min_value=0, max_value=max(n, 1)))
        hi = data.draw(st.integers(min_value=0, max_value=max(n, 1)))
        _check_byte_ranges(encoding, lo, hi)
        _check_byte_ranges(encoding, 0, n)

    @pytest.mark.parametrize("cls", CODEC_CLASSES)
    @given(values=columns)
    def test_probe_and_pages_within_encoding(self, cls, values):
        if len(values) == 0:
            return
        encoding = cls(values)
        page_size = 64
        upper = max(
            1, (max(encoding.nbytes, HEADER_BYTES) + page_size - 1)
            // page_size
        )
        rows = np.arange(len(values), dtype=np.int64)
        pages = encoding.pages_for_rows(rows, page_size)
        assert len(pages) == len(np.unique(pages))
        assert (pages >= 0).all() and (pages < upper).all()
        for row in (0, len(values) // 2, len(values) - 1):
            assert 0 <= encoding.probe_byte(row) <= encoding.nbytes

    @given(values=run_columns, data=st.data())
    def test_rle_runs_overlapping_is_decoded_slice(self, values, data):
        encoding = RleColumn(values)
        n = len(values)
        lo = data.draw(st.integers(min_value=0, max_value=max(n, 1)))
        hi = data.draw(st.integers(min_value=lo, max_value=max(n, 1)))
        run_values, run_counts = encoding.runs_overlapping(lo, hi)
        np.testing.assert_array_equal(
            np.repeat(run_values, run_counts), values[lo:hi]
        )

    @given(values=columns)
    def test_delta_blocks_match_layout(self, values):
        encoding = DeltaColumn(values)
        n = len(values)
        assert encoding.n_blocks == (n + DELTA_BLOCK - 1) // DELTA_BLOCK
        assert encoding.nbytes >= HEADER_BYTES + encoding.bases.nbytes


class TestPicker:
    def test_empty_column_stays_raw(self):
        assert choose_codec(np.empty(0, dtype=np.int64)) is None

    def test_sorted_low_cardinality_picks_rle(self):
        values = np.repeat(np.arange(10, dtype=np.int64), 1000)
        encoding = choose_codec(values)
        assert encoding is not None and encoding.codec == "rle"

    def test_dense_sequence_picks_delta(self):
        encoding = choose_codec(np.arange(1000, dtype=np.int64))
        assert encoding is not None and encoding.codec == "delta"

    def test_wide_random_values_stay_raw_or_beat_raw(self):
        rng = np.random.default_rng(7)
        values = rng.integers(-2**56, 2**56, size=200, dtype=np.int64)
        encoding = choose_codec(values)
        if encoding is not None:
            assert encoding.nbytes < len(values) * VALUE_BYTES

    @given(values=columns)
    def test_choice_always_beats_raw_and_roundtrips(self, values):
        encoding = choose_codec(values)
        if encoding is None:
            return
        assert encoding.nbytes < len(values) * VALUE_BYTES
        np.testing.assert_array_equal(encoding.decode(), values)

    @given(values=columns)
    def test_stats_sizes_match_real_encodings(self, values):
        """The picker's closed-form candidate sizes equal the bytes the
        constructors actually produce — the picker never lies."""
        sizes = column_stats(values)["sizes"]
        if len(values) == 0:
            return
        for name, size in sizes.items():
            cls = {"rle": RleColumn, "delta": DeltaColumn,
                   "dict": DictColumn}[name]
            assert cls(values).nbytes == size, name

    def test_codec_restriction_is_honoured(self):
        values = np.repeat(np.arange(10, dtype=np.int64), 1000)
        config = CompressionConfig(codecs=("dict",))
        encoding = choose_codec(values, config)
        assert encoding is not None and encoding.codec == "dict"


class TestConfig:
    @pytest.mark.parametrize("value", [None, False, "", "off", "none", "0"])
    def test_disabled_settings(self, value):
        assert CompressionConfig.coerce(value) is None

    @pytest.mark.parametrize("value", [True, "on", "1", "physical"])
    def test_physical_settings(self, value):
        assert CompressionConfig.coerce(value).cost_mode == "physical"

    def test_logical_setting(self):
        assert CompressionConfig.coerce("logical").cost_mode == "logical"

    def test_dict_setting(self):
        config = CompressionConfig.coerce(
            {"cost_mode": "physical", "codecs": ("rle",)}
        )
        assert config.cost_mode == "physical"
        assert config.codecs == ("rle",)

    def test_config_roundtrips_through_coerce(self):
        config = CompressionConfig(cost_mode="physical")
        assert CompressionConfig.coerce(config) is config

    @pytest.mark.parametrize("value", ["zstd", 3.5, ["rle"]])
    def test_invalid_settings_raise(self, value):
        with pytest.raises(StorageError):
            CompressionConfig.coerce(value)

    def test_invalid_cost_mode_raises(self):
        with pytest.raises(StorageError):
            CompressionConfig(cost_mode="magic")

    def test_invalid_codec_raises(self):
        with pytest.raises(StorageError):
            CompressionConfig(codecs=("rle", "lz4"))


class TestCounters:
    def test_note_column_and_scan_arithmetic(self):
        reset_compress_stats()
        try:
            values = np.repeat(np.arange(4, dtype=np.int64), 100)
            encoding = choose_codec(values)
            note_column(encoding, len(values))
            note_column(None, 10)
            note_scan(64, 512)
            note_runs_skipped(96)
            note_runs_skipped(0)   # no-op
            stats = compress_stats()
            assert stats["columns_compressed"] == 1
            assert stats["columns_raw"] == 1
            assert stats["logical_bytes"] == 400 * 8 + 10 * 8
            assert stats["compressed_bytes"] == encoding.nbytes + 10 * 8
            assert stats["bytes_scanned"] == 64
            assert stats["logical_bytes_scanned"] == 512
            assert stats["runs_skipped"] == 96
            assert stats["compressed_reads"] == 1
        finally:
            reset_compress_stats()
        assert compress_stats()["logical_bytes"] == 0
