"""Serial/parallel parity: the morsel runtime must be invisible.

The determinism contract of the morsel-driven runtime (PR 10) is that
intra-query parallelism changes wall-clock only: decoded rows AND the
simulated cost documents are byte-identical at any worker count, for
every engine x scheme cell, every benchmark query, cold and hot.  These
tests sweep that contract with the morsel size forced small enough that
the worker pool genuinely engages (the default 4096-row morsels would
let the test dataset fall back to the serial path).
"""

import pytest

import repro.api as api
from repro.data import generate_barton
from repro.exec.morsel import morsel_stats, reset_morsel_stats
from repro.exec.parity import (
    compare_parity,
    parity_sweep,
    timing_document,
)

#: Small enough that every base-table scan splits into several morsels
#: on the 4000-triple parity dataset.
SMALL_MORSELS = "256"

SCALE = dict(n_triples=5_000, n_properties=40, seed=11)


@pytest.fixture(scope="module")
def baseline():
    """The serial sweep: every engine x scheme cell, all benchmark
    queries, cold and hot protocols."""
    return parity_sweep()


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(**SCALE)


def _connect(dataset, workers):
    return api.connect(
        triples=dataset.triples,
        interesting_properties=dataset.interesting_properties,
        engine_options={"workers": workers},
    )


class TestSweepParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_byte_identical_at_any_worker_count(
        self, baseline, workers, monkeypatch
    ):
        monkeypatch.setenv("REPRO_MORSEL_ROWS", SMALL_MORSELS)
        reset_morsel_stats()
        sweep = parity_sweep(column_engine_options={"workers": workers})
        assert compare_parity(baseline, sweep) == []
        if workers > 1:
            # The guard must have lowered parallel operators AND the
            # pool must have run real batches — a parity pass with zero
            # batches would prove nothing.
            assert morsel_stats()["batches"] > 0

    def test_morsel_size_does_not_change_costs(self, baseline, monkeypatch):
        # Morsel boundaries partition the coordinator's replay inputs,
        # never its charge sequence: any morsel size reproduces the
        # serial document.
        monkeypatch.setenv("REPRO_MORSEL_ROWS", "97")
        sweep = parity_sweep(column_engine_options={"workers": 3})
        assert compare_parity(baseline, sweep) == []


class TestPerQueryWorkers:
    def test_workers_kwarg_is_cost_invisible(self, dataset, monkeypatch):
        monkeypatch.setenv("REPRO_MORSEL_ROWS", SMALL_MORSELS)
        serial = _connect(dataset, workers=1)
        parallel = _connect(dataset, workers=4)
        try:
            with serial.session() as s1, parallel.session() as s4:
                for query in ("q1", "q2", "q4", "q6"):
                    expected = s1.query(query, mode="cold")
                    for workers in (None, 1, 2, 16):
                        got = s4.query(query, mode="cold", workers=workers)
                        assert list(got) == list(expected)
                        assert timing_document(got.cost) == \
                            timing_document(expected.cost)
        finally:
            serial.close()
            parallel.close()

    def test_override_resets_after_query(self, dataset, monkeypatch):
        monkeypatch.setenv("REPRO_MORSEL_ROWS", SMALL_MORSELS)
        connection = _connect(dataset, workers=4)
        try:
            runtime = connection.store.engine.executor()
            with connection.session() as session:
                session.query("q2", workers=1)
                assert runtime.dop_override is None
                with pytest.raises(Exception):
                    session.query("definitely not a query", workers=1)
                assert runtime.dop_override is None
        finally:
            connection.close()

    def test_row_store_ignores_workers(self, dataset):
        connection = api.connect(
            triples=dataset.triples,
            interesting_properties=dataset.interesting_properties,
            engine="row",
        )
        try:
            with connection.session() as session:
                result = session.query("q1", workers=4)
                assert len(list(result)) >= 0
        finally:
            connection.close()


class TestStealingStress:
    def test_skewed_morsels_stay_deterministic(self, dataset, monkeypatch):
        # A tiny morsel size over the vertical scheme's very unevenly
        # sized property tables produces skewed batches (some branches
        # contribute hundreds of rows, some a handful), which is exactly
        # the shape that provokes work stealing.  Rows and costs must
        # not wobble across repeated runs.
        monkeypatch.setenv("REPRO_MORSEL_ROWS", "64")
        connection = _connect(dataset, workers=4)
        try:
            with connection.session() as session:
                reference = {
                    query: (
                        list(session.query(query, mode="cold")),
                        timing_document(
                            session.query(query, mode="cold").cost
                        ),
                    )
                    for query in ("q2", "q3", "q6")
                }
                for _ in range(3):
                    for query, (rows, cost) in reference.items():
                        again = session.query(query, mode="cold")
                        assert list(again) == rows
                        assert timing_document(again.cost) == cost
        finally:
            connection.close()


class TestMorselSpans:
    def test_profile_shows_per_morsel_children(self, dataset, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_MORSEL_ROWS", SMALL_MORSELS)
        connection = _connect(dataset, workers=4)
        try:
            with connection.session() as session:
                profile = session.profile("q2", mode="cold")
        finally:
            connection.close()
        document = json.loads(profile.to_json())

        morsels = []

        def walk(span):
            if span.get("operator", "").startswith("morsel["):
                morsels.append(span)
            for child in span.get("children", []):
                walk(child)

        walk(document["plan"])
        assert morsels, "parallel operators must emit per-morsel spans"
        # Attribution telescopes: each morsel span carries a share of the
        # parent's simulated charge, never an invented cost — so the
        # profile's span-sum invariant (asserted by the profiler's own
        # tests) keeps holding with the children present.
        assert all(span["calls"] == 1 for span in morsels)


class TestServerAdmission:
    def test_max_dop_clamps_requests(self, dataset, monkeypatch):
        from repro.server.scheduler import SchedulerConfig, SessionScheduler

        monkeypatch.setenv("REPRO_MORSEL_ROWS", SMALL_MORSELS)
        serial = _connect(dataset, workers=1)
        parallel = _connect(dataset, workers=4)
        scheduler = SessionScheduler(
            parallel, SchedulerConfig(workers=2, max_dop=2)
        )
        try:
            with serial.session() as session:
                expected = session.query("q2", mode="hot")
            # A request asking for 16 workers is admitted at 2 — and the
            # result is still byte-identical to serial.
            result = scheduler.execute("q2", mode="hot", workers=16)
            assert list(result) == list(expected)
            assert timing_document(result.cost) == \
                timing_document(expected.cost)
            assert scheduler.stats()["live"]["max_dop"] == 2
        finally:
            scheduler.shutdown()
            serial.close()
            parallel.close()

    def test_max_dop_validated(self):
        from repro.errors import ReproError
        from repro.server.scheduler import SchedulerConfig

        with pytest.raises(ReproError):
            SchedulerConfig(max_dop=0)
