"""Tests for the plan renderer, the error hierarchy, and misc utilities."""

import pytest

from repro import errors
from repro.plan import (
    Comparison,
    Distinct,
    Extend,
    GroupBy,
    Having,
    Join,
    Limit,
    Project,
    Scan,
    Select,
    Sort,
    Union,
)
from repro.plan.render import render_plan


def scan(alias="A"):
    return Scan("triples", ["subj", "prop", "obj"], alias=alias)


class TestRenderPlan:
    def test_renders_every_node_kind(self):
        plan = Limit(
            Sort(
                Project(
                    Having(
                        GroupBy(
                            Join(
                                Select(
                                    Extend(scan("A"), "tag", 7),
                                    [Comparison("A.prop", "=", 1)],
                                ),
                                scan("B"),
                                on=[("A.subj", "B.subj")],
                            ),
                            keys=["B.prop"],
                            count_column="count",
                        ),
                        Comparison("count", ">", 1),
                    ),
                    [("prop", "B.prop"), ("count", "count")],
                ),
                [("count", "desc")],
            ),
            10,
        )
        text = render_plan(plan)
        for expected in (
            "Limit", "Sort", "Project", "Having", "GroupBy", "Join",
            "Select", "Extend", "Scan triples AS A",
        ):
            assert expected in text, expected

    def test_indentation_reflects_depth(self):
        plan = Select(scan(), [Comparison("A.subj", "=", 1)])
        lines = render_plan(plan).splitlines()
        assert lines[0].startswith("Select")
        assert lines[1].startswith("  Scan")

    def test_union_elision(self):
        branches = [
            Project(scan(f"A{i}"), [("s", f"A{i}.subj")]) for i in range(50)
        ]
        text = render_plan(Union(branches, distinct=False))
        assert "more union branches" in text
        assert text.count("Scan") <= 10

    def test_small_union_not_elided(self):
        branches = [
            Project(scan(f"A{i}"), [("s", f"A{i}.subj")]) for i in range(2)
        ]
        text = render_plan(Union(branches))
        assert "more union branches" not in text
        assert "Union (2 branches)" in text

    def test_distinct_rendering(self):
        assert "Distinct" in render_plan(Distinct(scan()))


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for name in (
            "DictionaryError", "ParseError", "SQLError", "PlanError",
            "StorageError", "EngineError", "UnsupportedOperationError",
            "BufferPoolError", "BenchmarkError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_sql_error_is_parse_error(self):
        assert issubclass(errors.SQLError, errors.ParseError)

    def test_unsupported_is_engine_error(self):
        assert issubclass(
            errors.UnsupportedOperationError, errors.EngineError
        )

    def test_buffer_pool_error_is_engine_error(self):
        assert issubclass(errors.BufferPoolError, errors.EngineError)

    def test_parse_error_location_formatting(self):
        e = errors.ParseError("bad", line=3, column=7)
        assert "line 3" in str(e) and "column 7" in str(e)
        assert e.line == 3 and e.column == 7

    def test_parse_error_line_only(self):
        e = errors.ParseError("bad", line=3)
        assert "line 3" in str(e) and "column" not in str(e)

    def test_parse_error_no_location(self):
        assert str(errors.ParseError("just bad")) == "just bad"

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.StorageError("boom")


class TestComparisonRepr:
    def test_repr_is_informative(self):
        assert "=" in repr(Comparison("x", "=", 5))
        assert "x" in repr(Comparison("x", "=", 5))

    def test_plan_reprs(self):
        assert "Scan" in repr(scan())
        assert "Join" in repr(Join(scan("A"), scan("B"), on=[("A.subj", "B.subj")]))
        assert "GroupBy" in repr(GroupBy(scan(), keys=["A.prop"]))
        assert "Sort" in repr(Sort(scan(), [("A.subj", "asc")]))
        assert "Limit(3)" in repr(Limit(scan(), 3))
        assert "Extend" in repr(Extend(scan(), "tag", 1))
        assert "UNION ALL" in repr(Union([scan()], distinct=False))


class TestColumnComparisonRendering:
    def test_select_with_column_comparison(self):
        from repro.plan import ColumnComparison

        plan = Select(
            scan(), [ColumnComparison("A.subj", "=", "A.obj")]
        )
        text = render_plan(plan)
        assert "A.subj = A.obj" in text

    def test_mixed_predicates(self):
        from repro.plan import ColumnComparison

        plan = Select(
            scan(),
            [
                Comparison("A.prop", "=", 3),
                ColumnComparison("A.subj", "!=", "A.obj"),
            ],
        )
        text = render_plan(plan)
        assert "A.prop = 3" in text and "A.subj != A.obj" in text
