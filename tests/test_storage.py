"""Tests for the storage-scheme builders and catalogs."""

import numpy as np
import pytest

from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.errors import StorageError
from repro.model.triple import Triple
from repro.rowstore import RowStoreEngine
from repro.storage import build_triple_store, build_vertical_store
from repro.storage.catalog import CLUSTERINGS, clustering_columns


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(n_triples=5_000, n_properties=30, seed=5)


class TestClusterings:
    def test_all_six_permutations(self):
        assert len(CLUSTERINGS) == 6
        for name, cols in CLUSTERINGS.items():
            assert sorted(cols) == ["obj", "prop", "subj"]

    def test_lookup_case_insensitive(self):
        assert clustering_columns("pso") == ("prop", "subj", "obj")

    def test_unknown_clustering(self):
        with pytest.raises(StorageError):
            clustering_columns("XYZ")


class TestTripleStoreBuilder:
    def test_column_store_pso(self, dataset):
        engine = ColumnStoreEngine()
        cat = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
            clustering="PSO",
        )
        assert cat.is_triple_store()
        table = engine.table("triples")
        assert table.n_rows == len(dataset.triples)
        assert table.sort_order == ["prop", "subj", "obj"]
        prop = table.array("prop")
        assert (np.diff(prop) >= 0).all()

    def test_row_store_gets_indexes(self, dataset):
        engine = RowStoreEngine()
        cat = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
            clustering="PSO",
        )
        table = engine.table("triples")
        # PSO: clustered + 5 secondary permutations.
        assert len(table.secondary_indexes()) == 5

    def test_row_store_spo_has_two_secondaries(self, dataset):
        engine = RowStoreEngine()
        build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
            clustering="SPO",
        )
        table = engine.table("triples")
        names = sorted(i.name for i in table.secondary_indexes())
        assert names == ["idx_osp", "idx_pos"]

    def test_properties_table_holds_interesting(self, dataset):
        engine = ColumnStoreEngine()
        cat = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
        props = engine.table("properties")
        assert props.n_rows == len(dataset.interesting_properties)
        decoded = {cat.dictionary.decode(v) for v in props.array("prop")}
        assert decoded == set(dataset.interesting_properties)

    def test_dictionary_round_trip(self, dataset):
        engine = ColumnStoreEngine()
        cat = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
        t = dataset.triples[0]
        table = engine.table("triples")
        oids = (
            cat.dictionary.lookup(t.s),
            cat.dictionary.lookup(t.p),
            cat.dictionary.lookup(t.o),
        )
        rows = set(
            zip(
                table.array("subj").tolist(),
                table.array("prop").tolist(),
                table.array("obj").tolist(),
            )
        )
        assert oids in rows

    def test_encode_missing_constant(self, dataset):
        engine = ColumnStoreEngine()
        cat = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
        assert cat.encode("<never-seen>") is None


class TestVerticalStoreBuilder:
    def test_one_table_per_property(self, dataset):
        engine = ColumnStoreEngine()
        cat = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
        assert cat.is_vertical()
        assert len(cat.property_tables) == 30
        total = sum(
            engine.table(t).n_rows for t in cat.property_tables.values()
        )
        assert total == len(dataset.triples)

    def test_tables_sorted_so(self, dataset):
        engine = ColumnStoreEngine()
        cat = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
        table = engine.table(cat.property_table("<type>"))
        subj = table.array("subj")
        assert (np.diff(subj) >= 0).all()

    def test_row_store_gets_os_secondary(self, dataset):
        engine = RowStoreEngine()
        cat = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
        table = engine.table(cat.property_table("<type>"))
        assert table.clustering == ["subj", "obj"]
        (os_index,) = table.secondary_indexes()
        assert os_index.key_columns == ["obj", "subj"]

    def test_small_tail_tables_exist(self, dataset):
        """Paper: 'many with just a small number of rows (less than 10)'."""
        engine = ColumnStoreEngine()
        cat = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
        sizes = [
            engine.table(t).n_rows for t in cat.property_tables.values()
        ]
        assert min(sizes) < 10

    def test_missing_property_table_raises(self, dataset):
        engine = ColumnStoreEngine()
        cat = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
        with pytest.raises(StorageError):
            cat.property_table("<ghost>")

    def test_properties_for_scopes(self, dataset):
        engine = ColumnStoreEngine()
        cat = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
        assert len(cat.properties_for("interesting")) == 28
        assert len(cat.properties_for("all")) == 30
        assert cat.properties_for(["<type>"]) == ["<type>"]

    def test_all_properties_sorted_by_frequency(self, dataset):
        engine = ColumnStoreEngine()
        cat = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties,
        )
        sizes = [
            engine.table(cat.property_table(p)).n_rows
            for p in cat.all_properties
        ]
        assert sizes == sorted(sizes, reverse=True)


class TestSchemeFootprints:
    def test_vertical_smaller_than_triple_on_disk(self, dataset):
        """Two columns per table instead of three: the vertical scheme's raw
        data footprint is smaller."""
        col_t = ColumnStoreEngine()
        build_triple_store(
            col_t, dataset.triples, dataset.interesting_properties
        )
        col_v = ColumnStoreEngine()
        build_vertical_store(
            col_v, dataset.triples, dataset.interesting_properties
        )
        triples_bytes = col_t.table("triples").bytes_on_disk()
        vertical_bytes = sum(
            col_v.table(t).bytes_on_disk()
            for t in col_v.table_names()
            if t.startswith("vp_")
        )
        assert vertical_bytes < triples_bytes

    def test_shared_dictionary_between_schemes(self, dataset):
        from repro.dictionary import Dictionary

        d = Dictionary()
        col = ColumnStoreEngine()
        cat1 = build_triple_store(
            col, dataset.triples, dataset.interesting_properties,
            dictionary=d, table_name="triples",
        )
        col2 = ColumnStoreEngine()
        cat2 = build_vertical_store(
            col2, dataset.triples, dataset.interesting_properties,
            dictionary=d,
        )
        assert cat1.dictionary.lookup("<type>") == cat2.dictionary.lookup("<type>")


class TestOrderPreservingEncoding:
    def test_builders_produce_order_preserving_dictionaries(self, dataset):
        from repro.storage.encoding import is_order_preserving

        for build in (build_triple_store, build_vertical_store):
            engine = ColumnStoreEngine()
            catalog = build(
                engine, dataset.triples, dataset.interesting_properties
            )
            assert is_order_preserving(catalog.dictionary)

    def test_oid_comparisons_realize_string_comparisons(self, dataset):
        engine = ColumnStoreEngine()
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        d = catalog.dictionary
        strings = sorted({t.p for t in dataset.triples})[:10]
        oids = [d.lookup(s) for s in strings]
        assert oids == sorted(oids)

    def test_maintenance_appends_break_order_preservation(self, dataset):
        """New strings get appended oids — order preservation is a
        load-time property, lost until reorganization (documented)."""
        from repro.model.triple import Triple
        from repro.storage.encoding import is_order_preserving
        from repro.storage.maintenance import insert_triples

        engine = ColumnStoreEngine()
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        catalog, _ = insert_triples(
            engine, catalog, [Triple("<aaa-first>", "<prop/0>", "<zzz>")]
        )
        assert not is_order_preserving(catalog.dictionary)

    def test_maintenance_appends_flag_reorganization(self, dataset):
        """Order breakage is *detected*, not silent: the dictionary and
        the maintenance report both carry ``needs_reorganization``."""
        from repro.model.triple import Triple
        from repro.storage.maintenance import insert_triples

        engine = ColumnStoreEngine()
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        assert not catalog.dictionary.needs_reorganization
        catalog, report = insert_triples(
            engine, catalog, [Triple("<aaa-first>", "<prop/0>", "<zzz>")]
        )
        assert report.needs_reorganization
        assert catalog.dictionary.needs_reorganization
        # The flag is sticky across further (even order-safe) inserts.
        catalog, report = insert_triples(
            engine, catalog, [Triple("<aaa-first>", "<prop/0>", "<zzz>")]
        )
        assert report.needs_reorganization
        assert catalog.dictionary.needs_reorganization

    def test_order_safe_appends_do_not_flag_reorganization(self, dataset):
        """Re-inserting known strings allocates no oids and keeps the
        dictionary order-preserving — no reorganization flag."""
        from repro.storage.maintenance import insert_triples

        engine = ColumnStoreEngine()
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties
        )
        catalog, report = insert_triples(
            engine, catalog, [dataset.triples[0]]
        )
        assert not report.needs_reorganization
        assert not catalog.dictionary.needs_reorganization

    def test_extending_nonempty_dictionary_warns(self, dataset):
        """order_preserving_dictionary() on a pre-populated dictionary
        breaks the order guarantee silently no more: it warns and flags
        the dictionary for reorganization."""
        import warnings

        from repro.model.triple import Triple
        from repro.storage.encoding import (
            OrderPreservationWarning,
            order_preserving_dictionary,
        )

        d = order_preserving_dictionary(
            [Triple("<m>", "<n>", "<o>")]
        )
        assert not d.needs_reorganization
        with pytest.warns(OrderPreservationWarning):
            order_preserving_dictionary(
                [Triple("<a>", "<b>", "<c>")], dictionary=d
            )
        assert d.needs_reorganization

    def test_extending_with_larger_strings_does_not_warn(self):
        """Appending strings that sort after everything present keeps the
        order guarantee — no warning, no flag."""
        import warnings

        from repro.model.triple import Triple
        from repro.storage.encoding import order_preserving_dictionary

        d = order_preserving_dictionary([Triple("<a>", "<b>", "<c>")])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            order_preserving_dictionary(
                [Triple("<x>", "<y>", "<z>")], dictionary=d
            )
        assert not d.needs_reorganization


def test_property_order_preserving_dictionary():
    """Hypothesis: any vocabulary gets order-isomorphic oids."""
    from hypothesis import given, strategies as st
    from repro.model.triple import Triple
    from repro.storage.encoding import (
        is_order_preserving,
        order_preserving_dictionary,
    )

    @given(
        st.lists(
            st.tuples(st.text(max_size=8), st.text(max_size=8),
                      st.text(max_size=8)),
            max_size=30,
        )
    )
    def check(raw):
        triples = [Triple(*t) for t in raw]
        d = order_preserving_dictionary(triples)
        assert is_order_preserving(d)
        strings = sorted({x for t in triples for x in t})
        assert [d.lookup(s) for s in strings] == list(range(len(strings)))

    check()
