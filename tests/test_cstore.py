"""Tests for the C-Store replica: correctness vs the reference evaluator,
hardwired limitations, and its latency-bound I/O behaviour."""

import pytest

from repro.cstore import CStoreEngine, CSTORE_QUERIES
from repro.cstore.kvstore import KVCatalog, OrderedKV
from repro.data import generate_barton
from repro.engine import MACHINE_A, MACHINE_B, BufferPool, QueryClock, SimulatedDisk
from repro.errors import StorageError, UnsupportedOperationError
from repro.queries import reference_answer


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(n_triples=6_000, n_properties=40, seed=11)


@pytest.fixture(scope="module")
def engine(dataset):
    return CStoreEngine().load_vertical(
        dataset.triples, dataset.interesting_properties
    )


class TestOrderedKV:
    def make_kv(self, pairs):
        disk = SimulatedDisk()
        clock = QueryClock(MACHINE_A)
        pool = BufferPool(disk, clock, 64 * 1024 * 1024)
        return OrderedKV("t", pairs, disk, pool, clock, 1e-7), clock

    def test_get_and_prefix(self):
        kv, _ = self.make_kv([((1, 10), 0), ((1, 11), 0), ((2, 10), 0)])
        assert kv.get((1, 10)) == [0]
        assert kv.get((9, 9)) == []
        assert [k for k, _ in kv.prefix((1,))] == [(1, 10), (1, 11)]

    def test_cursor_sorted(self):
        kv, _ = self.make_kv([((2, 1), 0), ((1, 5), 0), ((1, 2), 0)])
        keys = [k for k, _ in kv.cursor()]
        assert keys == sorted(keys)

    def test_access_charges_io(self):
        kv, clock = self.make_kv([((i, i), 0) for i in range(5000)])
        clock.reset()
        list(kv.cursor())
        assert clock.bytes_read() > 0

    def test_catalog(self):
        catalog = KVCatalog()
        kv, _ = self.make_kv([((1, 1), 0)])
        catalog.add("a", kv)
        assert "a" in catalog
        assert catalog.get("a") is kv
        with pytest.raises(StorageError):
            catalog.add("a", kv)
        with pytest.raises(StorageError):
            catalog.get("missing")


class TestHardwiredQueries:
    @pytest.mark.parametrize("query_name", CSTORE_QUERIES)
    def test_matches_reference(self, dataset, engine, query_name):
        relation, timing = engine.run(query_name)
        got = sorted(
            relation.decoded_tuples(engine.dictionary)
        )
        expected = reference_answer(
            dataset.graph(), query_name, dataset.interesting_properties
        )
        assert got == expected
        assert timing.real_seconds > 0

    def test_q8_unsupported(self, engine):
        """The paper could not extend the artifact with q8; neither can we."""
        with pytest.raises(UnsupportedOperationError):
            engine.run("q8")

    def test_star_variants_unsupported(self, engine):
        with pytest.raises(UnsupportedOperationError):
            engine.run("q2*")

    def test_no_ddl(self, engine):
        with pytest.raises(UnsupportedOperationError):
            engine.create_table("triples", {})

    def test_must_load_before_running(self):
        with pytest.raises(StorageError):
            CStoreEngine().run("q1")

    def test_cannot_load_twice(self, dataset, engine):
        with pytest.raises(StorageError):
            engine.load_vertical(
                dataset.triples, dataset.interesting_properties
            )

    def test_only_28_properties_loaded(self, dataset, engine):
        assert len(engine.catalog.names()) == 28


class TestCStoreIOBehaviour:
    def test_latency_bound_io(self, dataset):
        """Cold-run speed barely improves on a machine with ~4x the disk
        bandwidth (Table 4's machines A vs B finding)."""
        times = {}
        for machine in (MACHINE_A, MACHINE_B):
            engine = CStoreEngine(machine=machine).load_vertical(
                dataset.triples, dataset.interesting_properties
            )
            engine.make_cold()
            _, timing = engine.run("q3")
            times[machine.name] = timing
        bandwidth_ratio = (
            MACHINE_B.read_bandwidth / MACHINE_A.read_bandwidth
        )
        io_speedup = (
            times["A"].real_seconds / times["B"].real_seconds
        )
        assert io_speedup < bandwidth_ratio / 2

    def test_user_times_similar_across_machines(self, dataset):
        times = {}
        for machine in (MACHINE_A, MACHINE_B):
            engine = CStoreEngine(machine=machine).load_vertical(
                dataset.triples, dataset.interesting_properties
            )
            engine.make_cold()
            _, timing = engine.run("q5")
            times[machine.name] = timing
        # Slightly *higher* user time on B (paper, Section 3).
        assert times["B"].user_seconds > times["A"].user_seconds
        assert times["B"].user_seconds < times["A"].user_seconds * 1.2

    def test_hot_runs_faster(self, engine):
        engine.make_cold()
        _, cold = engine.run("q3")
        _, hot = engine.run("q3")
        assert hot.real_seconds < cold.real_seconds
        assert hot.bytes_read == 0

    def test_io_history_is_figure5_shaped(self, engine):
        engine.make_cold()
        engine.run("q3")
        history = engine.io_history()
        assert len(history) > 2
        times = [t for t, _ in history]
        sizes = [b for _, b in history]
        assert times == sorted(times)
        assert sizes[-1] > 0

    def test_queries_read_different_amounts(self, dataset, engine):
        """Table 5: per-query data volumes differ; q1 reads the least of
        the group-scan queries."""
        reads = {}
        for q in ("q1", "q2", "q5"):
            engine.make_cold()
            _, timing = engine.run(q)
            reads[q] = timing.bytes_read
        assert reads["q1"] < reads["q2"]
        assert reads["q1"] < reads["q5"]
