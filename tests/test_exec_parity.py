"""Differential exec-parity suite (the unified layer's contract).

The goldens in ``tests/data/exec_parity_goldens.json`` were captured from
the legacy per-engine executors immediately before the unified execution
layer replaced them.  This suite re-runs the full engine x scheme x query
sweep (cold and hot) through the current tree and requires byte-identical
result digests and bit-identical simulated timing fields.  A single extra
or reordered clock charge anywhere in an operator fails here.
"""

import json
from pathlib import Path

import pytest

from repro.exec.parity import (
    PARITY_SCHEMA_VERSION,
    compare_parity,
    parity_cells,
    parity_sweep,
    result_digest,
)

GOLDENS = Path(__file__).parent / "data" / "exec_parity_goldens.json"


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDENS) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def sweep(goldens):
    meta = goldens["meta"]
    return parity_sweep(
        n_triples=meta["n_triples"],
        n_properties=meta["n_properties"],
        seed=meta["seed"],
        modes=tuple(meta["modes"]),
    )


def test_goldens_schema(goldens):
    assert goldens["schema_version"] == PARITY_SCHEMA_VERSION
    assert set(goldens["cells"]) == {
        label for label, _, _ in parity_cells()
    }


def test_goldens_cover_all_queries_and_modes(goldens):
    from repro.queries import ALL_QUERY_NAMES

    for label, queries in goldens["cells"].items():
        assert set(queries) == set(ALL_QUERY_NAMES), label
        for query, modes in queries.items():
            assert set(modes) == {"cold", "hot"}, (label, query)


def test_exec_parity_full_sweep(goldens, sweep):
    mismatches = compare_parity(goldens, sweep)
    assert not mismatches, "\n".join(mismatches)


def test_parity_timings_are_exact_floats(goldens, sweep):
    """Spot-check that the comparison really is bit-exact: the in-memory
    floats match the JSON round-tripped goldens with == (repr round-trip
    preserves every bit), not just approximately."""
    for label, queries in goldens["cells"].items():
        for query, modes in queries.items():
            for mode, entry in modes.items():
                actual = sweep["cells"][label][query][mode]["timing"]
                for field, value in entry["timing"].items():
                    assert actual[field] == value, (
                        label, query, mode, field
                    )


def test_result_digest_is_order_insensitive():
    from repro.relation import Relation

    class _Identity:
        def decode(self, oid):
            return oid

    import numpy as np

    a = Relation(
        {"x": np.array([3, 1, 2], dtype=np.int64)}, oid_columns=set()
    )
    b = Relation(
        {"x": np.array([2, 3, 1], dtype=np.int64)}, oid_columns=set()
    )
    d = _Identity()
    assert result_digest(a, d, ("x",)) == result_digest(b, d, ("x",))
    assert result_digest(a, d, ("x",)).startswith("3:")
