"""Tests for the morsel dispatcher (:mod:`repro.exec.morsel`).

Covers the work-stealing pool's mechanical contract: results merged by
task index regardless of which lane ran what, stealing under skewed task
sizes, first-error abort, cancellation fan-out, and the process-wide
shared pool's grow-never-shrink policy.  The *semantic* contract — that
parallel execution is byte-invisible to results and simulated costs —
lives in ``tests/test_morsel_parity.py``.
"""

import threading
import time

import pytest

from repro.errors import QueryCancelled
from repro.exec.cancel import CancellationToken
from repro.exec.morsel import (
    MAX_WORKERS,
    ParallelContext,
    WorkerPool,
    effective_dop,
    morsel_rows_from_env,
    morsel_stats,
    reset_morsel_stats,
    shared_pool,
    split_morsels,
    workers_from_env,
)


@pytest.fixture
def pool():
    p = WorkerPool(3)
    yield p
    p.shutdown()


class TestSplitMorsels:
    def test_partitions_range_exactly(self):
        morsels = split_morsels(3, 1000, 256)
        assert morsels[0][0] == 3
        assert morsels[-1][1] == 1000
        for (_, a_hi), (b_lo, _) in zip(morsels, morsels[1:]):
            assert a_hi == b_lo
        assert all(0 < hi - lo <= 256 for lo, hi in morsels)

    def test_empty_range(self):
        assert split_morsels(5, 5, 128) == []

    def test_single_morsel_when_range_fits(self):
        assert split_morsels(10, 100, 4096) == [(10, 100)]


class TestEnvKnobs:
    def test_workers_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert workers_from_env(1) == 1
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert workers_from_env(1) == 6
        monkeypatch.setenv("REPRO_WORKERS", "999")
        assert workers_from_env(1) == MAX_WORKERS
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert workers_from_env(3) == 3

    def test_morsel_rows_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MORSEL_ROWS", raising=False)
        assert morsel_rows_from_env(4096) == 4096
        monkeypatch.setenv("REPRO_MORSEL_ROWS", "128")
        assert morsel_rows_from_env() == 128
        monkeypatch.setenv("REPRO_MORSEL_ROWS", "0")
        assert morsel_rows_from_env() == 1

    def test_effective_dop_clamps_down_never_up(self):
        context = ParallelContext(4, pool=None)

        class FakeRuntime:
            dop_override = None

        runtime = FakeRuntime()
        assert effective_dop(runtime, context) == 4
        runtime.dop_override = 2
        assert effective_dop(runtime, context) == 2
        runtime.dop_override = 8  # a request can never raise the dop
        assert effective_dop(runtime, context) == 4


class TestRunBatch:
    def test_results_ordered_by_task_index(self, pool):
        tasks = [lambda i=i: i * i for i in range(37)]
        results, _steals = pool.run_batch(tasks, 4)
        assert results == [i * i for i in range(37)]

    def test_skewed_tasks_are_stolen(self, pool):
        # Tasks are dealt round-robin, so lane 0 (the caller) owns tasks
        # 0, 4, 8, 12.  A slow first task strands the rest of its deque;
        # the idle helpers must steal them from the tail.
        def make(index):
            def task():
                if index == 0:
                    time.sleep(0.2)
                return index
            return task

        results, steals = pool.run_batch([make(i) for i in range(16)], 4)
        assert results == list(range(16))
        assert steals >= 1

    def test_merged_results_deterministic_under_skew(self, pool):
        # Scheduling varies run to run; the index-keyed result list must
        # not.
        def make(index):
            def task():
                time.sleep(0.001 * (index % 5))
                return index
            return task

        expected = list(range(24))
        for _ in range(5):
            results, _steals = pool.run_batch(
                [make(i) for i in range(24)], 4
            )
            assert results == expected

    def test_first_error_aborts_and_pool_survives(self, pool):
        def boom():
            raise ValueError("boom")

        tasks = [lambda: 1, boom] + [lambda: 2] * 10
        with pytest.raises(ValueError, match="boom"):
            pool.run_batch(tasks, 4)
        # A failed batch must not poison the helpers.
        results, _steals = pool.run_batch(
            [lambda i=i: i for i in range(8)], 4
        )
        assert results == list(range(8))

    def test_cancellation_fans_out_to_all_lanes(self, pool):
        token = CancellationToken()

        def cancel_mid_batch():
            token.cancel("test abort")
            return 0

        def slowish():
            time.sleep(0.005)
            return 1

        tasks = [cancel_mid_batch] + [slowish] * 30
        with pytest.raises(QueryCancelled, match="test abort"):
            pool.run_batch(tasks, 4, cancel_token=token)

    def test_single_lane_runs_inline(self, pool):
        reset_morsel_stats()
        results, steals = pool.run_batch([lambda: 7, lambda: 8], 1)
        assert (results, steals) == ([7, 8], 0)
        stats = morsel_stats()
        assert stats["inline_batches"] == 1
        assert stats["batches"] == 0
        assert stats["morsels"] == 2

    def test_single_task_runs_inline(self, pool):
        reset_morsel_stats()
        results, _steals = pool.run_batch([lambda: 42], 4)
        assert results == [42]
        assert morsel_stats()["inline_batches"] == 1

    def test_inline_honours_cancellation(self, pool):
        token = CancellationToken()
        token.cancel("pre-cancelled")
        with pytest.raises(QueryCancelled):
            pool.run_batch([lambda: 1], 1, cancel_token=token)

    def test_counters_accumulate(self, pool):
        reset_morsel_stats()
        pool.run_batch([lambda i=i: i for i in range(10)], 4)
        pool.run_batch([lambda i=i: i for i in range(6)], 2)
        stats = morsel_stats()
        assert stats["batches"] == 2
        assert stats["morsels"] == 16

    def test_dop_capped_by_helpers_and_tasks(self, pool):
        # 3 helpers + the caller = at most 4 lanes, and never more lanes
        # than tasks; both are silently clamped, not errors.
        results, _ = pool.run_batch([lambda i=i: i for i in range(3)], 16)
        assert results == [0, 1, 2]

    def test_concurrent_submitters_serialize(self, pool):
        # The single batch slot serializes submitters; both batches must
        # still complete with index-ordered results.
        out = {}

        def submit(key):
            tasks = [lambda i=i: (key, i) for i in range(12)]
            results, _ = pool.run_batch(tasks, 4)
            out[key] = results

        threads = [
            threading.Thread(target=submit, args=(k,)) for k in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert out["a"] == [("a", i) for i in range(12)]
        assert out["b"] == [("b", i) for i in range(12)]


class TestSharedPool:
    def test_grows_and_never_shrinks(self):
        grown = shared_pool(2)
        assert grown.helpers >= 2
        bigger = shared_pool(grown.helpers + 1)
        assert bigger.helpers >= grown.helpers + 1
        # Asking for less returns the existing (larger) pool.
        assert shared_pool(1) is bigger
