"""Tests for the stable public facade (:mod:`repro.api`).

Covers connect/session semantics, query classification, timeouts through
the cooperative cancellation token, the prepared-plan cache, and the
contract that the legacy ``RDFStore.sql/sparql/solve`` shims stay result-
and cost-identical to the new surface.
"""

import json
import threading

import pytest

import repro
import repro.api as api
from repro.core import RDFStore, Var
from repro.data import generate_barton
from repro.errors import (
    QueryCancelled,
    QueryTimeout,
    ReproError,
    SessionClosed,
)

SCALE = dict(n_triples=4_000, n_properties=40, seed=11)

SPARQL = "SELECT ?s WHERE { ?s <type> <Text> }"


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(**SCALE)


@pytest.fixture(scope="module")
def connection(dataset):
    return api.connect(
        triples=dataset.triples,
        interesting_properties=dataset.interesting_properties,
    )


def fresh_connection(dataset, **options):
    return api.connect(
        triples=dataset.triples,
        interesting_properties=dataset.interesting_properties,
        **options,
    )


# ---------------------------------------------------------------------------
# connect
# ---------------------------------------------------------------------------

class TestConnect:
    def test_connect_wraps_existing_store(self, dataset):
        store = RDFStore(dataset.triples)
        conn = api.connect(store=store)
        assert conn.store is store
        assert conn.engine_kind == "column"
        assert conn.scheme == "vertical"

    def test_positional_store_dispatch(self, dataset):
        store = RDFStore(dataset.triples)
        assert api.connect(store).store is store

    def test_exactly_one_source_required(self, dataset):
        with pytest.raises(ReproError, match="exactly one"):
            api.connect()
        with pytest.raises(ReproError, match="exactly one"):
            api.connect(
                triples=dataset.triples,
                ntriples="<a> <b> <c> .",
            )

    def test_connect_from_ntriples_text(self):
        conn = api.connect(ntriples="<a> <p> <b> .\n<b> <p> <c> .\n")
        assert conn.store.n_triples == 2

    def test_closed_connection_rejects_queries(self, dataset):
        conn = fresh_connection(dataset)
        session = conn.session()
        conn.close()
        with pytest.raises(SessionClosed):
            session.query("q1")
        with pytest.raises(SessionClosed):
            conn.session()

    def test_top_level_reexports(self):
        assert repro.connect is api.connect
        assert repro.Connection is api.Connection
        assert repro.Session is api.Session
        assert repro.Result is api.Result
        for name in ("connect", "serve", "QueryTimeout", "Result"):
            assert name in repro.__all__


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------

class TestClassifyQuery:
    def test_benchmark_names(self):
        assert api.classify_query("q1") == "benchmark"
        assert api.classify_query("q2*") == "benchmark"

    def test_sparql_and_sql(self):
        assert api.classify_query(SPARQL) == "sparql"
        assert api.classify_query("SELECT * FROM triples") == "sql"

    def test_non_string_rejected(self):
        with pytest.raises(ReproError, match="must be a string"):
            api.classify_query([("?s", "<p>", "?o")])


# ---------------------------------------------------------------------------
# sessions and results
# ---------------------------------------------------------------------------

class TestSession:
    def test_benchmark_query_result(self, connection):
        result = connection.session().query("q1")
        assert result.kind == "benchmark"
        assert result.n_rows == len(result.rows) > 0
        assert result.columns
        assert result.cost.real_seconds > 0
        assert result.profile is None

    def test_sparql_result_bindings(self, connection):
        result = connection.session().query(SPARQL)
        assert result.kind == "sparql"
        bindings = result.bindings()
        assert len(bindings) == result.n_rows
        assert all(set(b) == {"s"} for b in bindings)

    def test_result_is_iterable_and_sized(self, connection):
        result = connection.session().query("q1")
        assert len(list(result)) == len(result)

    def test_result_to_dict_is_json_ready(self, connection):
        document = connection.session().query("q1").to_dict()
        json.dumps(document)  # must not raise
        assert set(document) == {
            "query", "kind", "columns", "rows", "n_rows", "cost",
        }
        assert set(document["cost"]) == {
            "real_seconds", "user_seconds", "seek_seconds",
            "transfer_seconds", "bytes_read", "io_requests",
        }

    def test_solve_matches_query(self, connection):
        bindings = connection.session().solve(
            [(Var("s"), "<type>", "<Text>")]
        )
        assert sorted(b["s"] for b in bindings) == sorted(
            b["s"] for b in connection.session().query(SPARQL).bindings()
        )

    def test_closed_session_rejects_queries(self, connection):
        session = connection.session()
        session.close()
        assert session.closed
        with pytest.raises(SessionClosed):
            session.query("q1")

    def test_session_context_manager(self, connection):
        with connection.session() as session:
            session.query("q1")
        assert session.closed

    def test_unknown_mode_rejected(self, connection):
        with pytest.raises(ReproError, match="unknown mode"):
            connection.session().query("q1", mode="lukewarm")

    def test_profile_mode(self, connection):
        result = connection.session().query("q2", profile=True)
        assert result.profile is not None
        assert result.profile.timing.real_seconds == \
            result.cost.real_seconds

    def test_explain_renders_plans(self, connection):
        text = connection.session().explain("q1", physical=True)
        assert "physical plan:" in text

    def test_lint_strict_on_clean_query(self, connection):
        result = connection.session().query("q1", lint="strict")
        assert result.n_rows > 0


class TestPlanCache:
    def test_repeated_queries_share_the_plan_object(self, dataset):
        conn = fresh_connection(dataset)
        _, plan_a, _ = conn._plan_for("q1")
        _, plan_b, _ = conn._plan_for("q1")
        assert plan_a is plan_b

    def test_cache_key_separates_variants(self, dataset):
        conn = fresh_connection(dataset, scheme="triple")
        sql = "SELECT A.subj FROM triples AS A WHERE A.prop = '<type>'"
        _, plain, _ = conn._plan_for(sql)
        _, optimized, _ = conn._plan_for(sql, optimize=True)
        assert plain is not optimized

    def test_hit_and_miss_counters(self, dataset):
        conn = fresh_connection(dataset)
        stats = conn.plan_cache_stats()
        assert stats == {
            "size": 0, "capacity": api.PLAN_CACHE_SIZE,
            "hits": 0, "misses": 0, "evictions": 0,
        }
        conn._plan_for("q1")
        conn._plan_for("q1")
        conn._plan_for("q2")
        stats = conn.plan_cache_stats()
        assert stats["size"] == 2
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["evictions"] == 0

    def test_lru_evicts_least_recently_used(self):
        """The raw cache structure: touching an old entry saves it from
        eviction (the FIFO this replaced would have dropped it)."""
        from repro.api import _LruCache

        cache = _LruCache(3)
        for key in ("a", "b", "c"):
            assert cache.get(key) is None
            cache.put(key, key.upper())
        assert cache.get("a") == "A"   # refresh "a"
        cache.put("d", "D")            # evicts "b", the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("d") == "D"
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 3

    def test_put_is_insert_if_absent(self):
        from repro.api import _LruCache

        cache = _LruCache(2)
        first = object()
        assert cache.put("k", first) is first
        assert cache.put("k", object()) is first  # first build wins
        assert cache.get("k") is first

    def test_eviction_under_query_load(self, dataset, monkeypatch):
        """End to end through Connection: a stream of distinct queries
        rolls the cache over while a hot entry survives."""
        monkeypatch.setattr(api, "PLAN_CACHE_SIZE", 4)
        conn = fresh_connection(dataset)
        conn._plans = api._LruCache(4)
        conn._plan_for("q1")
        for name in ("q2", "q3", "q4"):
            conn._plan_for(name)
            conn._plan_for("q1")   # keep q1 hot
        conn._plan_for("q5")       # overflows: evicts q2, not q1
        stats = conn.plan_cache_stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 4
        hits_before = stats["hits"]
        conn._plan_for("q1")
        assert conn.plan_cache_stats()["hits"] == hits_before + 1


# ---------------------------------------------------------------------------
# timeouts / cancellation
# ---------------------------------------------------------------------------

class _InstantTimer:
    """threading.Timer stand-in that fires synchronously on start() —
    makes deadline expiry deterministic instead of racing the query."""

    def __init__(self, interval, function, args=None, kwargs=None):
        self.function = function
        self.args = args or ()
        self.kwargs = kwargs or {}
        self.daemon = True

    def start(self):
        self.function(*self.args, **self.kwargs)

    def cancel(self):
        pass


class TestTimeouts:
    def test_expired_deadline_raises_query_timeout(self, dataset,
                                                   monkeypatch):
        conn = fresh_connection(dataset)
        monkeypatch.setattr(threading, "Timer", _InstantTimer)
        with pytest.raises(QueryTimeout, match="exceeded timeout"):
            conn.session().query("q5", timeout=0.001)

    def test_engine_stays_usable_after_timeout(self, dataset, monkeypatch):
        conn = fresh_connection(dataset)
        monkeypatch.setattr(threading, "Timer", _InstantTimer)
        with pytest.raises(QueryTimeout):
            conn.session().query("q5", timeout=0.001)
        monkeypatch.undo()
        result = conn.session().query("q5")
        assert result.n_rows > 0

    def test_nonpositive_timeout_never_starts(self, connection):
        with pytest.raises(QueryTimeout, match="never started"):
            connection.session().query("q1", timeout=0)

    def test_generous_timeout_completes(self, connection):
        assert connection.session().query("q1", timeout=60).n_rows > 0

    def test_session_default_timeout_applies(self, dataset, monkeypatch):
        conn = fresh_connection(dataset)
        monkeypatch.setattr(threading, "Timer", _InstantTimer)
        session = conn.session(default_timeout=0.001)
        with pytest.raises(QueryTimeout):
            session.query("q5")

    def test_cancelled_token_unwinds_the_runtime(self, dataset):
        from repro.exec.cancel import CancellationToken

        conn = fresh_connection(dataset)
        engine = conn.store.engine
        runtime = engine.executor()
        _, plan, _ = conn._plan_for("q1")
        token = CancellationToken()
        token.cancel(reason="test")
        runtime.cancel_token = token
        try:
            with pytest.raises(QueryCancelled):
                engine.run(plan)
        finally:
            runtime.cancel_token = None
        # the engine recovers fully once the token is cleared
        relation, _timing = engine.run(plan)
        assert relation.n_rows > 0

    def test_timeout_is_a_cancellation(self):
        assert issubclass(QueryTimeout, QueryCancelled)


# ---------------------------------------------------------------------------
# shim parity: the deprecated RDFStore surface delegates to repro.api
# ---------------------------------------------------------------------------

class TestShimParity:
    def test_sql_shim_warns_and_matches(self, dataset):
        store = RDFStore(
            dataset.triples, scheme="triple",
            interesting_properties=dataset.interesting_properties,
        )
        sql = "SELECT A.subj, A.obj FROM triples AS A WHERE A.prop = '<type>'"
        with pytest.warns(DeprecationWarning, match="RDFStore.sql"):
            shim_rows = store.sql(sql)
        api_rows = store.connection().session().query(sql).rows
        assert shim_rows == api_rows

    def test_sparql_shim_warns_and_matches(self, dataset):
        store = RDFStore(
            dataset.triples,
            interesting_properties=dataset.interesting_properties,
        )
        with pytest.warns(DeprecationWarning, match="RDFStore.sparql"):
            shim = store.sparql(SPARQL)
        assert shim == store.connection().session().query(SPARQL).bindings()

    def test_solve_shim_matches(self, dataset):
        store = RDFStore(
            dataset.triples,
            interesting_properties=dataset.interesting_properties,
        )
        patterns = [(Var("s"), "<type>", Var("c"))]
        assert store.solve(patterns) == \
            store.connection().session().solve(patterns)

    def test_benchmark_costs_match_on_exec_parity_cells(self, dataset):
        """Session.query(mode=...) reproduces RDFStore.benchmark_query's
        simulated timings bit-for-bit on the goldens' engine x scheme
        cells (fresh stores on both sides, same protocol)."""
        build = dict(
            triples=dataset.triples,
            interesting_properties=dataset.interesting_properties,
        )
        for engine, scheme in (
            ("column", "vertical"), ("column", "triple"),
            ("row", "vertical"), ("row", "triple"),
        ):
            legacy = RDFStore(engine=engine, scheme=scheme, **build)
            conn = api.connect(engine=engine, scheme=scheme, **build)
            for name in ("q1", "q2", "q5"):
                for mode in ("cold", "hot"):
                    _rows, timing = legacy.benchmark_query(name, mode=mode)
                    result = conn.session().query(name, mode=mode)
                    assert result.cost.real_seconds == \
                        timing.real_seconds, (engine, scheme, name, mode)
                    assert result.cost_dict() == {
                        "real_seconds": timing.real_seconds,
                        "user_seconds": timing.user_seconds,
                        "seek_seconds": timing.seek_seconds,
                        "transfer_seconds": timing.transfer_seconds,
                        "bytes_read": timing.bytes_read,
                        "io_requests": timing.io_requests,
                    }, (engine, scheme, name, mode)
