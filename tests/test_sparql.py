"""Tests for the SPARQL front-end."""

import pytest

from repro import RDFStore, Var
from repro.errors import ParseError, PlanError
from repro.model.triple import Variable
from repro.sparql import parse_sparql
from repro.sparql.parser import Filter

DATA = """
<e1> <type> <Text> .
<e1> <language> <fre> .
<e2> <type> <Text> .
<e2> <language> <eng> .
<e3> <type> <Date> .
<e4> <records> <e1> .
"""


@pytest.fixture(
    scope="module", params=["vertical", "triple"], ids=lambda s: s
)
def store(request):
    return RDFStore.from_ntriples(DATA, scheme=request.param)


class TestParser:
    def test_basic_select(self):
        q = parse_sparql("SELECT ?s WHERE { ?s <type> <Text> . }")
        assert q.variables == ["s"]
        assert q.patterns == [(Variable("s"), "<type>", "<Text>")]
        assert not q.distinct and q.limit is None

    def test_select_star(self):
        q = parse_sparql("SELECT * WHERE { ?s ?p ?o }")
        assert q.variables is None

    def test_multiple_patterns(self):
        q = parse_sparql(
            "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <language> ?l . }"
        )
        assert len(q.patterns) == 2

    def test_distinct_and_limit(self):
        q = parse_sparql(
            "SELECT DISTINCT ?s WHERE { ?s ?p ?o } LIMIT 5"
        )
        assert q.distinct and q.limit == 5

    def test_filter_not_equal(self):
        q = parse_sparql(
            "SELECT ?s WHERE { ?s <language> ?l . FILTER(?l != <eng>) }"
        )
        assert q.filters == [Filter("l", "!=", "<eng>")]

    def test_filter_equal_literal(self):
        q = parse_sparql(
            'SELECT ?s WHERE { ?s <Point> ?p . FILTER(?p = "end") }'
        )
        assert q.filters == [Filter("p", "=", '"end"')]

    def test_comments_ignored(self):
        q = parse_sparql(
            "# find texts\nSELECT ?s WHERE { ?s <type> <Text> }"
        )
        assert len(q.patterns) == 1

    def test_literal_terms(self):
        q = parse_sparql('SELECT ?s WHERE { ?s <Point> "end" }')
        assert q.patterns[0][2] == '"end"'

    @pytest.mark.parametrize(
        "bad",
        [
            "WHERE { ?s ?p ?o }",
            "SELECT WHERE { ?s ?p ?o }",
            "SELECT ?s { ?s ?p ?o }",
            "SELECT ?s WHERE { ?s ?p }",
            "SELECT ?s WHERE { ?s ?p ?o ",
            "SELECT ?s WHERE { ?s ?p ?o } garbage",
            "SELECT ?s WHERE { FILTER(?s ~ <x>) }",
            "SELECT ?s WHERE { FILTER(<x> = ?s) }",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_sparql(bad)


class TestExecution:
    def test_single_pattern(self, store):
        got = store.sparql("SELECT ?s WHERE { ?s <type> <Text> }")
        assert sorted(b["s"] for b in got) == ["<e1>", "<e2>"]

    def test_join(self, store):
        got = store.sparql(
            "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <language> ?l }"
        )
        assert sorted((b["s"], b["l"]) for b in got) == [
            ("<e1>", "<fre>"), ("<e2>", "<eng>"),
        ]

    def test_filter(self, store):
        got = store.sparql(
            "SELECT ?s WHERE { ?s <type> <Text> . ?s <language> ?l . "
            "FILTER(?l != <eng>) }"
        )
        assert [b["s"] for b in got] == ["<e1>"]

    def test_filter_on_nonprojected_variable(self, store):
        """The filtered variable need not be selected."""
        got = store.sparql(
            "SELECT ?s WHERE { ?s <language> ?l . FILTER(?l = <fre>) }"
        )
        assert [b["s"] for b in got] == ["<e1>"]

    def test_select_star_returns_all_variables(self, store):
        got = store.sparql("SELECT * WHERE { ?a <records> ?b }")
        assert got == [{"a": "<e4>", "b": "<e1>"}]

    def test_distinct(self, store):
        got = store.sparql("SELECT DISTINCT ?t WHERE { ?s <type> ?t }")
        assert sorted(b["t"] for b in got) == ["<Date>", "<Text>"]

    def test_limit(self, store):
        got = store.sparql("SELECT ?s WHERE { ?s <type> ?t } LIMIT 2")
        assert len(got) == 2

    def test_property_variable(self, store):
        got = store.sparql("SELECT ?p WHERE { <e1> ?p ?o }")
        assert sorted(b["p"] for b in got) == ["<language>", "<type>"]

    def test_filter_unknown_variable_rejected(self, store):
        with pytest.raises(PlanError):
            store.sparql(
                "SELECT ?s WHERE { ?s <type> ?t . FILTER(?zz = <x>) }"
            )

    def test_agrees_with_solve(self, store):
        sparql = store.sparql(
            "SELECT ?s ?t WHERE { ?s <type> ?t }"
        )
        solve = store.solve(
            [(Var("s"), "<type>", Var("t"))], projection=["s", "t"]
        )
        key = lambda b: sorted(b.items())
        assert sorted(sparql, key=key) == sorted(solve, key=key)

    def test_missing_constant_gives_empty(self, store):
        assert store.sparql("SELECT ?s WHERE { ?s <ghost> ?o }") == []
