"""Tests for the synthetic Barton-like generator and dataset statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    BartonConfig,
    compute_statistics,
    cumulative_distribution,
    generate_barton,
    head_tail_weights,
    sample_by_weights,
    split_properties,
    zipf_weights,
)
from repro.data.barton import (
    CONFERENCES,
    DLC,
    END,
    ENCODING,
    FRENCH,
    LANGUAGE,
    ORIGIN,
    POINT,
    RECORDS,
    TEXT,
    TYPE,
    WELL_KNOWN_PROPERTIES,
)
from repro.data.stats import frequency_table, top_share
from repro.data.zipf import apportion
from repro.errors import BenchmarkError


class TestZipf:
    def test_zipf_weights_normalized_and_decreasing(self):
        w = zipf_weights(100, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)

    def test_zipf_weights_rejects_zero(self):
        with pytest.raises(BenchmarkError):
            zipf_weights(0)

    def test_head_tail_mass_split(self):
        w = head_tail_weights(222, head_fraction=0.13, head_mass=0.99)
        n_head = int(np.ceil(0.13 * 222))
        assert w[:n_head].sum() == pytest.approx(0.99)
        assert w.sum() == pytest.approx(1.0)

    def test_head_tail_all_head(self):
        w = head_tail_weights(10, head_fraction=1.0)
        assert len(w) == 10
        assert w.sum() == pytest.approx(1.0)

    def test_head_tail_invalid_params(self):
        with pytest.raises(BenchmarkError):
            head_tail_weights(10, head_fraction=0.0)
        with pytest.raises(BenchmarkError):
            head_tail_weights(10, head_mass=1.5)
        with pytest.raises(BenchmarkError):
            head_tail_weights(0)

    def test_apportion_sums_exactly(self):
        counts = apportion(1000, zipf_weights(7, 1.3))
        assert counts.sum() == 1000

    def test_apportion_respects_ordering(self):
        counts = apportion(10_000, zipf_weights(5, 1.5))
        assert list(counts) == sorted(counts, reverse=True)

    def test_sample_by_weights_validates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(BenchmarkError):
            sample_by_weights(rng, [], 5)
        with pytest.raises(BenchmarkError):
            sample_by_weights(rng, [-1.0, 2.0], 5)
        with pytest.raises(BenchmarkError):
            sample_by_weights(rng, [0.0, 0.0], 5)

    def test_sample_by_weights_shape(self):
        rng = np.random.default_rng(0)
        out = sample_by_weights(rng, [0.5, 0.5], 100)
        assert out.shape == (100,)
        assert set(np.unique(out)) <= {0, 1}


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(n_triples=30_000, seed=7)


class TestBartonGenerator:
    def test_triple_count_close_to_requested(self, dataset):
        assert abs(len(dataset) - 30_000) / 30_000 < 0.02

    def test_property_count(self, dataset):
        props = {t.p for t in dataset.triples}
        assert len(props) == 222
        assert props == set(dataset.properties)

    def test_type_is_most_frequent_property(self, dataset):
        counts = frequency_table(dataset.triples, "p")
        assert max(counts, key=counts.get) == TYPE
        # <type> carries roughly a quarter of the triples (paper: 24.5%).
        assert 0.15 < counts[TYPE] / len(dataset) < 0.35

    def test_top_13_percent_of_properties_carry_99_percent(self, dataset):
        counts = frequency_table(dataset.triples, "p")
        assert top_share(counts, 0.13) > 0.97

    def test_long_tail_has_tiny_properties(self, dataset):
        counts = frequency_table(dataset.triples, "p")
        tiny = sum(1 for c in counts.values() if c < 10)
        assert tiny > 50  # many near-empty vertically-partitioned tables

    def test_one_type_triple_per_entity(self, dataset):
        type_subjects = [t.s for t in dataset.triples if t.p == TYPE]
        # every entity plus the <conferences> hook subject, each exactly once
        assert len(type_subjects) == len(set(type_subjects))
        assert len(type_subjects) == dataset.n_entities + 1
        assert CONFERENCES in type_subjects

    def test_subjects_much_more_uniform_than_properties(self, dataset):
        prop_counts = frequency_table(dataset.triples, "p")
        subj_counts = frequency_table(dataset.triples, "s")
        assert max(subj_counts.values()) < max(prop_counts.values()) / 10

    def test_subject_object_overlap_is_large(self, dataset):
        stats = compute_statistics(dataset.triples)
        assert stats.subject_object_overlap > 0.2 * stats.distinct_subjects

    def test_interesting_properties_include_query_hooks(self, dataset):
        assert set(WELL_KNOWN_PROPERTIES) <= set(dataset.interesting_properties)
        assert len(dataset.interesting_properties) == 28

    def test_query_hooks_present(self, dataset):
        g = dataset.graph()
        assert any(g.match(p=TYPE, o=TEXT))
        assert any(g.match(p=LANGUAGE, o=FRENCH))
        assert any(g.match(p=ORIGIN, o=DLC))
        assert any(g.match(p=POINT, o=END))
        assert any(g.match(p=ENCODING))
        assert any(g.match(s=CONFERENCES))

    def test_q5_path_exists(self, dataset):
        """Some subject with origin DLC records an entity whose type != Text."""
        g = dataset.graph()
        found = False
        for a in g.match(p=ORIGIN, o=DLC):
            for b in g.match(s=a.s, p=RECORDS):
                for c in g.match(s=b.o, p=TYPE):
                    if c.o != TEXT:
                        found = True
        assert found

    def test_q8_path_exists(self, dataset):
        g = dataset.graph()
        shared = False
        for a in g.match(s=CONFERENCES):
            for b in g.match(o=a.o):
                if b.s != CONFERENCES:
                    shared = True
        assert shared

    def test_no_duplicate_triples(self, dataset):
        assert len(dataset.triples) == len({t.as_tuple() for t in dataset.triples})

    def test_deterministic_given_seed(self):
        a = generate_barton(n_triples=5_000, seed=3)
        b = generate_barton(n_triples=5_000, seed=3)
        assert a.triples == b.triples

    def test_different_seeds_differ(self):
        a = generate_barton(n_triples=5_000, seed=3)
        b = generate_barton(n_triples=5_000, seed=4)
        assert a.triples != b.triples

    def test_config_validation(self):
        with pytest.raises(BenchmarkError):
            generate_barton(n_triples=10)
        with pytest.raises(BenchmarkError):
            generate_barton(n_triples=5_000, n_properties=3)
        with pytest.raises(BenchmarkError):
            generate_barton(n_triples=5_000, n_interesting=500)
        with pytest.raises(BenchmarkError):
            BartonConfig(n_classes=4).validate()

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(BenchmarkError):
            generate_barton(BartonConfig(), n_triples=1_000)

    def test_scaling_property_count(self):
        ds = generate_barton(n_triples=10_000, n_properties=50, seed=1)
        assert len({t.p for t in ds.triples}) == 50


class TestStatistics:
    def test_table1_fields(self, dataset):
        stats = compute_statistics(dataset.triples)
        assert stats.total_triples == len(dataset)
        assert stats.distinct_properties == 222
        assert stats.distinct_subjects > 0
        assert stats.distinct_objects > 0
        assert stats.strings_in_dictionary <= (
            stats.distinct_subjects + stats.distinct_properties + stats.distinct_objects
        )
        assert stats.data_set_bytes > stats.total_triples * 24

    def test_rows_order_matches_table1(self, dataset):
        rows = compute_statistics(dataset.triples).rows()
        assert rows[0][0] == "total triples"
        assert len(rows) == 7

    def test_cumulative_distribution_axes(self, dataset):
        counts = frequency_table(dataset.triples, "p")
        x, y = cumulative_distribution(counts)
        assert len(x) == len(y) == 222
        assert x[-1] == pytest.approx(100.0)
        assert y[-1] == pytest.approx(100.0)
        assert np.all(np.diff(y) >= 0)

    def test_cumulative_distribution_empty(self):
        x, y = cumulative_distribution({})
        assert len(x) == len(y) == 0

    def test_property_curve_dominates_subject_curve(self, dataset):
        """Figure 1: the property CDF rises far faster than the subject CDF."""
        px, py = cumulative_distribution(frequency_table(dataset.triples, "p"))
        sx, sy = cumulative_distribution(frequency_table(dataset.triples, "s"))
        # At 10% of distinct values, properties cover far more of the triples.
        p_at_10 = py[int(0.10 * len(py))]
        s_at_10 = sy[int(0.10 * len(sy))]
        assert p_at_10 > s_at_10 + 30


class TestSplitting:
    def test_split_reaches_target_count(self, dataset):
        new_triples, props = split_properties(
            dataset.triples, 400, seed=5, protected=WELL_KNOWN_PROPERTIES
        )
        assert len(props) == 400
        assert len(new_triples) == len(dataset.triples)

    def test_split_preserves_subject_object(self, dataset):
        new_triples, _ = split_properties(
            dataset.triples, 300, seed=5, protected=WELL_KNOWN_PROPERTIES
        )
        assert {(t.s, t.o) for t in new_triples} == {
            (t.s, t.o) for t in dataset.triples
        }

    def test_protected_properties_untouched(self, dataset):
        new_triples, props = split_properties(
            dataset.triples, 350, seed=5, protected=WELL_KNOWN_PROPERTIES
        )
        for p in WELL_KNOWN_PROPERTIES:
            assert p in props
        before = sum(1 for t in dataset.triples if t.p == TYPE)
        after = sum(1 for t in new_triples if t.p == TYPE)
        assert before == after

    def test_split_to_same_count_is_identity(self, dataset):
        new_triples, props = split_properties(dataset.triples, 222, seed=5)
        assert new_triples == dataset.triples

    def test_cannot_shrink(self, dataset):
        with pytest.raises(BenchmarkError):
            split_properties(dataset.triples, 100)

    def test_unreachable_target_raises(self):
        from repro.model.triple import Triple

        triples = [Triple("<a>", "<p>", "<b>")]
        with pytest.raises(BenchmarkError):
            split_properties(triples, 50, max_subproperties=3)

    def test_split_is_deterministic(self, dataset):
        a, _ = split_properties(dataset.triples, 300, seed=9)
        b, _ = split_properties(dataset.triples, 300, seed=9)
        assert a == b


@settings(deadline=None, max_examples=20)
@given(
    total=st.integers(min_value=1, max_value=100_000),
    n=st.integers(min_value=1, max_value=300),
    exponent=st.floats(min_value=0.0, max_value=3.0),
)
def test_property_apportion_always_sums_to_total(total, n, exponent):
    counts = apportion(total, zipf_weights(n, exponent))
    assert counts.sum() == total
    assert np.all(counts >= 0)
