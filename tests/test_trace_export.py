"""Tests for the Chrome trace / Prometheus exporters (repro.observe.export)."""

import json

import pytest

from repro.engine import MACHINE_A, QueryClock
from repro.observe import MetricsRegistry, Tracer
from repro.observe.export import (
    chrome_trace_events,
    metrics_to_prometheus,
    profile_to_chrome,
    validate_trace,
)


@pytest.fixture(scope="module")
def profile():
    from repro.core import RDFStore
    from repro.data import generate_barton

    dataset = generate_barton(
        n_triples=4_000, n_properties=30, n_interesting=20, seed=5
    )
    store = RDFStore.from_triples(
        dataset.triples, engine="column", scheme="vertical"
    )
    return store.profile("q2", mode="cold")


def complete_events(document):
    return [e for e in document["traceEvents"] if e.get("ph") == "X"]


class TestChromeTraceEvents:
    def _traced(self):
        clock = QueryClock(MACHINE_A)
        tracer = Tracer(clock=clock)
        with tracer.run():
            clock.charge_cpu(0.005)
            with tracer.span("scan"):
                clock.charge_cpu(0.010)
                clock.charge_io(8192, 1)
            with tracer.span("join"):
                clock.charge_cpu(0.002)
        return tracer, clock

    def test_events_have_required_fields(self):
        tracer, _ = self._traced()
        events = chrome_trace_events(tracer.root)
        assert len(events) == 3  # root + scan + join
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert "sid" in event["args"]

    def test_children_nest_inside_parent(self):
        tracer, _ = self._traced()
        events = {e["name"]: e for e in chrome_trace_events(tracer.root)}
        root, scan, join = events["query"], events["scan"], events["join"]
        assert root["ts"] == 0.0
        # Children are packed back to back from the parent's start.
        assert scan["ts"] == root["ts"]
        assert join["ts"] == pytest.approx(scan["ts"] + scan["dur"])
        for child in (scan, join):
            assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1e-6

    def test_self_us_sums_to_clock_charge(self):
        tracer, clock = self._traced()
        events = chrome_trace_events(tracer.root)
        self_sum = sum(e["args"]["self_us"] for e in events)
        assert self_sum == pytest.approx(clock.real_seconds() * 1e6)

    def test_durations_are_simulated_microseconds(self):
        tracer, clock = self._traced()
        events = {e["name"]: e for e in chrome_trace_events(tracer.root)}
        assert events["query"]["dur"] == pytest.approx(
            clock.real_seconds() * 1e6
        )
        assert events["join"]["dur"] == pytest.approx(0.002 * 1e6)


class TestProfileExport:
    def test_document_shape(self, profile):
        document = profile.to_chrome_trace()
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["simulated"] is True
        assert document["otherData"]["engine"] == "column-store"
        phases = {e["ph"] for e in document["traceEvents"]}
        assert phases == {"M", "X"}
        names = [
            e["args"]["name"] for e in document["traceEvents"]
            if e["ph"] == "M"
        ]
        assert any("repro simulated clock" in n for n in names)

    def test_validates_and_json_serializes(self, profile):
        document = profile.to_chrome_trace()
        decoded = json.loads(json.dumps(document))
        assert validate_trace(decoded) is decoded

    def test_self_us_sums_to_query_total(self, profile):
        document = profile.to_chrome_trace()
        self_sum = sum(
            e["args"]["self_us"] for e in complete_events(document)
        )
        assert self_sum == pytest.approx(
            profile.timing.real_seconds * 1e6
        )

    def test_operator_events_carry_rows(self, profile):
        events = complete_events(profile.to_chrome_trace())
        with_rows = [e for e in events if "rows" in e["args"]]
        assert with_rows  # executors reported cardinalities


class TestValidateTrace:
    def _minimal(self):
        return {
            "traceEvents": [
                {"name": "q", "ph": "X", "ts": 0, "dur": 10,
                 "pid": 1, "tid": 1},
                {"name": "child", "ph": "X", "ts": 0, "dur": 4,
                 "pid": 1, "tid": 1},
            ],
        }

    def test_accepts_minimal_document(self):
        validate_trace(self._minimal())

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            validate_trace({})

    def test_rejects_missing_fields(self):
        document = self._minimal()
        del document["traceEvents"][0]["ts"]
        with pytest.raises(ValueError):
            validate_trace(document)

    def test_rejects_negative_duration(self):
        document = self._minimal()
        document["traceEvents"][1]["dur"] = -1
        with pytest.raises(ValueError):
            validate_trace(document)

    def test_rejects_non_integer_pid(self):
        document = self._minimal()
        document["traceEvents"][0]["pid"] = "one"
        with pytest.raises(ValueError):
            validate_trace(document)

    def test_rejects_overlapping_events(self):
        document = self._minimal()
        # Starts inside the root but ends after it: not a tree.
        document["traceEvents"][1].update(ts=5, dur=20)
        with pytest.raises(ValueError):
            validate_trace(document)


class TestPrometheusExposition:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("disk.requests", segment="t.prop",
                         kind="sequential").inc(5)
        registry.gauge("pool.resident").set(12)
        text = metrics_to_prometheus(registry)
        assert "# TYPE repro_disk_requests counter" in text
        assert (
            'repro_disk_requests{kind="sequential",segment="t.prop"} 5'
            in text
        )
        assert "# TYPE repro_pool_resident gauge" in text
        assert "repro_pool_resident 12" in text
        assert text.endswith("\n")

    def test_histograms_become_summaries(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("request_bytes")
        for value in (10, 20, 30):
            histogram.observe(value)
        text = metrics_to_prometheus(registry)
        assert "# TYPE repro_request_bytes summary" in text
        assert 'repro_request_bytes{quantile="0.5"}' in text
        assert "repro_request_bytes_sum 60" in text
        assert "repro_request_bytes_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c').inc()
        text = metrics_to_prometheus(registry)
        assert 'path="a\\"b\\\\c"' in text

    def test_empty_registry(self):
        assert metrics_to_prometheus(MetricsRegistry()) == ""

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert "myapp_c 1" in metrics_to_prometheus(
            registry, prefix="myapp"
        )

    def test_profile_registry_exports(self, profile):
        text = metrics_to_prometheus(profile.registry)
        assert "repro_buffer_page_misses" in text
        # Every sample line parses as name{labels} value.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)


class TestCliTraceOut:
    def test_profile_trace_out_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        trace_path = tmp_path / "q1.trace.json"
        prom_path = tmp_path / "q1.prom"
        code = cli_main([
            "profile", "q1", "--triples", "2000", "--properties", "20",
            "--trace-out", str(trace_path),
            "--prometheus-out", str(prom_path),
        ])
        assert code == 0
        document = json.loads(trace_path.read_text())
        validate_trace(document)
        assert complete_events(document)
        assert "repro_" in prom_path.read_text()
