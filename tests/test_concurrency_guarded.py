"""The guarded-by static checker (repro.analysis.concurrency.guarded).

Fixture modules exercise each rule in and out of violation; the final
tests assert the shipped package tree is clean and that an injected
violation fails the ``repro lint`` CLI loudly.
"""

import textwrap

import pytest

from repro.analysis import CONCURRENCY_RULES, check_package
from repro.analysis.concurrency import check_paths, check_source
from repro.cli import main


def check(source, relpath="repro/engine/fixture.py"):
    return check_source(textwrap.dedent(source), relpath)


def rules(violations):
    return [v.rule for v in violations]


# ---------------------------------------------------------------------------
# the convention, in and out of violation
# ---------------------------------------------------------------------------

class TestGuardedMutation:
    CLEAN = """\
        import threading

        _LOCK = threading.Lock()
        STATS = {"hits": 0}  # guarded-by: _LOCK

        def bump():
            with _LOCK:
                STATS["hits"] += 1
    """

    def test_guarded_mutation_is_clean(self):
        assert check(self.CLEAN) == []

    def test_unguarded_item_write_is_flagged(self):
        violations = check("""\
            import threading

            _LOCK = threading.Lock()
            STATS = {"hits": 0}  # guarded-by: _LOCK

            def bump():
                STATS["hits"] += 1
        """)
        assert rules(violations) == ["unguarded-mutation"]
        v = violations[0]
        assert v.symbol == "STATS"
        assert v.severity == "error"
        assert "with _LOCK" in v.message

    def test_wrong_lock_held_is_flagged(self):
        violations = check("""\
            import threading

            _LOCK = threading.Lock()
            _OTHER = threading.Lock()
            STATS = {"hits": 0}  # guarded-by: _LOCK

            def bump():
                with _OTHER:
                    STATS["hits"] += 1
        """)
        assert rules(violations) == ["unguarded-mutation"]

    def test_mutating_method_outside_lock_is_flagged(self):
        violations = check("""\
            import threading

            _LOCK = threading.Lock()
            ACTIVE = []  # guarded-by: _LOCK

            def register(item):
                ACTIVE.append(item)
        """)
        assert rules(violations) == ["unguarded-mutation"]
        assert ".append()" in violations[0].message

    def test_annotation_on_previous_line_works(self):
        assert check("""\
            import threading

            _LOCK = threading.Lock()
            # guarded-by: _LOCK
            STATS = {"hits": 0}

            def bump():
                with _LOCK:
                    STATS["hits"] += 1
        """) == []

    def test_module_level_writes_are_init_time(self):
        # Import-time setup needs no lock: the convention only covers
        # function scope, where concurrent threads can be.
        assert check("""\
            import threading

            _LOCK = threading.Lock()
            STATS = {}  # guarded-by: _LOCK
            STATS["hits"] = 0
            STATS.update(misses=0)
        """) == []

    def test_local_shadowing_is_not_flagged(self):
        assert check("""\
            import threading

            _LOCK = threading.Lock()
            STATS = {"hits": 0}  # guarded-by: _LOCK

            def snapshot():
                STATS = {}
                STATS["hits"] = 1
                return STATS
        """) == []

    def test_delete_outside_lock_is_flagged(self):
        violations = check("""\
            import threading

            _LOCK = threading.Lock()
            CACHE = {}  # guarded-by: _LOCK

            def evict(key):
                del CACHE[key]
        """)
        assert rules(violations) == ["unguarded-mutation"]


class TestAllowlist:
    def test_unguarded_ok_on_the_line(self):
        assert check("""\
            import threading

            _LOCK = threading.Lock()
            STATS = {"hits": 0}  # guarded-by: _LOCK

            def bump():
                STATS["hits"] += 1  # unguarded-ok: single-threaded path
        """) == []

    def test_unguarded_ok_on_the_line_above(self):
        assert check("""\
            import threading

            _LOCK = threading.Lock()
            STATS = {"hits": 0}  # guarded-by: _LOCK

            def bump():
                # unguarded-ok: single-threaded path
                STATS["hits"] += 1
        """) == []

    def test_multiline_justification_covers_the_next_code_line(self):
        assert check("""\
            import threading

            _LOCK = threading.Lock()
            STATS = {"hits": 0}  # guarded-by: _LOCK

            def bump():
                # unguarded-ok: rebound by the parent before the pool
                # forks; never raced by query threads
                STATS["hits"] += 1
        """) == []


class TestUnannotatedSharedState:
    def test_mutated_bare_container_is_flagged(self):
        violations = check("""\
            CACHE = {}

            def put(key, value):
                CACHE[key] = value
        """)
        assert rules(violations) == ["unannotated-shared-state"]
        assert "guarded-by" in violations[0].message

    def test_read_only_container_is_fine(self):
        assert check("""\
            TABLE = {"a": 1}

            def get(key):
                return TABLE[key]
        """) == []

    def test_constructor_calls_count_as_containers(self):
        violations = check("""\
            from collections import OrderedDict

            CACHE = OrderedDict()

            def put(key, value):
                CACHE[key] = value
        """)
        assert rules(violations) == ["unannotated-shared-state"]


class TestUnknownGuardLock:
    def test_annotation_must_name_a_defined_lock(self):
        violations = check("""\
            STATS = {"hits": 0}  # guarded-by: _MISSING

            def bump():
                with _MISSING:
                    STATS["hits"] += 1
        """)
        assert "unknown-guard-lock" in rules(violations)


class TestGlobalRebind:
    def test_bare_rebind_is_flagged(self):
        violations = check("""\
            _SINGLETON = None

            def get():
                global _SINGLETON
                _SINGLETON = object()
                return _SINGLETON
        """)
        assert rules(violations) == ["unsynchronized-global-rebind"]

    def test_rebind_under_a_lock_is_fine(self):
        assert check("""\
            import threading

            _LOCK = threading.Lock()
            _SINGLETON = None

            def get():
                global _SINGLETON
                with _LOCK:
                    _SINGLETON = object()
                    return _SINGLETON
        """) == []

    def test_rebind_with_allowlist_is_fine(self):
        assert check("""\
            _SINGLETON = None

            def get():
                global _SINGLETON
                # unguarded-ok: set once before threads start
                _SINGLETON = object()
                return _SINGLETON
        """) == []

    def test_annotated_rebind_requires_its_guard(self):
        violations = check("""\
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}  # guarded-by: _LOCK

            def reset():
                global _CACHE
                _CACHE = {}
        """)
        assert rules(violations) == ["unguarded-mutation"]


# ---------------------------------------------------------------------------
# rule catalog / package tree / CLI fail-loud
# ---------------------------------------------------------------------------

def test_rule_catalog_covers_emitted_rules():
    assert set(CONCURRENCY_RULES) == {
        "unannotated-shared-state",
        "unguarded-mutation",
        "unknown-guard-lock",
        "unsynchronized-global-rebind",
    }


def test_shipped_package_tree_is_clean():
    # The acceptance gate: every shared structure in the codebase is
    # annotated and every mutation site guarded (or allowlisted).
    assert check_package() == []


def test_injected_violation_fails_lint_cli(tmp_path, capsys):
    package = tmp_path / "repro" / "engine"
    package.mkdir(parents=True)
    (package / "racy.py").write_text(textwrap.dedent("""\
        import threading

        _LOCK = threading.Lock()
        STATS = {"hits": 0}  # guarded-by: _LOCK

        def bump():
            STATS["hits"] += 1
    """))
    code = main(["lint", str(tmp_path / "repro")])
    assert code == 1
    out = capsys.readouterr().out
    assert "unguarded-mutation" in out
    assert "1 new concurrency violation(s)" in out


def test_check_paths_keys_relative_to_argument_parent(tmp_path):
    package = tmp_path / "repro"
    package.mkdir()
    (package / "mod.py").write_text(
        "CACHE = {}\n\ndef put(k, v):\n    CACHE[k] = v\n"
    )
    violations = check_paths([str(package)])
    assert [v.path for v in violations] == ["repro/mod.py"]


def test_syntax_error_propagates():
    with pytest.raises(SyntaxError):
        check_source("def broken(:\n", "repro/engine/broken.py")
