"""Compressed-execution parity: same rows, controlled costs.

The compression layer's contract has two halves:

* **logical cost mode** is *invisible*: every Barton query returns
  identical decoded rows AND bit-identical simulated timings to the
  uncompressed engine (segments are sized at the logical footprint, all
  I/O goes down the uncompressed paths).  The exec-parity goldens must
  also hold under logical compression.
* **physical cost mode** keeps rows identical while simulated costs drop
  on scan-heavy queries — compressed byte ranges and run-skipping are the
  paper's operate-on-compressed argument, measured.
"""

import json
from pathlib import Path

import pytest

from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.queries import ALL_QUERY_NAMES, build_query
from repro.storage import build_triple_store, build_vertical_store

GOLDENS = Path(__file__).parent / "data" / "exec_parity_goldens.json"

SCHEMES = ("vertical", "triple")


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(
        n_triples=6000, n_properties=60, n_interesting=28, seed=42
    )


def _build(dataset, scheme, compression):
    engine = ColumnStoreEngine(compression=compression)
    if scheme == "vertical":
        catalog = build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties
        )
    else:
        catalog = build_triple_store(
            engine, dataset.triples, dataset.interesting_properties,
            clustering="PSO",
        )
    return engine, catalog


def _sweep(dataset, scheme, compression):
    """rows + exact timing fields for every Barton query, cold and hot."""
    engine, catalog = _build(dataset, scheme, compression)
    out = {}
    for query in ALL_QUERY_NAMES:
        plan = build_query(catalog, query)
        for mode in ("cold", "hot"):
            if mode == "cold":
                engine.make_cold()
            else:
                engine.run(plan)  # warm-up
            relation, timing = engine.run(plan)
            rows = sorted(relation.decoded_tuples(
                catalog.dictionary, order=plan.output_columns()
            ))
            out[(query, mode)] = (rows, {
                "real_seconds": timing.real_seconds,
                "user_seconds": timing.user_seconds,
                "seek_seconds": timing.seek_seconds,
                "transfer_seconds": timing.transfer_seconds,
                "bytes_read": timing.bytes_read,
                "io_requests": timing.io_requests,
            })
    return out


@pytest.fixture(scope="module")
def sweeps(dataset):
    return {
        (scheme, compression): _sweep(dataset, scheme, compression)
        for scheme in SCHEMES
        for compression in (None, "logical", "physical")
    }


class TestLogicalMode:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_bit_identical_to_uncompressed(self, sweeps, scheme):
        """Rows AND every simulated cost field, all queries, both modes."""
        raw = sweeps[(scheme, None)]
        logical = sweeps[(scheme, "logical")]
        for key in raw:
            assert logical[key][0] == raw[key][0], (scheme, key, "rows")
            assert logical[key][1] == raw[key][1], (scheme, key, "timing")

    def test_goldens_hold_under_logical_compression(self):
        """The pre-refactor exec-parity goldens still reproduce when every
        column-store cell is built with logical compression."""
        from repro.exec.parity import compare_parity, parity_sweep

        with open(GOLDENS) as handle:
            goldens = json.load(handle)
        meta = goldens["meta"]
        sweep = parity_sweep(
            n_triples=meta["n_triples"],
            n_properties=meta["n_properties"],
            seed=meta["seed"],
            modes=tuple(meta["modes"]),
            column_engine_options={"compression": "logical"},
        )
        mismatches = compare_parity(goldens, sweep)
        assert not mismatches, "\n".join(mismatches)


class TestPhysicalMode:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_rows_identical(self, sweeps, scheme):
        raw = sweeps[(scheme, None)]
        physical = sweeps[(scheme, "physical")]
        for key in raw:
            assert physical[key][0] == raw[key][0], (scheme, key)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_never_reads_more_bytes(self, sweeps, scheme):
        raw = sweeps[(scheme, None)]
        physical = sweeps[(scheme, "physical")]
        for key in raw:
            assert (physical[key][1]["bytes_read"]
                    <= raw[key][1]["bytes_read"]), (scheme, key)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_scan_heavy_queries_get_cheaper(self, sweeps, scheme):
        """At least one query's simulated cost strictly drops (in fact,
        on this dataset every cold query does — run-skipping and smaller
        transfers beat the raw path across the board)."""
        raw = sweeps[(scheme, None)]
        physical = sweeps[(scheme, "physical")]
        cheaper = [
            key for key in raw
            if physical[key][1]["real_seconds"] < raw[key][1]["real_seconds"]
        ]
        assert cheaper, scheme
        cold = [k for k in raw if k[1] == "cold"]
        assert all(
            physical[key][1]["real_seconds"] <= raw[key][1]["real_seconds"]
            for key in cold
        ), scheme


class TestFootprint:
    def test_vertical_columns_compress_10x(self, dataset):
        engine, _ = _build(dataset, "vertical", "physical")
        report = engine.compression_report()
        assert report["mode"] == "physical"
        assert report["compression_ratio"] >= 10.0, report
        assert report["compressed_bytes"] < report["logical_bytes"]

    def test_triple_store_compresses_5x(self, dataset):
        engine, _ = _build(dataset, "triple", "physical")
        report = engine.compression_report()
        assert report["compression_ratio"] >= 5.0, report
        # PSO clustering makes the leading prop column pure runs.
        assert report["columns_by_codec"].get("rle", 0) >= 1

    def test_logical_mode_reports_the_same_footprint(self, dataset):
        physical_eng, _ = _build(dataset, "vertical", "physical")
        logical_eng, _ = _build(dataset, "vertical", "logical")
        physical = physical_eng.compression_report()
        logical = logical_eng.compression_report()
        assert logical["compressed_bytes"] == physical["compressed_bytes"]
        assert logical["logical_bytes"] == physical["logical_bytes"]
        assert logical["mode"] == "logical"

    def test_disabled_engine_has_no_report(self, dataset):
        engine, _ = _build(dataset, "vertical", None)
        assert engine.compression_report() is None
        assert engine.compression_mode is None


class TestCompressedKernels:
    """Plan shapes that lower to the operate-on-compressed kernels."""

    @pytest.fixture(scope="class")
    def connections(self, dataset):
        import repro.api as api

        triples = [(t.s, t.p, t.o) for t in dataset.triples]
        return {
            compression: api.connect(
                triples=triples, engine="column", scheme="triple",
                clustering="PSO",
                engine_options={"compression": compression},
            )
            for compression in (None, "physical")
        }

    GROUP_SQL = "SELECT prop, COUNT(*) AS n FROM triples GROUP BY prop"
    JOIN_SQL = ("SELECT P.prop, T.subj FROM properties P, triples T "
                "WHERE P.prop = T.prop")

    def test_group_count_lowers_to_compressed_group(self, connections):
        plain = connections[None].session().explain(
            self.GROUP_SQL, physical=True
        )
        compressed = connections["physical"].session().explain(
            self.GROUP_SQL, physical=True
        )
        assert "compressed-group" not in plain
        assert "compressed-group" in compressed

    def test_join_on_rle_scan_lowers_to_compressed_join(self, connections):
        compressed = connections["physical"].session().explain(
            self.JOIN_SQL, physical=True
        )
        assert "compressed-join" in compressed

    @pytest.mark.parametrize("sql", [GROUP_SQL, JOIN_SQL])
    def test_kernel_results_match_uncompressed(self, connections, sql):
        raw = connections[None].query(sql, mode="cold")
        compressed = connections["physical"].query(sql, mode="cold")
        assert sorted(compressed.rows) == sorted(raw.rows)
        assert compressed.cost.bytes_read < raw.cost.bytes_read

    def test_group_kernel_is_cheaper(self, connections):
        raw = connections[None].query(self.GROUP_SQL, mode="cold")
        compressed = connections["physical"].query(self.GROUP_SQL,
                                                   mode="cold")
        assert (compressed.cost.real_seconds
                < raw.cost.real_seconds)


class TestObservability:
    def test_profile_carries_compression_metrics(self, dataset):
        import repro.api as api

        triples = [(t.s, t.p, t.o) for t in dataset.triples]
        conn = api.connect(
            triples=triples, engine="column", scheme="vertical",
            engine_options={"compression": "physical"},
        )
        profile = conn.session().profile("q1")
        document = profile.to_dict()
        compression = document["compression"]
        assert compression["mode"] == "physical"
        assert compression["compression_ratio"] > 1.0
        assert compression["bytes_scanned"] > 0
        assert "compression" in profile.render()

    def test_uncompressed_profile_has_no_compression_section(self, dataset):
        import repro.api as api

        triples = [(t.s, t.p, t.o) for t in dataset.triples]
        conn = api.connect(triples=triples, engine="column",
                           scheme="vertical")
        profile = conn.session().profile("q1")
        assert profile.to_dict()["compression"] is None

    def test_perf_counters_include_compression(self):
        from repro.observe.history import collect_counters

        counters = collect_counters()
        assert "compression" in counters
        assert "compression_ratio" in counters["compression"]

    def test_catalog_records_compression_mode(self, dataset):
        engine, catalog = _build(dataset, "vertical", "physical")
        # the catalog field is populated on the payload path used by the
        # benchmark deployments
        from repro.bench.systems import deploy

        deployment = deploy(dataset, "MonetDB", "vert",
                            compression="physical", cache=False)
        assert deployment.engine.compression_mode == "physical"
