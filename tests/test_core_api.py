"""Tests for the public RDFStore facade and BGP translation."""

import pytest

from repro import RDFStore, Triple, Var, generate_barton
from repro.core.bgp import bgp_plan
from repro.errors import PlanError, StorageError

SMALL_NT = """
<e1> <type> <Text> .
<e1> <language> <fre> .
<e2> <type> <Date> .
<e3> <records> <e1> .
<e3> <type> <Text> .
"""


@pytest.fixture(
    scope="module",
    params=[
        ("column", "vertical"),
        ("column", "triple"),
        ("row", "vertical"),
        ("row", "triple"),
    ],
    ids=lambda p: "-".join(p),
)
def store(request):
    engine, scheme = request.param
    return RDFStore.from_ntriples(SMALL_NT, engine=engine, scheme=scheme)


class TestConstruction:
    def test_from_triples_accepts_tuples(self):
        store = RDFStore.from_triples(
            [("<a>", "<p>", "<b>"), ("<a>", "<q>", "<c>")]
        )
        assert store.n_triples == 2

    def test_unknown_engine_rejected(self):
        with pytest.raises(StorageError):
            RDFStore([Triple("<a>", "<p>", "<b>")], engine="oracle")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(StorageError):
            RDFStore([Triple("<a>", "<p>", "<b>")], scheme="hexastore")

    def test_vertical_creates_property_tables(self):
        store = RDFStore.from_ntriples(SMALL_NT, scheme="vertical")
        assert len(store.catalog.property_tables) == 3
        assert store.database_bytes() > 0

    def test_triple_scheme_creates_triples_table(self):
        store = RDFStore.from_ntriples(SMALL_NT, scheme="triple")
        assert "triples" in store.table_names()


class TestMatch:
    def test_match_by_property(self, store):
        rows = store.match(p="<type>")
        assert sorted(rows) == [
            ("<e1>", "<type>", "<Text>"),
            ("<e2>", "<type>", "<Date>"),
            ("<e3>", "<type>", "<Text>"),
        ]

    def test_match_fully_bound(self, store):
        assert store.match("<e1>", "<type>", "<Text>") == [
            ("<e1>", "<type>", "<Text>")
        ]

    def test_match_all(self, store):
        assert len(store.match()) == 5

    def test_match_unknown_constant(self, store):
        assert store.match(p="<ghost>") == []


class TestSolve:
    def test_subject_subject_join(self, store):
        bindings = store.solve(
            [
                (Var("s"), "<type>", "<Text>"),
                (Var("s"), "<language>", Var("lang")),
            ]
        )
        assert bindings == [{"s": "<e1>", "lang": "<fre>"}]

    def test_object_subject_join(self, store):
        bindings = store.solve(
            [
                (Var("a"), "<records>", Var("b")),
                (Var("b"), "<type>", Var("t")),
            ]
        )
        assert bindings == [{"a": "<e3>", "b": "<e1>", "t": "<Text>"}]

    def test_property_variable(self, store):
        bindings = store.solve([("<e1>", Var("p"), Var("o"))])
        assert sorted(
            (b["p"], b["o"]) for b in bindings
        ) == [("<language>", "<fre>"), ("<type>", "<Text>")]

    def test_projection_subset(self, store):
        bindings = store.solve(
            [
                (Var("s"), "<type>", "<Text>"),
                (Var("s"), "<language>", Var("lang")),
            ],
            projection=["lang"],
        )
        assert bindings == [{"lang": "<fre>"}]

    def test_agrees_with_reference_graph(self, store):
        """BGP answers equal RDFGraph.solve on the same data."""
        from repro.model import RDFGraph, parse_ntriples_text

        graph = RDFGraph(parse_ntriples_text(SMALL_NT))
        patterns = [
            (Var("s"), "<type>", Var("t")),
        ]
        expected = sorted(
            (b["s"], b["t"]) for b in graph.solve(patterns)
        )
        got = sorted((b["s"], b["t"]) for b in store.solve(patterns))
        assert got == expected

    def test_unconnected_bgp_rejected(self, store):
        with pytest.raises(PlanError):
            store.solve(
                [
                    (Var("a"), "<type>", "<Text>"),
                    (Var("b"), "<language>", "<fre>"),
                ]
            )

    def test_repeated_variable_within_pattern(self, store):
        """(?x, <records>, ?x) — self-referential pattern, realized via a
        post-scan column-column filter (none in the test data)."""
        assert store.solve([(Var("x"), "<records>", Var("x"))]) == []

    def test_cyclic_bgp(self, store):
        """A cyclic BGP: e3 records e1, both share <type> structure."""
        bindings = store.solve(
            [
                (Var("a"), "<records>", Var("b")),
                (Var("a"), "<type>", Var("t")),
                (Var("b"), "<type>", Var("t")),
            ]
        )
        assert bindings == [
            {"a": "<e3>", "b": "<e1>", "t": "<Text>"}
        ]

    def test_empty_bgp_rejected(self, store):
        with pytest.raises(PlanError):
            store.solve([])

    def test_unknown_projection_rejected(self, store):
        with pytest.raises(PlanError):
            store.solve([(Var("s"), "<type>", Var("o"))], projection=["zz"])


class TestSQL:
    def test_sql_on_triple_store(self):
        store = RDFStore.from_ntriples(SMALL_NT, scheme="triple")
        rows = store.sql(
            "SELECT A.obj, count(*) FROM triples AS A "
            "WHERE A.prop = '<type>' GROUP BY A.obj"
        )
        assert sorted(rows) == [("<Date>", 1), ("<Text>", 2)]

    def test_sql_on_vertical_store_property_table(self):
        store = RDFStore.from_ntriples(SMALL_NT, scheme="vertical")
        table = store.catalog.property_table("<type>")
        rows = store.sql(f"SELECT obj, count(*) FROM {table} GROUP BY obj")
        assert sorted(rows) == [("<Date>", 1), ("<Text>", 2)]

    def test_explain_renders_plan(self, store):
        text = store.explain([(Var("s"), "<type>", Var("o"))])
        assert "Scan" in text and "Project" in text


class TestBenchmarkInterface:
    @pytest.fixture(scope="class")
    def barton_store(self):
        dataset = generate_barton(n_triples=5_000, n_properties=30, seed=3)
        return RDFStore.from_triples(
            dataset.triples,
            scheme="vertical",
            interesting_properties=dataset.interesting_properties,
        )

    def test_benchmark_query_runs(self, barton_store):
        rows, timing = barton_store.benchmark_query("q1")
        assert len(rows) > 0
        assert timing.real_seconds > 0

    def test_cold_slower_than_hot(self, barton_store):
        barton_store.make_cold()
        _, cold = barton_store.benchmark_query("q2", mode="cold")
        _, hot = barton_store.benchmark_query("q2", mode="hot")
        assert hot.real_seconds < cold.real_seconds

    def test_query_names(self, barton_store):
        names = barton_store.benchmark_queries()
        assert "q8" in names and "q2*" in names

    def test_scope_override(self, barton_store):
        rows_small, _ = barton_store.benchmark_query(
            "q2", scope=barton_store.catalog.interesting_properties[:3]
        )
        rows_all, _ = barton_store.benchmark_query("q2", scope="all")
        assert len(rows_small) <= len(rows_all)


class TestBGPPlanShapes:
    def test_vertical_property_variable_becomes_union(self):
        store = RDFStore.from_ntriples(SMALL_NT, scheme="vertical")
        plan, _ = bgp_plan(store.catalog, [(Var("s"), Var("p"), Var("o"))])
        from repro.plan import Union, walk

        assert any(isinstance(n, Union) for n in walk(plan))

    def test_triple_store_pattern_is_single_scan(self):
        store = RDFStore.from_ntriples(SMALL_NT, scheme="triple")
        plan, _ = bgp_plan(store.catalog, [(Var("s"), "<type>", Var("o"))])
        from repro.plan import Scan, walk

        scans = [n for n in walk(plan) if isinstance(n, Scan)]
        assert len(scans) == 1


class TestFileIO:
    def test_from_file_and_statistics(self, tmp_path):
        from repro.model.parser import write_ntriples_file, parse_ntriples_file
        from repro.model.triple import Triple

        triples = [
            Triple("<a>", "<p>", "<b>"),
            Triple("<a>", "<q>", '"x y"'),
            Triple("<b>", "<p>", "<c>"),
        ]
        path = tmp_path / "data.nt"
        write_ntriples_file(triples, path)
        assert parse_ntriples_file(path) == triples

        store = RDFStore.from_file(str(path))
        assert store.n_triples == 3
        stats = store.statistics()
        assert stats.total_triples == 3
        assert stats.distinct_properties == 2
        assert stats.subject_object_overlap == 1  # <b>

    def test_gzip_round_trip(self, tmp_path):
        from repro.model.parser import write_ntriples_file, parse_ntriples_file
        from repro.model.triple import Triple

        triples = [Triple("<a>", "<p>", "<b>")]
        path = tmp_path / "data.nt.gz"
        write_ntriples_file(triples, path)
        # The file really is gzip-compressed.
        import gzip

        with gzip.open(path, "rt") as handle:
            assert "<a> <p> <b> ." in handle.read()
        assert parse_ntriples_file(path) == triples

    def test_sparql_limit_pushdown(self):
        """LIMIT lives in the plan (Limit node), not in post-processing."""
        from repro.sparql import parse_sparql
        from repro.sparql.executor import sparql_plan
        from repro.plan import Limit

        store = RDFStore.from_ntriples(SMALL_NT)
        plan, _ = sparql_plan(
            store.catalog,
            parse_sparql("SELECT ?s WHERE { ?s <type> ?t } LIMIT 2"),
        )
        assert isinstance(plan, Limit)
        assert plan.n == 2
