"""Tests for the B+tree, including hypothesis equivalence with sorted dicts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.rowstore.btree import BPlusTree, _upper_bound


def load(pairs, order=4):
    return BPlusTree.bulk_load(sorted(pairs), order=order)


class TestBulkLoad:
    def test_empty_tree(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.search((1,)) == []

    def test_small_tree(self):
        tree = load([((i,), i * 10) for i in range(10)])
        assert len(tree) == 10
        assert [v for _, v in tree.items()] == [i * 10 for i in range(10)]

    def test_large_tree_has_height(self):
        tree = load([((i,), i) for i in range(10_000)], order=32)
        assert tree.height() >= 3
        assert len(tree) == 10_000

    def test_unsorted_input_rejected(self):
        with pytest.raises(StorageError):
            BPlusTree.bulk_load([((2,), 0), ((1,), 0)])

    def test_tiny_order_rejected(self):
        with pytest.raises(StorageError):
            BPlusTree(order=2)


class TestSearch:
    def test_point_lookup(self):
        tree = load([((i,), i) for i in range(100)])
        assert tree.search((42,)) == [42]
        assert tree.search((1000,)) == []

    def test_duplicates(self):
        tree = load([((5,), v) for v in range(20)] + [((6,), 99)])
        assert sorted(tree.search((5,))) == list(range(20))
        assert tree.search((6,)) == [99]

    def test_duplicates_spanning_leaves(self):
        # order 4 -> duplicates of one key spread over many leaves.
        pairs = [((7,), v) for v in range(50)]
        tree = load(pairs, order=4)
        assert sorted(tree.search((7,))) == list(range(50))


class TestPrefixScan:
    def test_composite_prefix(self):
        pairs = [((p, s), p * 100 + s) for p in range(5) for s in range(10)]
        tree = load(pairs)
        got = [v for _, v in tree.prefix_scan((3,))]
        assert got == [300 + s for s in range(10)]

    def test_full_key_prefix(self):
        pairs = [((p, s), p * 100 + s) for p in range(5) for s in range(10)]
        tree = load(pairs)
        assert [v for _, v in tree.prefix_scan((2, 7))] == [207]

    def test_missing_prefix(self):
        tree = load([((1, 1), 0)])
        assert list(tree.prefix_scan((9,))) == []


class TestRangeScan:
    def test_bounded_range(self):
        tree = load([((i,), i) for i in range(100)])
        got = [v for _, v in tree.range_scan((10,), (20,))]
        assert got == list(range(10, 20))

    def test_unbounded_below(self):
        tree = load([((i,), i) for i in range(10)])
        assert [v for _, v in tree.range_scan(None, (3,))] == [0, 1, 2]

    def test_unbounded_above(self):
        tree = load([((i,), i) for i in range(10)])
        assert [v for _, v in tree.range_scan((7,), None)] == [7, 8, 9]

    def test_items_in_order(self):
        tree = load([((i,), i) for i in range(1000)], order=8)
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys)


class TestInsert:
    def test_insert_then_search(self):
        tree = BPlusTree(order=4)
        for i in [5, 3, 8, 1, 9, 2, 7]:
            tree.insert((i,), i * 10)
        assert tree.search((8,)) == [80]
        assert [k for k, _ in tree.items()] == sorted(
            [(i,) for i in [5, 3, 8, 1, 9, 2, 7]]
        )

    def test_insert_splits_root(self):
        tree = BPlusTree(order=3)
        for i in range(50):
            tree.insert((i,), i)
        assert tree.height() >= 3
        assert [v for _, v in tree.items()] == list(range(50))

    def test_insert_duplicates(self):
        tree = BPlusTree(order=3)
        for i in range(10):
            tree.insert((1,), i)
        assert sorted(tree.search((1,))) == list(range(10))


class TestAccessHook:
    def test_on_access_called_per_node(self):
        tree = load([((i,), i) for i in range(1000)], order=8)
        touched = []
        tree.on_access = touched.append
        tree.search((500,))
        assert len(touched) >= tree.height()

    def test_leaf_hops_are_accounted(self):
        tree = load([((i,), i) for i in range(1000)], order=8)
        touched = []
        tree.on_access = touched.append
        list(tree.range_scan((0,), (1000,)))
        # Must touch every leaf at least once.
        assert len(set(touched)) >= 1000 // 8


class TestUpperBound:
    def test_increments_last_component(self):
        assert _upper_bound((3,)) == (4,)
        assert _upper_bound((3, 7)) == (3, 8)

    def test_empty_prefix_unbounded(self):
        assert _upper_bound(()) is None


@settings(deadline=None, max_examples=50)
@given(
    pairs=st.lists(
        st.tuples(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            st.integers(0, 100),
        ),
        max_size=200,
    ),
    order=st.sampled_from([3, 4, 8, 64]),
)
def test_property_matches_sorted_list(pairs, order):
    """Bulk-loaded tree scans agree with a plain sorted list."""
    reference = sorted(pairs)
    tree = BPlusTree.bulk_load(reference, order=order)
    assert [kv for kv in tree.items()] == reference
    for prefix in [(0,), (10,), (5, 5)]:
        expected = [
            (k, v)
            for k, v in reference
            if k[: len(prefix)] == prefix
        ]
        assert list(tree.prefix_scan(prefix)) == expected


@settings(deadline=None, max_examples=30)
@given(
    keys=st.lists(st.integers(0, 50), max_size=150),
    order=st.sampled_from([3, 5, 16]),
)
def test_property_insert_matches_sorted(keys, order):
    tree = BPlusTree(order=order)
    for i, k in enumerate(keys):
        tree.insert((k,), i)
    expected = sorted(((k,), i) for i, k in enumerate(keys))
    got = list(tree.items())
    assert sorted(got) == expected
    assert [k for k, _ in got] == sorted(k for k, _ in got)
