"""Unit tests for smaller surfaces: scale-model validation, the VP SQL
generator's error paths, KV readahead, query definitions metadata."""

import pytest

from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.engine import (
    COLUMN_STORE_COSTS,
    MACHINE_A,
    MACHINE_B,
    BufferPool,
    QueryClock,
    SimulatedDisk,
)
from repro.errors import BufferPoolError, SQLError
from repro.queries.definitions import (
    ALL_QUERY_NAMES,
    BASE_QUERY_NAMES,
    QUERIES,
    coverage_table,
)
from repro.sql import generate_vertical_sql
from repro.storage import build_vertical_store


class TestScaleModel:
    def test_machine_scaled_shrinks_latency_only(self):
        scaled = MACHINE_A.scaled(0.01)
        assert scaled.request_latency == pytest.approx(
            MACHINE_A.request_latency * 0.01
        )
        assert scaled.read_bandwidth == MACHINE_A.read_bandwidth
        assert scaled.cpu_scale == MACHINE_A.cpu_scale

    def test_machine_scaled_validates(self):
        with pytest.raises(ValueError):
            MACHINE_A.scaled(0.0)
        with pytest.raises(ValueError):
            MACHINE_A.scaled(1.5)

    def test_costs_scaled_shrinks_fixed_terms_only(self):
        scaled = COLUMN_STORE_COSTS.scaled(0.1)
        assert scaled.query_overhead == pytest.approx(
            COLUMN_STORE_COSTS.query_overhead * 0.1
        )
        assert scaled.plan_operator == pytest.approx(
            COLUMN_STORE_COSTS.plan_operator * 0.1
        )
        assert scaled.plan_quadratic == pytest.approx(
            COLUMN_STORE_COSTS.plan_quadratic * 0.1
        )
        assert scaled.scan_tuple == COLUMN_STORE_COSTS.scan_tuple

    def test_costs_scaled_validates(self):
        with pytest.raises(ValueError):
            COLUMN_STORE_COSTS.scaled(2.0)

    def test_effective_bandwidth_formula(self):
        chunk = 256 * 1024
        rate = MACHINE_A.effective_bandwidth(chunk)
        expected = chunk / (
            MACHINE_A.request_latency + chunk / MACHINE_A.read_bandwidth
        )
        assert rate == pytest.approx(expected)
        # Larger chunks always read faster.
        assert MACHINE_A.effective_bandwidth(1024 * 1024) > rate

    def test_effective_bandwidth_nearly_machine_independent_when_small(self):
        small = 64 * 1024
        a = MACHINE_A.effective_bandwidth(small)
        b = MACHINE_B.effective_bandwidth(small)
        assert b / a < 1.3

    def test_with_read_bandwidth(self):
        m = MACHINE_A.with_read_bandwidth(1_000_000)
        assert m.read_bandwidth == 1_000_000
        assert m.name == MACHINE_A.name


class TestScatteredReads:
    def test_scattered_penalty_slows_transfer(self):
        def run(scattered):
            disk = SimulatedDisk(page_size=8192)
            clock = QueryClock(MACHINE_A)
            pool = BufferPool(disk, clock, 64 * 1024 * 1024)
            seg = disk.create_segment("s", 100 * 8192)
            pool.read_pages(seg, range(100), scattered=scattered)
            return clock.timing().real_seconds

        assert run(True) > run(False) * 2

    def test_scattered_and_sequential_same_bytes(self):
        disk = SimulatedDisk(page_size=8192)
        clock = QueryClock(MACHINE_A)
        pool = BufferPool(disk, clock, 64 * 1024 * 1024)
        seg = disk.create_segment("s", 10 * 8192)
        assert pool.read_pages(seg, range(10), scattered=True) == 10 * 8192

    def test_negative_penalty_rejected(self):
        clock = QueryClock(MACHINE_A)
        with pytest.raises(ValueError):
            clock.charge_io(10, 1, bandwidth_penalty=0.5)

    def test_drop_segment(self):
        disk = SimulatedDisk()
        disk.create_segment("a", 10)
        disk.drop_segment("a")
        with pytest.raises(BufferPoolError):
            disk.segment("a")
        with pytest.raises(BufferPoolError):
            disk.drop_segment("a")
        disk.create_segment("a", 10)  # name reusable


class TestQueryDefinitions:
    def test_names_orders(self):
        assert BASE_QUERY_NAMES == tuple(f"q{i}" for i in range(1, 9))
        assert len(ALL_QUERY_NAMES) == 12
        assert ALL_QUERY_NAMES.count("q2*") == 1

    def test_star_variants_marked(self):
        starred = {n for n, q in QUERIES.items() if q.has_star_variant}
        assert starred == {"q2", "q3", "q4", "q6"}

    def test_descriptions_present(self):
        for q in QUERIES.values():
            assert len(q.description) > 10
            assert q.output_columns

    def test_coverage_table_complete(self):
        table = coverage_table()
        assert set(table) == set(BASE_QUERY_NAMES)


class TestVerticalSQLGeneratorErrors:
    @pytest.fixture(scope="class")
    def catalog(self):
        dataset = generate_barton(n_triples=3_000, n_properties=30, seed=4)
        engine = ColumnStoreEngine()
        return build_vertical_store(
            engine, dataset.triples, dataset.interesting_properties
        )

    def test_unknown_property_table(self, catalog):
        with pytest.raises(SQLError):
            generate_vertical_sql(
                "SELECT A.subj FROM triples AS A "
                "WHERE A.prop = '<not-a-property>'",
                catalog,
            )

    def test_bound_prop_referenced_elsewhere_rejected(self, catalog):
        # A.prop is bound to a table AND used in a join: unrepresentable.
        with pytest.raises(SQLError):
            generate_vertical_sql(
                "SELECT A.subj FROM triples AS A, properties P "
                "WHERE A.prop = '<type>' AND P.prop = A.prop",
                catalog,
            )

    def test_non_triples_tables_pass_through(self, catalog):
        table = catalog.property_table("<type>")
        sql = generate_vertical_sql(
            f"SELECT X.subj FROM {table} AS X", catalog
        )
        assert table in sql

    def test_single_property_list_produces_plain_select(self, catalog):
        sql = generate_vertical_sql(
            "SELECT A.prop, count(*) FROM triples AS A GROUP BY A.prop",
            catalog,
            properties=["<type>"],
        )
        assert "UNION" not in sql.upper()


class TestKVReadahead:
    def test_sequential_cursor_cheaper_than_random_probes(self):
        from repro.cstore.kvstore import OrderedKV

        def build():
            disk = SimulatedDisk(page_size=8192)
            clock = QueryClock(MACHINE_A)
            pool = BufferPool(
                disk, clock, 64 * 1024 * 1024,
                max_run_bytes=256 * 1024, sequential_coalescing=False,
            )
            kv = OrderedKV(
                "t", [((i, i), 0) for i in range(200_000)],
                disk, pool, clock, 1e-7, order=1500,
            )
            return kv, clock, pool

        kv, clock, pool = build()
        clock.reset()
        list(kv.cursor())
        sequential = clock.timing()

        kv, clock, pool = build()
        clock.reset()
        for key in range(0, 200_000, 40_000):  # 5 scattered point probes
            kv.get((key, key))
        probes = clock.timing()
        # Probes read far fewer bytes but pay a request per touch.
        assert probes.bytes_read < sequential.bytes_read / 2
        assert probes.io_requests >= 5
