"""Tests for ORDER BY / LIMIT: logical nodes, both engines, SQL layer."""

import numpy as np
import pytest

from repro.colstore import ColumnStoreEngine
from repro.errors import PlanError, SQLError
from repro.plan import Comparison, GroupBy, Limit, Scan, Select, Sort
from repro.rowstore import RowStoreEngine
from repro.sql import parse_sql, plan_sql
from repro import RDFStore


def engines():
    data = {
        "subj": np.array([3, 1, 2, 1, 3]),
        "prop": np.array([7, 7, 8, 8, 9]),
        "obj": np.array([30, 10, 20, 40, 50]),
    }
    col = ColumnStoreEngine()
    col.create_table("t", data, sort_by=["prop", "subj", "obj"])
    row = RowStoreEngine()
    row.create_table("t", data, sort_by=["prop", "subj", "obj"])
    return col, row


def scan():
    return Scan("t", ["subj", "prop", "obj"])


class TestLogicalNodes:
    def test_sort_validates_direction(self):
        with pytest.raises(PlanError):
            Sort(scan(), [("subj", "up")])

    def test_sort_validates_columns(self):
        with pytest.raises(PlanError):
            Sort(scan(), [("nope", "asc")])

    def test_sort_needs_keys(self):
        with pytest.raises(PlanError):
            Sort(scan(), [])

    def test_limit_rejects_negative(self):
        with pytest.raises(PlanError):
            Limit(scan(), -1)

    def test_passthrough_columns(self):
        assert Sort(scan(), [("subj", "asc")]).output_columns() == [
            "subj", "prop", "obj",
        ]
        assert Limit(scan(), 2).output_columns() == ["subj", "prop", "obj"]


class TestEngineExecution:
    @pytest.mark.parametrize("which", ["col", "row"])
    def test_sort_ascending(self, which):
        col, row = engines()
        engine = col if which == "col" else row
        plan = Sort(scan(), [("obj", "asc")])
        rel = engine.execute(plan)
        assert rel.column("obj").tolist() == [10, 20, 30, 40, 50]

    @pytest.mark.parametrize("which", ["col", "row"])
    def test_sort_descending(self, which):
        col, row = engines()
        engine = col if which == "col" else row
        plan = Sort(scan(), [("obj", "desc")])
        rel = engine.execute(plan)
        assert rel.column("obj").tolist() == [50, 40, 30, 20, 10]

    @pytest.mark.parametrize("which", ["col", "row"])
    def test_multi_key_mixed_directions(self, which):
        col, row = engines()
        engine = col if which == "col" else row
        plan = Sort(scan(), [("subj", "asc"), ("obj", "desc")])
        rel = engine.execute(plan)
        rows = list(zip(rel.column("subj").tolist(), rel.column("obj").tolist()))
        assert rows == [(1, 40), (1, 10), (2, 20), (3, 50), (3, 30)]

    @pytest.mark.parametrize("which", ["col", "row"])
    def test_limit(self, which):
        col, row = engines()
        engine = col if which == "col" else row
        plan = Limit(Sort(scan(), [("obj", "asc")]), 2)
        rel = engine.execute(plan)
        assert rel.column("obj").tolist() == [10, 20]

    @pytest.mark.parametrize("which", ["col", "row"])
    def test_limit_zero_and_overshoot(self, which):
        col, row = engines()
        engine = col if which == "col" else row
        assert engine.execute(Limit(scan(), 0)).n_rows == 0
        assert engine.execute(Limit(scan(), 100)).n_rows == 5

    def test_engines_agree_on_sorted_output_order(self):
        col, row = engines()
        plan = Sort(
            Select(scan(), [Comparison("prop", "!=", 9)]),
            [("obj", "desc")],
        )
        assert (
            col.execute(plan).to_tuples()
            == row.execute(plan).to_tuples()
        )


class TestSQLOrderLimit:
    NT = """
    <a> <score> "3" .
    <b> <score> "1" .
    <c> <score> "2" .
    <a> <type> <Text> .
    <b> <type> <Text> .
    <c> <type> <Date> .
    """

    def test_parse_order_by(self):
        stmt = parse_sql(
            "SELECT A.obj FROM t AS A ORDER BY A.obj DESC LIMIT 3"
        )
        assert stmt.order_by[0].direction == "desc"
        assert stmt.limit == 3

    def test_parse_order_by_count_star(self):
        stmt = parse_sql(
            "SELECT A.obj, count(*) FROM t AS A GROUP BY A.obj "
            "ORDER BY count(*) DESC"
        )
        assert stmt.order_by[0].column.name == "count"

    def test_serializer_round_trip(self):
        text = (
            "SELECT A.obj, count(*) FROM t AS A GROUP BY A.obj "
            "ORDER BY count(*) DESC, A.obj ASC LIMIT 10"
        )
        stmt = parse_sql(text)
        assert parse_sql(stmt.sql()) == stmt

    def test_end_to_end_order_and_limit(self):
        store = RDFStore.from_ntriples(self.NT, scheme="triple")
        rows = store.sql(
            "SELECT A.subj, A.obj FROM triples AS A "
            "WHERE A.prop = '<score>' ORDER BY A.obj ASC LIMIT 2"
        )
        assert rows == [("<b>", '"1"'), ("<c>", '"2"')]

    def test_order_by_output_alias(self):
        store = RDFStore.from_ntriples(self.NT, scheme="triple")
        rows = store.sql(
            "SELECT A.obj AS score FROM triples AS A "
            "WHERE A.prop = '<score>' ORDER BY score DESC"
        )
        assert rows == [('"3"',), ('"2"',), ('"1"',)]

    def test_order_by_count_end_to_end(self):
        store = RDFStore.from_ntriples(self.NT, scheme="triple")
        rows = store.sql(
            "SELECT A.obj, count(*) FROM triples AS A "
            "WHERE A.prop = '<type>' GROUP BY A.obj "
            "ORDER BY count(*) DESC LIMIT 1"
        )
        assert rows == [("<Text>", 2)]

    def test_order_by_unknown_column_rejected(self):
        store = RDFStore.from_ntriples(self.NT, scheme="triple")
        with pytest.raises(SQLError):
            store.sql(
                "SELECT A.subj FROM triples AS A ORDER BY A.nothere"
            )
