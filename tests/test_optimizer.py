"""Tests for the cost-based join-order optimizer extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.colstore import ColumnStoreEngine
from repro.data import generate_barton
from repro.plan import (
    Comparison,
    GroupBy,
    Join,
    Project,
    Scan,
    Select,
    walk,
)
from repro.plan.optimizer import engine_stats_provider, optimize_joins
from repro.plan.stats import Estimator, TableStats
from repro.queries import ALL_QUERY_NAMES, build_query
from repro.rowstore import RowStoreEngine
from repro.sql import APPENDIX_SQL, plan_sql
from repro.storage import build_triple_store


@pytest.fixture(scope="module")
def deployed():
    dataset = generate_barton(n_triples=8_000, n_properties=40, seed=13)
    engine = ColumnStoreEngine()
    catalog = build_triple_store(
        engine, dataset.triples, dataset.interesting_properties,
        clustering="PSO",
    )
    return engine, catalog


class TestEstimator:
    def make(self):
        stats = {
            "big": TableStats(n_rows=100_000, distinct={"k": 100, "v": 50_000}),
            "small": TableStats(n_rows=100, distinct={"k": 100}),
        }
        return Estimator(lambda name: stats[name])

    def test_scan_cardinality(self):
        est = self.make()
        assert est.cardinality(Scan("big", ["k", "v"])) == 100_000

    def test_equality_selectivity(self):
        est = self.make()
        plan = Select(Scan("big", ["k", "v"]), [Comparison("k", "=", 1)])
        assert est.cardinality(plan) == pytest.approx(1000.0)

    def test_missing_constant_zero(self):
        est = self.make()
        plan = Select(Scan("big", ["k", "v"]), [Comparison("k", "=", None)])
        assert est.cardinality(plan) == 1.0  # floored

    def test_join_cardinality(self):
        est = self.make()
        plan = Join(
            Scan("big", ["k", "v"], alias="A"),
            Scan("small", ["k"], alias="B"),
            on=[("A.k", "B.k")],
        )
        # 100000 * 100 / max(100, 100) = 100000
        assert est.cardinality(plan) == pytest.approx(100_000.0)

    def test_group_by_cardinality(self):
        est = self.make()
        plan = GroupBy(Scan("big", ["k", "v"]), keys=["k"], count_column="n")
        assert est.cardinality(plan) == pytest.approx(100.0)

    def test_range_selectivity(self):
        est = self.make()
        plan = Select(Scan("big", ["k", "v"]), [Comparison("k", ">", 5)])
        assert est.cardinality(plan) == pytest.approx(100_000 / 3)


class TestOptimizerEquivalence:
    @pytest.mark.parametrize("query_name", ALL_QUERY_NAMES)
    def test_benchmark_queries_unchanged_results(self, deployed, query_name):
        engine, catalog = deployed
        plan = build_query(catalog, query_name)
        optimized = optimize_joins(plan, engine_stats_provider(engine))
        original = engine.execute(plan).sorted_tuples(
            order=plan.output_columns()
        )
        rewritten = engine.execute(optimized).sorted_tuples(
            order=optimized.output_columns()
        )
        assert rewritten == original

    def test_appendix_sql_unchanged_results(self, deployed):
        engine, catalog = deployed
        for name in ("q4", "q5", "q7"):
            plan = plan_sql(APPENDIX_SQL[name], catalog)
            optimized = optimize_joins(plan, engine_stats_provider(engine))
            assert engine.execute(optimized).sorted_tuples(
                order=optimized.output_columns()
            ) == engine.execute(plan).sorted_tuples(
                order=plan.output_columns()
            )


class TestOptimizerImproves:
    def test_bad_join_order_repaired(self):
        """A deliberately terrible order — cross-scale join first — is
        rebuilt to start from the most selective relation."""
        engine = ColumnStoreEngine()
        rng = np.random.default_rng(0)
        n = 60_000
        engine.create_table(
            "facts",
            {"k": rng.integers(0, 50, n), "who": rng.integers(0, 2_000, n)},
            sort_by=["k"],
        )
        engine.create_table(
            "tiny",
            {"k": np.arange(3), "tag": np.arange(3)},
            sort_by=["k"],
        )
        # Hand-written order: facts x facts first (huge), tiny last.
        a = Scan("facts", ["k", "who"], alias="A")
        b = Scan("facts", ["k", "who"], alias="B")
        t = Select(
            Scan("tiny", ["k", "tag"], alias="T"),
            [Comparison("T.tag", "=", 1)],
        )
        bad = Join(
            Join(a, b, on=[("A.k", "B.k")]), t, on=[("B.k", "T.k")]
        )
        bad_plan = GroupBy(bad, keys=[], count_column="n")
        good_plan = optimize_joins(
            bad_plan, engine_stats_provider(engine)
        )

        engine.run(bad_plan)  # warm
        _, t_bad = engine.run(bad_plan)
        rel_good, t_good = engine.run(good_plan)
        rel_bad, _ = engine.run(bad_plan)
        assert rel_good.to_tuples() == rel_bad.to_tuples()
        assert t_good.user_seconds < t_bad.user_seconds

        # The optimizer anchored the join tree on the filtered tiny table.
        joins = [n for n in walk(good_plan) if isinstance(n, Join)]
        innermost = joins[-1]
        tables = {
            n.table for n in walk(innermost.left) if isinstance(n, Scan)
        }
        assert "tiny" in tables

    def test_row_store_stats_provider(self):
        engine = RowStoreEngine()
        engine.create_table(
            "t", {"a": [1, 1, 2], "b": [5, 6, 7]}, sort_by=["a"]
        )
        stats = engine_stats_provider(engine)("t")
        assert stats.n_rows == 3
        assert stats.distinct["a"] == 2
        assert stats.distinct["b"] == 3


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 5), n_rels=st.integers(2, 4))
def test_property_optimizer_preserves_results(seed, n_rels):
    """Random chain joins: optimized plans return identical bags."""
    rng = np.random.default_rng(seed)
    engine = ColumnStoreEngine()
    n = 300
    engine.create_table(
        "t",
        {
            "x": rng.integers(0, 6, n),
            "y": rng.integers(0, 6, n),
        },
        sort_by=["x"],
    )
    plan = Select(
        Scan("t", ["x", "y"], alias="R0"),
        [Comparison("R0.y", "!=", int(rng.integers(0, 6)))],
    )
    for i in range(1, n_rels):
        right = Scan("t", ["x", "y"], alias=f"R{i}")
        column = "x" if rng.integers(0, 2) else "y"
        plan = Join(
            plan, right, on=[(f"R{i-1}.{column}", f"R{i}.x")]
        )
    plan = GroupBy(plan, keys=["R0.x"], count_column="n")
    optimized = optimize_joins(plan, engine_stats_provider(engine))
    assert engine.execute(optimized).sorted_tuples(
        order=optimized.output_columns()
    ) == engine.execute(plan).sorted_tuples(order=plan.output_columns())
