"""Tests for the benchmark harness: metrics, runner, reporting, systems."""

import pytest

from repro.bench import (
    BenchmarkRunner,
    TimingCell,
    format_series,
    format_table,
    geometric_mean,
    summarize,
)
from repro.bench.systems import (
    SYSTEM_GRID,
    data_scale,
    deploy,
    deploy_grid,
)
from repro.data import generate_barton
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(n_triples=6_000, n_properties=40, seed=11)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([3, 3, 3]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(BenchmarkError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(BenchmarkError):
            geometric_mean([-1.0])

    def test_order_invariance(self):
        assert geometric_mean([2, 8, 4]) == pytest.approx(
            geometric_mean([8, 4, 2])
        )


class TestSummarize:
    def cells(self, queries, value=2.0):
        return {q: TimingCell(value, value / 2) for q in queries}

    def test_g_over_initial_seven(self):
        base = [f"q{i}" for i in range(1, 8)]
        summary = summarize(self.cells(base))
        assert summary["G_real"] == pytest.approx(2.0)
        assert summary["G_user"] == pytest.approx(1.0)
        # No extended queries -> no G*.
        assert summary["Gstar_real"] is None

    def test_gstar_with_extensions(self):
        cells = self.cells([f"q{i}" for i in range(1, 8)])
        cells["q8"] = TimingCell(16.0, 8.0)
        summary = summarize(cells)
        assert summary["Gstar_real"] > summary["G_real"]
        assert summary["ratio_real"] == pytest.approx(
            summary["Gstar_real"] / summary["G_real"]
        )

    def test_cstore_style_missing_queries(self):
        """C-Store has only q1-q7; summary must cope with missing stars."""
        summary = summarize(self.cells([f"q{i}" for i in range(1, 8)]))
        assert summary["ratio_real"] is None


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-" in lines[1]
        assert "-" in lines[3]  # None renders as dash

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_series(self):
        text = format_series("x", [1, 2], {"s1": [10, 20], "s2": [30, 40]})
        assert "s1" in text and "s2" in text
        assert "40" in text

    def test_float_rendering(self):
        text = format_table(["v"], [[123.456], [1.234], [0.0123], [0.0]])
        assert "123" in text
        assert "1.23" in text
        assert "0.0123" in text


class TestRunner:
    def test_cold_and_hot(self, dataset):
        deployment = deploy(dataset, "MonetDB", "vert")
        runner = BenchmarkRunner(deployment.engine)
        cold = runner.run("q1", deployment.executor("q1"), "cold")
        hot = runner.run("q1", deployment.executor("q1"), "hot")
        assert cold.mode == "cold" and hot.mode == "hot"
        assert hot.timing.real_seconds < cold.timing.real_seconds
        assert cold.n_rows == hot.n_rows > 0

    def test_unknown_mode(self, dataset):
        deployment = deploy(dataset, "MonetDB", "vert")
        runner = BenchmarkRunner(deployment.engine)
        with pytest.raises(BenchmarkError):
            runner.run("q1", deployment.executor("q1"), "warm")


class TestSystems:
    def test_grid_has_seven_rows(self):
        assert len(SYSTEM_GRID) == 7

    def test_data_scale(self, dataset):
        scale = data_scale(dataset)
        assert 0 < scale < 1
        assert scale == pytest.approx(len(dataset.triples) / 50_255_599)

    def test_deploy_grid_labels(self, dataset):
        deployments = deploy_grid(
            dataset,
            grid=(("MonetDB", "triple", "PSO"), ("C-Store", "vert", "SO")),
        )
        assert [d.label() for d in deployments] == [
            "MonetDB/triple-PSO",
            "C-Store/vert-SO",
        ]

    def test_unknown_system(self, dataset):
        with pytest.raises(BenchmarkError):
            deploy(dataset, "Oracle", "triple")

    def test_unknown_scheme(self, dataset):
        with pytest.raises(BenchmarkError):
            deploy(dataset, "DBX", "hexastore")

    def test_cstore_supports_only_base7(self, dataset):
        deployment = deploy(dataset, "C-Store", "vert")
        assert deployment.supports("q1")
        assert not deployment.supports("q8")
        assert not deployment.supports("q2*")

    def test_cstore_rejects_scope_override(self, dataset):
        deployment = deploy(dataset, "C-Store", "vert")
        with pytest.raises(BenchmarkError):
            deployment.executor("q2", scope=["<type>"])

    def test_scaled_seconds(self, dataset):
        deployment = deploy(dataset, "MonetDB", "vert")
        assert deployment.scaled_seconds(1.0) == pytest.approx(
            1.0 / deployment.scale
        )

    def test_same_results_across_grid(self, dataset):
        """Both SQL deployments return identical q1 relations."""
        a = deploy(dataset, "MonetDB", "triple", "PSO")
        b = deploy(dataset, "DBX", "vert")
        rel_a, _ = a.executor("q1")()
        rel_b, _ = b.executor("q1")()
        decoded_a = sorted(rel_a.decoded_tuples(a.catalog.dictionary))
        decoded_b = sorted(rel_b.decoded_tuples(b.catalog.dictionary))
        assert decoded_a == decoded_b


class TestAsciiChart:
    def test_basic_chart(self):
        from repro.bench.ascii_chart import line_chart

        text = line_chart(
            [0, 50, 100],
            {"up": [1.0, 5.0, 9.0], "down": [9.0, 5.0, 1.0]},
            width=30, height=8, x_label="#props",
        )
        assert "*" in text and "+" in text
        assert "up" in text and "down" in text
        assert "#props" in text
        assert "9" in text and "1" in text  # y-range labels

    def test_empty_series(self):
        from repro.bench.ascii_chart import line_chart

        assert line_chart([], {}) == "(no data)"
        assert line_chart([1], {"a": [None]}) == "(no data)"

    def test_flat_series_does_not_crash(self):
        from repro.bench.ascii_chart import line_chart

        text = line_chart([1, 2], {"flat": [3.0, 3.0]})
        assert "flat" in text

    def test_figure_render_includes_chart(self):
        from repro.bench.experiments import ExperimentResult

        result = ExperimentResult(
            name="x", title="T", headers=[], rows=[],
            series={"a": [1.0, 2.0]}, x_values=[10, 20], x_label="n",
        )
        rendered = result.render()
        assert "T" in rendered
        assert "+--" in rendered or "+-" in rendered  # axis present
        assert "a" in rendered

    def test_figure_render_chart_disabled(self):
        from repro.bench.experiments import ExperimentResult

        result = ExperimentResult(
            name="x", title="T", headers=[], rows=[],
            series={"a": [1.0, 2.0]}, x_values=[10, 20], x_label="n",
        )
        assert "+--" not in result.render(chart=False)
