"""Differential testing: random logical plans on both SQL engines.

Hypothesis generates random-but-valid logical plans over a shared random
table; the column store and the row store must produce identical result
bags.  This exercises operator combinations no hand-written query covers
(nested unions over selections, group-bys over joins over extends, ...).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.colstore import ColumnStoreEngine
from repro.plan import (
    ColumnComparison,
    Comparison,
    Distinct,
    Extend,
    GroupBy,
    Having,
    Join,
    Project,
    Scan,
    Select,
    Union,
)
from repro.rowstore import RowStoreEngine

N_ROWS = 400
VALUE_RANGE = 8  # small domain -> plenty of join matches and duplicates


def make_data(seed):
    rng = np.random.default_rng(seed)
    return {
        "subj": rng.integers(0, VALUE_RANGE, N_ROWS),
        "prop": rng.integers(0, VALUE_RANGE, N_ROWS),
        "obj": rng.integers(0, VALUE_RANGE, N_ROWS),
    }


@pytest.fixture(scope="module")
def engines():
    data = make_data(0)
    col = ColumnStoreEngine()
    col.create_table("t", data, sort_by=["prop", "subj", "obj"])
    row = RowStoreEngine()
    row.create_table(
        "t",
        data,
        sort_by=["prop", "subj", "obj"],
        indexes=[
            {"name": "idx_spo", "columns": ["subj", "prop", "obj"]},
            {"name": "idx_osp", "columns": ["obj", "subj", "prop"]},
        ],
    )
    return col, row


# ---------------------------------------------------------------------------
# plan strategies
# ---------------------------------------------------------------------------

_COMPONENTS = ("subj", "prop", "obj")
_counter = st.shared(st.just(None))  # placeholder; aliases via draw indices


@st.composite
def base_relation(draw, alias_pool):
    """Scan with optional selection; returns (plan, set_of_columns)."""
    alias = f"A{draw(st.integers(0, 10**6))}_{len(alias_pool)}"
    while alias in alias_pool:
        alias += "x"
    alias_pool.add(alias)
    scan = Scan("t", list(_COMPONENTS), alias=alias)
    plan = scan
    if draw(st.booleans()):
        predicates = []
        for _ in range(draw(st.integers(1, 2))):
            if draw(st.integers(0, 3)) == 0:
                left = f"{alias}.{draw(st.sampled_from(_COMPONENTS))}"
                right = f"{alias}.{draw(st.sampled_from(_COMPONENTS))}"
                op = draw(st.sampled_from(["=", "!="]))
                predicates.append(ColumnComparison(left, op, right))
            else:
                column = f"{alias}.{draw(st.sampled_from(_COMPONENTS))}"
                op = draw(st.sampled_from(["=", "!=", "<", ">="]))
                value = draw(st.integers(0, VALUE_RANGE))
                predicates.append(Comparison(column, op, value))
        plan = Select(scan, predicates)
    return plan, set(plan.output_columns())


@st.composite
def joined_relation(draw):
    alias_pool = set()
    plan, columns = draw(base_relation(alias_pool))
    for _ in range(draw(st.integers(0, 2))):
        right, right_columns = draw(base_relation(alias_pool))
        left_col = draw(st.sampled_from(sorted(columns)))
        right_col = draw(st.sampled_from(sorted(right_columns)))
        plan = Join(plan, right, on=[(left_col, right_col)])
        columns |= right_columns
    return plan, sorted(columns)


@st.composite
def plans(draw):
    plan, columns = draw(joined_relation())

    shape = draw(st.sampled_from(["project", "group", "union", "distinct",
                                  "extend"]))
    if shape == "project":
        chosen = draw(
            st.lists(st.sampled_from(columns), min_size=1, max_size=3,
                     unique=True)
        )
        return Project(plan, [(f"c{i}", c) for i, c in enumerate(chosen)])
    if shape == "group":
        keys = draw(
            st.lists(st.sampled_from(columns), min_size=0, max_size=2,
                     unique=True)
        )
        grouped = GroupBy(plan, keys=keys, count_column="n")
        if draw(st.booleans()):
            threshold = draw(st.integers(0, 5))
            return Having(grouped, Comparison("n", ">", threshold))
        return grouped
    if shape == "union":
        chosen = draw(
            st.lists(st.sampled_from(columns), min_size=1, max_size=2,
                     unique=True)
        )
        mapping = [(f"c{i}", c) for i, c in enumerate(chosen)]
        one = Project(plan, mapping)
        other_plan, other_columns = draw(joined_relation())
        other_chosen = draw(
            st.lists(st.sampled_from(other_columns), min_size=len(chosen),
                     max_size=len(chosen), unique=True)
        )
        two = Project(
            other_plan, [(f"d{i}", c) for i, c in enumerate(other_chosen)]
        )
        return Union([one, two], distinct=draw(st.booleans()))
    if shape == "distinct":
        chosen = draw(
            st.lists(st.sampled_from(columns), min_size=1, max_size=2,
                     unique=True)
        )
        return Distinct(
            Project(plan, [(f"c{i}", c) for i, c in enumerate(chosen)])
        )
    # extend
    extended = Extend(plan, "tag", draw(st.integers(0, 5)))
    chosen = draw(
        st.lists(st.sampled_from(columns), min_size=1, max_size=2,
                 unique=True)
    )
    mapping = [("tag", "tag")] + [
        (f"c{i}", c) for i, c in enumerate(chosen)
    ]
    return Project(extended, mapping)


@settings(deadline=None, max_examples=60)
@given(plan=plans())
def test_engines_agree_on_random_plans(engines, plan):
    col, row = engines
    expected = col.execute(plan).sorted_tuples(order=plan.output_columns())
    got = row.execute(plan).sorted_tuples(order=plan.output_columns())
    assert got == expected


@settings(deadline=None, max_examples=20)
@given(plan=plans(), seed=st.integers(0, 3))
def test_engines_agree_on_different_data(plan, seed):
    """Same property over a few different random tables."""
    data = make_data(seed)
    col = ColumnStoreEngine()
    col.create_table("t", data, sort_by=["subj", "prop", "obj"])
    row = RowStoreEngine()
    row.create_table("t", data, sort_by=["obj", "prop", "subj"])
    expected = col.execute(plan).sorted_tuples(order=plan.output_columns())
    got = row.execute(plan).sorted_tuples(order=plan.output_columns())
    assert got == expected
