"""Edge-case tests for both engines: empty tables, empty results, pruning,
merge-join paths, buffer eviction under pressure."""

import numpy as np
import pytest

from repro.colstore import ColumnStoreEngine
from repro.colstore.executor import ColumnExecutor
from repro.plan import (
    Comparison,
    Distinct,
    GroupBy,
    Having,
    Join,
    Project,
    Scan,
    Select,
    Sort,
    Union,
)
from repro.rowstore import RowStoreEngine

EMPTY = np.empty(0, dtype=np.int64)


def both_engines(data, sort_by):
    col = ColumnStoreEngine()
    col.create_table("t", data, sort_by=sort_by)
    row = RowStoreEngine()
    row.create_table("t", data, sort_by=sort_by)
    return col, row


def scan(alias=None):
    return Scan("t", ["a", "b"], alias=alias)


class TestEmptyTables:
    @pytest.fixture(params=["col", "row"])
    def engine(self, request):
        col, row = both_engines({"a": EMPTY, "b": EMPTY}, ["a"])
        return col if request.param == "col" else row

    def test_scan_empty(self, engine):
        assert engine.execute(scan()).n_rows == 0

    def test_select_empty(self, engine):
        plan = Select(scan(), [Comparison("a", "=", 1)])
        assert engine.execute(plan).n_rows == 0

    def test_join_empty(self, engine):
        plan = Join(scan("A"), scan("B"), on=[("A.a", "B.a")])
        assert engine.execute(plan).n_rows == 0

    def test_group_by_empty(self, engine):
        plan = GroupBy(scan(), keys=["a"], count_column="n")
        assert engine.execute(plan).n_rows == 0

    def test_group_by_global_on_empty_counts_zero(self, engine):
        plan = GroupBy(scan(), keys=[], count_column="n")
        rel = engine.execute(plan)
        assert rel.column("n").tolist() == [0]

    def test_having_empty(self, engine):
        plan = Having(
            GroupBy(scan(), keys=["a"], count_column="n"),
            Comparison("n", ">", 0),
        )
        assert engine.execute(plan).n_rows == 0

    def test_sort_and_distinct_empty(self, engine):
        assert engine.execute(Sort(scan(), [("a", "asc")])).n_rows == 0
        assert engine.execute(Distinct(scan())).n_rows == 0

    def test_union_with_empty_branch(self, engine):
        one = Project(scan("A"), [("x", "A.a")])
        two = Project(scan("B"), [("x", "B.a")])
        assert engine.execute(Union([one, two])).n_rows == 0


class TestSingleRowTables:
    @pytest.fixture(params=["col", "row"])
    def engine(self, request):
        col, row = both_engines(
            {"a": np.array([5]), "b": np.array([9])}, ["a"]
        )
        return col if request.param == "col" else row

    def test_point_select_hit_and_miss(self, engine):
        assert engine.execute(
            Select(scan(), [Comparison("a", "=", 5)])
        ).n_rows == 1
        assert engine.execute(
            Select(scan(), [Comparison("a", "=", 6)])
        ).n_rows == 0

    def test_self_join(self, engine):
        plan = Join(scan("A"), scan("B"), on=[("A.a", "B.a")])
        assert engine.execute(plan).n_rows == 1


class TestColumnPruning:
    def test_join_prunes_untouched_columns(self):
        """The column store reads only the columns a plan touches, even
        through joins."""
        engine = ColumnStoreEngine()
        n = 50_000
        engine.create_table(
            "wide",
            {
                "k": np.arange(n) % 100,
                "used": np.arange(n),
                "unused": np.arange(n),
            },
            sort_by=["k"],
        )
        plan = Project(
            Join(
                Scan("wide", ["k", "used", "unused"], alias="L"),
                Scan("wide", ["k", "used", "unused"], alias="R"),
                on=[("L.k", "R.k")],
            ),
            [("x", "L.used")],
        )
        engine.make_cold()
        _, timing = engine.run(plan)
        column_bytes = n * 8
        # k (both sides) + used: three columns, not six.
        assert timing.bytes_read <= 3.2 * column_bytes

    def test_group_by_reads_only_keys(self):
        engine = ColumnStoreEngine()
        n = 50_000
        engine.create_table(
            "wide",
            {"k": np.arange(n) % 10, "v": np.arange(n)},
            sort_by=["k"],
        )
        plan = GroupBy(Scan("wide", ["k", "v"]), keys=["k"], count_column="n")
        engine.make_cold()
        _, timing = engine.run(plan)
        assert timing.bytes_read <= 1.2 * n * 8  # only the k column


class TestMergeJoinPath:
    def test_sorted_inputs_cost_less_than_unsorted(self):
        """Two relations sorted on the join key use the merge path, whose
        CPU charge beats the hash path (the paper's 'fast (linear) merge
        joins')."""
        n = 200_000
        key = np.sort(np.random.default_rng(0).integers(0, n // 2, n))
        payload = np.arange(n)

        sorted_engine = ColumnStoreEngine()
        sorted_engine.create_table("t", {"a": key, "b": payload}, sort_by=["a"])
        unsorted_engine = ColumnStoreEngine()
        unsorted_engine.create_table(
            "t", {"a": key, "b": payload}, sort_by=["b"]
        )

        plan = Join(
            Scan("t", ["a", "b"], alias="L"),
            Scan("t", ["a", "b"], alias="R"),
            on=[("L.a", "R.a")],
        )
        plan = GroupBy(plan, keys=[], count_column="n")

        sorted_engine.run(plan)  # warm
        unsorted_engine.run(plan)
        rel_s, t_sorted = sorted_engine.run(plan)
        rel_u, t_unsorted = unsorted_engine.run(plan)
        assert rel_s.to_tuples() == rel_u.to_tuples()
        assert t_sorted.user_seconds < t_unsorted.user_seconds


class TestBufferPressure:
    def test_results_correct_under_tiny_pool(self):
        """Failure injection: a buffer pool far smaller than the working
        set thrashes but never corrupts results."""
        n = 20_000
        rng = np.random.default_rng(1)
        data = {
            "a": rng.integers(0, 50, n),
            "b": rng.integers(0, 50, n),
        }
        roomy = ColumnStoreEngine()
        roomy.create_table("t", data, sort_by=["a"])
        tiny = ColumnStoreEngine(buffer_bytes=8 * 2048)  # 8 pages
        tiny.create_table("t", data, sort_by=["a"])

        plan = GroupBy(
            Select(scan(), [Comparison("b", "!=", 7)]),
            keys=["a"],
            count_column="n",
        )
        expected = roomy.execute(plan).sorted_tuples()
        for _ in range(3):  # repeated runs keep thrashing
            assert tiny.execute(plan).sorted_tuples() == expected

    def test_row_store_under_tiny_pool(self):
        n = 5_000
        rng = np.random.default_rng(2)
        data = {"a": rng.integers(0, 20, n), "b": rng.integers(0, 20, n)}
        roomy = RowStoreEngine()
        roomy.create_table("t", data, sort_by=["a"])
        tiny = RowStoreEngine(buffer_bytes=8 * 2048)
        tiny.create_table("t", data, sort_by=["a"])
        plan = Select(scan(), [Comparison("a", "=", 3)])
        assert (
            tiny.execute(plan).sorted_tuples()
            == roomy.execute(plan).sorted_tuples()
        )
        # The tiny pool genuinely re-reads across runs.
        tiny.make_cold()
        tiny.run(plan)
        _, second = tiny.run(plan)
        roomy.make_cold()
        roomy.run(plan)
        _, roomy_second = roomy.run(plan)
        assert second.bytes_read >= roomy_second.bytes_read


class TestNeededColumnAnalysis:
    def test_project_of_project(self):
        col, row = both_engines(
            {"a": np.array([1, 2]), "b": np.array([3, 4])}, ["a"]
        )
        plan = Project(
            Project(scan(), [("x", "a"), ("y", "b")]), [("z", "y")]
        )
        for engine in (col, row):
            rel = engine.execute(plan)
            assert sorted(rel.column("z").tolist()) == [3, 4]

    def test_union_positional_with_projected_subsets(self):
        col, row = both_engines(
            {"a": np.array([1, 2]), "b": np.array([3, 4])}, ["a"]
        )
        one = Project(scan("A"), [("x", "A.a"), ("y", "A.b")])
        two = Project(scan("B"), [("p", "B.b"), ("q", "B.a")])
        plan = Project(Union([one, two], distinct=False), [("only", "y")])
        for engine in (col, row):
            rel = engine.execute(plan)
            # Branch one contributes b values, branch two contributes a's.
            assert sorted(rel.column("only").tolist()) == [1, 2, 3, 4]
