"""Tests for the RDF data model: triples, parsing, graphs, patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.model import (
    JOIN_PATTERNS,
    RDFGraph,
    SIMPLE_PATTERNS,
    Triple,
    TriplePattern,
    JoinPattern,
    Variable,
    classify_join,
    classify_pattern,
    is_variable,
    parse_ntriples_text,
    serialize_ntriples,
)
from repro.model.patterns import design_space_size, query_coverage


class TestTriple:
    def test_behaves_like_tuple(self):
        t = Triple("<s>", "<p>", "<o>")
        assert tuple(t) == ("<s>", "<p>", "<o>")
        assert t[0] == "<s>" and t[1] == "<p>" and t[2] == "<o>"
        assert len(t) == 3

    def test_equality_with_triple_and_tuple(self):
        assert Triple("a", "b", "c") == Triple("a", "b", "c")
        assert Triple("a", "b", "c") == ("a", "b", "c")
        assert Triple("a", "b", "c") != Triple("a", "b", "d")

    def test_hashable(self):
        assert len({Triple("a", "b", "c"), Triple("a", "b", "c")}) == 1


class TestVariable:
    def test_name_normalization_strips_question_mark(self):
        assert Variable("?s") == Variable("s")

    def test_repr(self):
        assert repr(Variable("obj")) == "?obj"

    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable("<constant>")

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            Variable("")


class TestParser:
    def test_parse_simple_document(self):
        text = "<a> <p> <b> .\n<a> <q> \"lit\" .\n"
        triples = parse_ntriples_text(text)
        assert triples == [
            Triple("<a>", "<p>", "<b>"),
            Triple("<a>", "<q>", '"lit"'),
        ]

    def test_comments_and_blank_lines_skipped(self):
        text = "# comment\n\n<a> <p> <b> .\n"
        assert len(parse_ntriples_text(text)) == 1

    def test_literal_with_escaped_quote(self):
        text = '<a> <p> "say \\"hi\\"" .\n'
        (t,) = parse_ntriples_text(text)
        assert t.o == '"say \\"hi\\""'

    def test_round_trip(self):
        text = '<a> <p> <b> .\n<c> <d> "x y z" .\n'
        assert serialize_ntriples(parse_ntriples_text(text)) == text

    @pytest.mark.parametrize(
        "bad",
        [
            "<a> <p> .",  # only two terms
            "<a> <p> <b>",  # missing dot
            "<a <p> <b> .",  # unterminated IRI
            '<a> <p> "unterminated .',
            "<a> <p> <b> <c> .",  # stray term before dot
            "junk line",
        ],
    )
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(ParseError):
            parse_ntriples_text(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as err:
            parse_ntriples_text("<a> <p> <b> .\nbroken\n")
        assert err.value.line == 2


class TestRDFGraph:
    @pytest.fixture
    def graph(self):
        return RDFGraph(
            [
                Triple("<e1>", "<type>", "<Text>"),
                Triple("<e2>", "<type>", "<Date>"),
                Triple("<e1>", "<language>", "<fre>"),
                Triple("<e3>", "<records>", "<e1>"),
            ]
        )

    def test_len_and_contains(self, graph):
        assert len(graph) == 4
        assert ("<e1>", "<type>", "<Text>") in graph
        assert ("<e1>", "<type>", "<Date>") not in graph

    def test_duplicates_ignored(self, graph):
        assert graph.add(Triple("<e1>", "<type>", "<Text>")) is False
        assert len(graph) == 4

    def test_match_by_property(self, graph):
        results = list(graph.match(p="<type>"))
        assert len(results) == 2

    def test_match_fully_bound(self, graph):
        assert len(list(graph.match("<e1>", "<type>", "<Text>"))) == 1
        assert len(list(graph.match("<e1>", "<type>", "<Date>"))) == 0

    def test_match_unbound_returns_all(self, graph):
        assert len(list(graph.match())) == 4

    def test_match_treats_variables_as_unbound(self, graph):
        results = list(graph.match(s=Variable("s"), p="<type>"))
        assert len(results) == 2

    def test_solve_single_pattern(self, graph):
        sols = graph.solve([(Variable("s"), "<type>", "<Text>")])
        assert sols == [{"s": "<e1>"}]

    def test_solve_join_on_subject(self, graph):
        sols = graph.solve(
            [
                (Variable("s"), "<type>", "<Text>"),
                (Variable("s"), "<language>", Variable("l")),
            ]
        )
        assert sols == [{"s": "<e1>", "l": "<fre>"}]

    def test_solve_object_subject_join(self, graph):
        sols = graph.solve(
            [
                (Variable("a"), "<records>", Variable("b")),
                (Variable("b"), "<type>", Variable("t")),
            ]
        )
        assert sols == [{"a": "<e3>", "b": "<e1>", "t": "<Text>"}]

    def test_solve_no_solutions(self, graph):
        assert graph.solve([(Variable("s"), "<nope>", Variable("o"))]) == []

    def test_counts(self, graph):
        assert graph.property_counts()["<type>"] == 2
        assert graph.subject_counts()["<e1>"] == 2
        assert graph.object_counts()["<e1>"] == 1


class TestPatterns:
    def test_all_eight_simple_patterns(self):
        assert [name for name, _ in SIMPLE_PATTERNS] == [
            f"p{i}" for i in range(1, 9)
        ]

    @pytest.mark.parametrize(
        "pattern,expected",
        [
            (("s", "p", "o"), "p1"),
            ((Variable("s"), "p", "o"), "p2"),
            (("s", Variable("p"), "o"), "p3"),
            (("s", "p", Variable("o")), "p4"),
            ((Variable("s"), Variable("p"), "o"), "p5"),
            (("s", Variable("p"), Variable("o")), "p6"),
            ((Variable("s"), "p", Variable("o")), "p7"),
            ((Variable("s"), Variable("p"), Variable("o")), "p8"),
        ],
    )
    def test_classification_matches_figure_2(self, pattern, expected):
        assert classify_pattern(pattern) == expected

    def test_join_pattern_classification(self):
        assert JoinPattern("s", "s").classify() == "A"
        assert JoinPattern("o", "o").classify() == "B"
        assert JoinPattern("o", "s").classify() == "C"
        assert JoinPattern("s", "o").classify() == "C"
        assert JoinPattern("p", "p").classify() is None  # strongly typed
        assert JoinPattern("s", "p").classify() is None  # RDF/S level

    def test_join_pattern_names(self):
        assert set(JOIN_PATTERNS) == {"A", "B", "C"}

    def test_classify_join_across_patterns(self):
        patterns = [
            TriplePattern(Variable("x"), "<p>", Variable("y")),
            TriplePattern(Variable("x"), "<q>", Variable("z")),
        ]
        assert classify_join(patterns, "x") == {"A"}

    def test_classify_join_object_object(self):
        patterns = [
            TriplePattern("<a>", Variable("p"), Variable("y")),
            TriplePattern(Variable("s"), Variable("q"), Variable("y")),
        ]
        assert classify_join(patterns, "y") == {"B"}

    def test_query_coverage_q8_shape(self):
        # q8: (s, ?p, ?o) join (?s, ?p2, ?o) on objects -> p6, p8, join B.
        patterns = [
            TriplePattern("<conferences>", Variable("p"), Variable("obj")),
            TriplePattern(Variable("s"), Variable("q"), Variable("obj")),
        ]
        triple_classes, join_classes = query_coverage(patterns)
        assert triple_classes == ["p6", "p8"]
        assert join_classes == ["B"]

    def test_design_space_size(self):
        assert design_space_size() == 2**4 * 6**2

    def test_variables_of_pattern(self):
        p = TriplePattern(Variable("s"), "<p>", Variable("o"))
        assert p.variables() == {"s", "o"}

    def test_invalid_join_component(self):
        with pytest.raises(ValueError):
            JoinPattern("s", "x")


# Property-based: the reference evaluator's solve() agrees with a brute-force
# nested-loop evaluation over random small graphs.
_terms = st.sampled_from(["<a>", "<b>", "<c>", "<d>"])
_triples = st.lists(
    st.tuples(_terms, st.sampled_from(["<p>", "<q>"]), _terms), max_size=25
)


@given(_triples)
def test_property_match_agrees_with_bruteforce(triples):
    g = RDFGraph(Triple(*t) for t in triples)
    distinct = {Triple(*t) for t in triples}
    for s in [None, "<a>"]:
        for p in [None, "<p>"]:
            for o in [None, "<b>"]:
                expected = {
                    t
                    for t in distinct
                    if (s is None or t.s == s)
                    and (p is None or t.p == p)
                    and (o is None or t.o == o)
                }
                assert set(g.match(s, p, o)) == expected


@given(_triples)
def test_property_solve_two_pattern_join(triples):
    """solve() over a subject-subject join equals the nested-loop answer."""
    g = RDFGraph(Triple(*t) for t in triples)
    distinct = {Triple(*t) for t in triples}
    got = g.solve(
        [
            (Variable("s"), "<p>", Variable("x")),
            (Variable("s"), "<q>", Variable("y")),
        ]
    )
    expected = []
    for t1 in distinct:
        for t2 in distinct:
            if t1.p == "<p>" and t2.p == "<q>" and t1.s == t2.s:
                expected.append({"s": t1.s, "x": t1.o, "y": t2.o})
    key = lambda b: sorted(b.items())
    assert sorted(got, key=key) == sorted(expected, key=key)
