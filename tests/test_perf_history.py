"""Tests for the run-history ledger (repro.observe.history)."""

import json

import pytest

from repro.bench.experiments import experiment_table2
from repro.observe.history import (
    HISTORY_SCHEMA_VERSION,
    RunLedger,
    RunRecord,
    collect_counters,
    config_fingerprint,
    default_perf_dir,
    git_sha,
    load_snapshot,
    record_from_profile,
    record_from_results,
    reset_counters,
    strip_meta,
    write_snapshot,
)


@pytest.fixture(scope="module")
def profile():
    from repro.core import RDFStore
    from repro.data import generate_barton

    dataset = generate_barton(
        n_triples=3_000, n_properties=30, n_interesting=20, seed=7
    )
    store = RDFStore.from_triples(
        dataset.triples, engine="column", scheme="vertical"
    )
    return store.profile("q2", mode="cold")


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = config_fingerprint({"triples": 100, "seed": 1})
        b = config_fingerprint({"seed": 1, "triples": 100})
        assert a == b
        assert len(a) == 64

    def test_distinguishes_configurations(self):
        a = config_fingerprint({"triples": 100, "seed": 1})
        b = config_fingerprint({"triples": 100, "seed": 2})
        assert a != b


class TestCounters:
    def test_collect_returns_all_groups(self):
        counters = collect_counters()
        assert sorted(counters) == [
            "artifact_cache", "buffer_pool", "compression",
            "lowering_cache", "parallel", "scheduler",
        ]
        assert "hit_ratio" in counters["buffer_pool"]
        assert "compression_ratio" in counters["compression"]
        assert "steals" in counters["parallel"]

    def test_reset_zeroes_everything(self, profile):
        # The module-scoped profile fixture has run queries, so the global
        # buffer counters are non-zero before the reset.
        reset_counters()
        counters = collect_counters()
        assert counters["buffer_pool"]["page_hits"] == 0
        assert counters["buffer_pool"]["page_misses"] == 0
        assert counters["buffer_pool"]["hit_ratio"] is None
        assert counters["lowering_cache"] == {
            "hits": 0, "misses": 0, "evictions": 0,
        }
        assert counters["scheduler"]["cells"] == 0

    def test_counters_accumulate_during_runs(self, profile):
        # Running the profile fixture charged the buffer pool; a fresh
        # query against a fresh store must bump the global aggregates.
        from repro.core import RDFStore
        from repro.data import generate_barton

        reset_counters()
        dataset = generate_barton(
            n_triples=2_000, n_properties=20, n_interesting=10, seed=3
        )
        store = RDFStore.from_triples(dataset.triples, engine="column")
        store.benchmark_query("q1", mode="cold")
        counters = collect_counters()
        assert counters["buffer_pool"]["page_misses"] > 0
        assert counters["lowering_cache"]["misses"] > 0


class TestRunRecord:
    def test_round_trip(self):
        record = RunRecord(
            name="x", simulated={"a": 1}, parameters={"p": 2},
            wall_ms=12.5, counters={"buffer_pool": {}}, notes=["n"],
        )
        back = RunRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert back == record
        assert back.schema_version == HISTORY_SCHEMA_VERSION

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            RunRecord.from_dict({"name": "x"})
        with pytest.raises(ValueError):
            RunRecord.from_dict({"simulated": {}})

    def test_from_dict_ignores_unknown_fields(self):
        record = RunRecord.from_dict(
            {"name": "x", "simulated": {}, "future_field": True}
        )
        assert record.name == "x"


class TestStripMeta:
    def test_strips_nested_meta(self):
        document = [
            {"name": "a", "meta": {"wall_ms": 3},
             "inner": {"meta": 1, "keep": 2}},
        ]
        assert strip_meta(document) == [
            {"name": "a", "inner": {"keep": 2}},
        ]


class TestRecordBuilders:
    def test_record_from_results(self):
        results = [experiment_table2()]
        record = record_from_results(
            "table2", results, parameters={"triples": 0},
        )
        assert record.kind == "bench"
        assert record.name == "table2"
        assert record.config_fingerprint == config_fingerprint(
            {"triples": 0}
        )
        # Simulated section is meta-free and covers every result.
        assert len(record.simulated) == 1
        assert "meta" not in json.dumps(record.simulated)
        assert record.recorded_at  # ISO timestamp present

    def test_record_from_profile(self, profile):
        record = record_from_profile("profile_q2", profile)
        assert record.kind == "profile"
        assert record.parameters["query"] == "q2"
        assert record.parameters["engine"] == "column-store"
        totals = record.simulated["totals"]
        assert totals["real_seconds"] == pytest.approx(
            profile.timing.real_seconds
        )
        # Span self-times decompose the clock charge exactly.
        self_sum = sum(
            s["self_cpu_seconds"] + s["self_io_seconds"]
            for s in record.simulated["spans"]
        )
        assert self_sum == pytest.approx(profile.timing.real_seconds)

    def test_git_sha_in_repo(self):
        sha = git_sha()
        if sha is not None:
            assert len(sha) == 40

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(cwd=tmp_path) is None


class TestLedger:
    def _record(self, name="run", wall=10.0):
        return RunRecord(name=name, simulated={"v": 1}, wall_ms=wall)

    def test_append_and_read_back(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self._record("a"))
        ledger.append(self._record("b"))
        ledger.append(self._record("a", wall=20.0))
        assert [r.name for r in ledger.records()] == ["a", "b", "a"]
        assert [r.wall_ms for r in ledger.records(name="a")] == [10.0, 20.0]
        assert ledger.latest(name="a").wall_ms == 20.0
        assert ledger.latest(name="missing") is None

    def test_limit_keeps_most_recent(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for wall in (1.0, 2.0, 3.0):
            ledger.append(self._record(wall=wall))
        assert [r.wall_ms for r in ledger.records(limit=2)] == [2.0, 3.0]

    def test_empty_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "nowhere")
        assert ledger.records() == []
        assert ledger.latest() is None

    def test_corrupt_lines_are_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self._record("good"))
        with open(ledger.path, "a") as handle:
            handle.write("{not json\n")
            handle.write('{"name": "no-simulated"}\n')
        ledger.append(self._record("also-good"))
        assert [r.name for r in ledger.records()] == ["good", "also-good"]

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path / "perf"))
        assert default_perf_dir() == tmp_path / "perf"
        ledger = RunLedger()
        ledger.append(self._record())
        assert (tmp_path / "perf" / "history.jsonl").exists()


class TestSnapshots:
    def test_write_and_load(self, tmp_path):
        record = RunRecord(
            name="fig6_smoke", simulated={"x": [1, 2]}, wall_ms=5.0,
        )
        path = write_snapshot(record, tmp_path)
        assert path.name == "BENCH_fig6_smoke.json"
        assert load_snapshot(path) == record

    def test_snapshot_is_canonical_json(self, tmp_path):
        record = RunRecord(name="n", simulated={"b": 1, "a": 2})
        path = write_snapshot(record, tmp_path)
        text = path.read_text()
        assert text == json.dumps(
            record.to_dict(), indent=2, sort_keys=True
        ) + "\n"
