"""Shape tests for the experiment drivers: every table and figure driver
runs on a small dataset, and the paper's qualitative findings hold."""

import pytest

from repro.bench import experiments as E
from repro.bench.metrics import INITIAL_QUERIES
from repro.bench.paper_reference import (
    PAPER_TABLE2,
    PAPER_TABLE4,
    PAPER_TABLE5,
)
from repro.data import generate_barton

#: Small but structurally faithful dataset for driver tests.  The full 222
#: properties matter: the paper's triple-vs-vertical crossovers only happen
#: once the property vocabulary is large.
SCALE = dict(n_triples=40_000, n_properties=222, seed=23)


@pytest.fixture(scope="module")
def dataset():
    return generate_barton(**SCALE)


@pytest.fixture(scope="module")
def table6(dataset):
    return E.experiment_table6(dataset)


@pytest.fixture(scope="module")
def table7(dataset):
    return E.experiment_table7(dataset)


def cell(table, system, scheme, clustering, clock):
    cells, summary = table.measured[(system, scheme, clustering)]
    return (
        {q: getattr(c, clock) for q, c in cells.items()},
        {k: v for k, v in summary.items()},
    )


class TestStaticTables:
    def test_table1_rows(self, dataset):
        result = E.experiment_table1(dataset)
        rows = dict((label, value) for label, value in result.rows)
        assert rows["total triples"] == len(dataset.triples)
        assert rows["distinct properties"] == 222
        assert "total triples" in result.render()

    def test_figure1_property_curve_saturates_early(self, dataset):
        result = E.experiment_figure1(dataset)
        properties = result.series["properties"]
        subjects = result.series["subjects"]
        # At the 13% sample point, properties cover ~99% of triples.
        at_13 = properties[result.x_values.index(13)]
        assert at_13 > 95
        assert subjects[result.x_values.index(13)] < at_13

    def test_table2_matches_paper(self):
        result = E.experiment_table2()
        got = {
            row[0]: (row[1].split(","), row[2].split(",") if row[2] != "-" else [])
            for row in result.rows
        }
        assert got == PAPER_TABLE2

    def test_table3_lists_three_machines(self):
        result = E.experiment_table3()
        assert result.headers[1:] == ["A", "B", "C"]
        assert any("I/O read" in row[0] for row in result.rows)


class TestTable4Shapes:
    @pytest.fixture(scope="class")
    def table4(self, dataset):
        return E.experiment_table4(dataset)

    def rows_by_label(self, table4):
        return {row[0]: row[1:] for row in table4.rows}

    def test_has_all_runs(self, table4):
        rows = self.rows_by_label(table4)
        assert set(rows) == {
            f"{m} {mode} {clock}"
            for m in ("A", "B")
            for mode in ("cold", "hot")
            for clock in ("real", "user")
        }

    def test_cold_real_exceeds_hot_real(self, table4):
        rows = self.rows_by_label(table4)
        for machine in ("A", "B"):
            cold_g = rows[f"{machine} cold real"][-1]
            hot_g = rows[f"{machine} hot real"][-1]
            assert cold_g > hot_g

    def test_user_below_real(self, table4):
        rows = self.rows_by_label(table4)
        for machine in ("A", "B"):
            for mode in ("cold", "hot"):
                real = rows[f"{machine} {mode} real"]
                user = rows[f"{machine} {mode} user"]
                assert all(u <= r + 1e-9 for u, r in zip(user, real))

    def test_fast_disk_barely_helps_cold_runs(self, table4):
        """Machine B's ~3.7x bandwidth gives far less than 3.7x cold
        speedup (the paper's headline Section 3 observation)."""
        rows = self.rows_by_label(table4)
        speedup = rows["A cold real"][-1] / rows["B cold real"][-1]
        assert speedup < 1.8

    def test_user_times_similar_across_machines(self, table4):
        rows = self.rows_by_label(table4)
        a = rows["A cold user"][-1]
        b = rows["B cold user"][-1]
        assert b >= a  # slightly higher on B
        assert b < a * 1.2

    def test_same_magnitude_as_paper(self, table4):
        """Scaled G within an order of magnitude of the paper's."""
        rows = self.rows_by_label(table4)
        for key, paper in PAPER_TABLE4.items():
            machine, mode, clock = key
            if machine == "[1]":
                continue
            ours = rows[f"{machine} {mode} {clock}"][-1]
            assert paper[-1] / 10 < ours < paper[-1] * 10


class TestTable5Shapes:
    @pytest.fixture(scope="class")
    def table5(self, dataset):
        return E.experiment_table5(dataset)

    def test_covers_seven_queries(self, table5):
        assert [row[0] for row in table5.rows] == list(INITIAL_QUERIES)

    def test_q1_reads_least_of_scan_queries(self, table5):
        reads = {row[0]: row[1] for row in table5.rows}
        assert reads["q1"] < reads["q2"]
        assert reads["q1"] < reads["q3"]

    def test_magnitudes_within_10x_of_paper(self, table5):
        reads = {row[0]: row[1] for row in table5.rows}
        for query, (paper_mb, _) in PAPER_TABLE5.items():
            assert paper_mb / 10 < reads[query] < paper_mb * 10

    def test_row_counts_positive(self, table5):
        assert all(row[2] > 0 for row in table5.rows)


class TestFigure5:
    def test_histories_monotone_and_bounded(self, dataset):
        results = E.experiment_figure5(dataset)
        assert len(results) == 2
        for result in results:
            for series in result.series.values():
                assert series == sorted(series)
                assert series[-1] > 0


class TestTable67Shapes:
    """The paper's headline findings, asserted on the measured grid."""

    def test_pso_beats_spo_on_the_row_store(self, table6):
        pso, _ = cell(table6, "DBX", "triple", "PSO", "real")
        spo, _ = cell(table6, "DBX", "triple", "SPO", "real")
        for q in ("q1", "q2", "q3", "q5", "q6", "q7"):
            assert pso[q] < spo[q], q
        assert pso["q1"] < spo["q1"] / 2  # q1 improves by a large factor

    def test_row_store_black_swan(self, table6):
        """Once PSO clustering is chosen, the triple-store beats the
        vertically-partitioned approach on the row store (G*)."""
        _, pso = cell(table6, "DBX", "triple", "PSO", "real")
        _, vert = cell(table6, "DBX", "vert", "SO", "real")
        assert pso["Gstar_real"] < vert["Gstar_real"]

    def test_vertical_wins_restricted_queries_on_row_store(self, table6):
        pso, _ = cell(table6, "DBX", "triple", "PSO", "real")
        vert, _ = cell(table6, "DBX", "vert", "SO", "real")
        for q in ("q1", "q5", "q7"):
            assert vert[q] < pso[q], q

    def test_triple_store_wins_star_queries_on_row_store(self, table6):
        pso, _ = cell(table6, "DBX", "triple", "PSO", "real")
        vert, _ = cell(table6, "DBX", "vert", "SO", "real")
        for q in ("q2*", "q3*", "q4*", "q6*", "q8"):
            assert pso[q] < vert[q], q

    def test_column_store_beats_row_store(self, table6):
        _, monet = cell(table6, "MonetDB", "vert", "SO", "real")
        _, dbx = cell(table6, "DBX", "vert", "SO", "real")
        assert monet["G_real"] < dbx["G_real"] / 3

    def test_vertical_wins_g_on_column_store(self, table6):
        _, vert = cell(table6, "MonetDB", "vert", "SO", "real")
        _, pso = cell(table6, "MonetDB", "triple", "PSO", "real")
        assert vert["G_real"] < pso["G_real"]

    def test_column_store_black_swans(self, table6):
        """q2*, q3*, q6*, q8: triple-store sorted on PSO beats the
        vertically-partitioned scheme on the column store too."""
        pso, _ = cell(table6, "MonetDB", "triple", "PSO", "real")
        vert, _ = cell(table6, "MonetDB", "vert", "SO", "real")
        for q in ("q2*", "q3*", "q6*", "q8"):
            assert pso[q] < vert[q], q

    def test_gstar_ratio_larger_for_vertical(self, table6):
        for system in ("DBX", "MonetDB"):
            _, vert = cell(table6, system, "vert", "SO", "real")
            _, pso = cell(table6, system, "triple", "PSO", "real")
            assert vert["ratio_real"] > pso["ratio_real"]

    def test_cstore_missing_cells(self, table6):
        cells, summary = table6.measured[("C-Store", "vert", "SO")]
        assert set(cells) == set(INITIAL_QUERIES)
        assert summary["Gstar_real"] is None

    def test_hot_runs_faster_than_cold(self, table6, table7):
        for config in table6.measured:
            cold_cells, _ = table6.measured[config]
            hot_cells, _ = table7.measured[config]
            for q in cold_cells:
                assert hot_cells[q].real <= cold_cells[q].real + 1e-9, (
                    config, q,
                )

    def test_hot_user_close_to_real(self, table7):
        """Hot runs are CPU-bound on the SQL engines."""
        for system in ("DBX", "MonetDB"):
            cells, _ = cell_pair = table7.measured[(system, "vert", "SO")]
            for q, c in cells.items():
                assert c.user == pytest.approx(c.real, rel=0.05), (system, q)


class TestFigure6Shapes:
    @pytest.fixture(scope="class")
    def figure6(self, dataset):
        return E.experiment_figure6(
            dataset, property_counts=(28, 84, 150, 222)
        )

    def test_vertical_time_increases(self, figure6):
        for result in figure6:
            vert = result.series["vert"]
            assert vert[-1] > vert[0]

    def test_triple_non_increasing_tail(self, figure6):
        """The triple-store line is flat and drops at the full property
        count (no final filter join needed)."""
        for result in figure6:
            triple = result.series["triple"]
            assert triple[-1] <= triple[0] * 1.1

    def test_triple_eventually_wins(self, figure6):
        crossed = 0
        for result in figure6:
            if result.series["triple"][-1] < result.series["vert"][-1]:
                crossed += 1
        assert crossed >= 3  # paper: all but q4


class TestFigure7Shapes:
    @pytest.fixture(scope="class")
    def figure7(self, dataset):
        return E.experiment_figure7(
            dataset, property_counts=(222, 500, 800)
        )

    def test_vertical_degrades_with_property_count(self, figure7):
        for q in ("q2*", "q3*", "q4*", "q6*"):
            series = figure7.series[f"{q} vert"]
            assert series[-1] > series[0] * 1.5

    def test_triple_stays_flat(self, figure7):
        for q in ("q2*", "q3*", "q4*", "q6*"):
            series = figure7.series[f"{q} triple"]
            assert series[-1] <= series[0] * 1.2

    def test_triple_wins_at_high_property_counts(self, figure7):
        for q in ("q2*", "q3*", "q4*", "q6*"):
            assert (
                figure7.series[f"{q} triple"][-1]
                < figure7.series[f"{q} vert"][-1]
            )
