"""Columnar relation values exchanged between engines and clients.

A :class:`Relation` is the materialized result (or intermediate) of a query:
named, equal-length numpy arrays.  Most columns hold dictionary oids (the
engines work on dictionary-encoded integers throughout, as the paper's
appendix notes); aggregate outputs such as ``count(*)`` hold plain integers.
The ``oid_columns`` set records which is which so results can be decoded
back to strings.
"""

import numpy as np

from repro.errors import EngineError


class Relation:
    """An immutable bag of rows in columnar form."""

    __slots__ = ("columns", "n_rows", "oid_columns")

    def __init__(self, columns, oid_columns=None):
        if not columns:
            raise EngineError("a relation needs at least one column")
        self.columns = {
            name: np.asarray(values, dtype=np.int64)
            for name, values in columns.items()
        }
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) != 1:
            raise EngineError(f"ragged relation: column lengths {lengths}")
        self.n_rows = lengths.pop()
        if oid_columns is None:
            oid_columns = frozenset(self.columns)
        self.oid_columns = frozenset(oid_columns) & frozenset(self.columns)

    def __len__(self):
        return self.n_rows

    def __repr__(self):
        return f"Relation({list(self.columns)}, n_rows={self.n_rows})"

    def column_names(self):
        return list(self.columns)

    def column(self, name):
        try:
            return self.columns[name]
        except KeyError:
            raise EngineError(
                f"no column {name!r}; have {list(self.columns)}"
            ) from None

    def to_tuples(self, order=None):
        """Rows as a list of tuples (column order = *order* or insertion)."""
        names = list(order) if order else list(self.columns)
        arrays = [self.column(n) for n in names]
        return list(zip(*(a.tolist() for a in arrays))) if self.n_rows else []

    def decoded_tuples(self, dictionary, order=None):
        """Rows with oid columns decoded back to strings."""
        names = list(order) if order else list(self.columns)
        decoded_columns = []
        for name in names:
            values = self.column(name).tolist()
            if name in self.oid_columns:
                decoded_columns.append([dictionary.decode(v) for v in values])
            else:
                decoded_columns.append(values)
        return list(zip(*decoded_columns)) if self.n_rows else []

    def sorted_tuples(self, order=None):
        """Canonical form for result comparison: sorted row tuples."""
        return sorted(self.to_tuples(order))

    @staticmethod
    def empty(names, oid_columns=None):
        """A zero-row relation with the given column names."""
        return Relation(
            {n: np.empty(0, dtype=np.int64) for n in names}, oid_columns
        )

    @staticmethod
    def from_rows(names, rows, oid_columns=None):
        """Build a relation from an iterable of row tuples."""
        rows = list(rows)
        if not rows:
            return Relation.empty(names, oid_columns)
        arrays = list(zip(*rows))
        return Relation(
            {n: np.asarray(a, dtype=np.int64) for n, a in zip(names, arrays)},
            oid_columns,
        )
