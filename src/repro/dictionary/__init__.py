"""String dictionary encoding.

The paper (appendix) notes that "all strings are encoded on a dictionary
structure" so that the benchmark queries operate on integer predicates.  Every
engine in this reproduction shares the same dictionary abstraction: strings
are mapped to dense integer object identifiers (oids) at load time and all
query processing happens on integers; results are decoded back to strings at
the very end.
"""

from repro.dictionary.dictionary import Dictionary, FrozenDictionary

__all__ = ["Dictionary", "FrozenDictionary"]
