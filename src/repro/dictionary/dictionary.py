"""Bidirectional string <-> oid dictionary.

The dictionary assigns dense, monotonically increasing integer oids to
strings in first-seen order.  Dense oids matter: the engines store columns of
oids in numpy integer arrays, and the statistics module sizes the simulated
on-disk footprint from ``len(dictionary)``.

Two flavours are provided:

* :class:`Dictionary` -- mutable, used during data loading.
* :class:`FrozenDictionary` -- immutable snapshot handed to engines, so a
  running query can never accidentally grow the dictionary (lookups of
  unknown strings are reported instead of silently interned).
"""

from repro.errors import DictionaryError


class Dictionary:
    """Mutable bidirectional mapping between strings and dense integer oids.

    >>> d = Dictionary()
    >>> d.encode("<type>")
    0
    >>> d.encode("<Text>")
    1
    >>> d.encode("<type>")          # idempotent
    0
    >>> d.decode(1)
    '<Text>'
    """

    __slots__ = ("_by_string", "_by_oid", "needs_reorganization")

    def __init__(self, strings=()):
        self._by_string = {}
        self._by_oid = []
        # Set by the encoding layer when appended oids broke an
        # order-preserving assignment; maintenance surfaces it so a
        # rebuild can restore the property.
        self.needs_reorganization = False
        for s in strings:
            self.encode(s)

    @classmethod
    def from_interned(cls, strings):
        """Rebuild a dictionary from strings already in oid order.

        Fast path for deserializing cached artifacts: *strings* must be
        unique and listed in oid order (as produced by iterating a
        dictionary); the maps are built with two C-level passes instead of
        per-string encode calls.
        """
        d = cls()
        d._by_oid = list(strings)
        d._by_string = {s: i for i, s in enumerate(d._by_oid)}
        if len(d._by_string) != len(d._by_oid):
            raise DictionaryError("from_interned requires unique strings")
        return d

    def __len__(self):
        return len(self._by_oid)

    def __contains__(self, string):
        return string in self._by_string

    def __iter__(self):
        """Iterate strings in oid order."""
        return iter(self._by_oid)

    def encode(self, string):
        """Return the oid for *string*, interning it if new."""
        if not isinstance(string, str):
            raise DictionaryError(
                f"dictionary keys must be str, got {type(string).__name__}"
            )
        oid = self._by_string.get(string)
        if oid is None:
            oid = len(self._by_oid)
            self._by_string[string] = oid
            self._by_oid.append(string)
        return oid

    def encode_many(self, strings):
        """Encode an iterable of strings, returning a list of oids.

        Fast path for bulk loading: the hot loop touches only local
        variables (no attribute lookups, no per-element method dispatch),
        which makes encoding a whole dataset several times faster than
        calling :meth:`encode` per element.
        """
        by_string = self._by_string
        by_oid = self._by_oid
        get = by_string.get
        append = by_oid.append
        oids = []
        out = oids.append
        for s in strings:
            oid = get(s)
            if oid is None:
                if not isinstance(s, str):
                    raise DictionaryError(
                        f"dictionary keys must be str, got {type(s).__name__}"
                    )
                oid = len(by_oid)
                by_string[s] = oid
                append(s)
            out(oid)
        return oids

    def lookup_many(self, strings):
        """Look up an iterable of strings without interning.

        Raises :class:`DictionaryError` on the first unknown string.
        """
        get = self._by_string.get
        oids = []
        out = oids.append
        for s in strings:
            oid = get(s)
            if oid is None:
                raise DictionaryError(f"string not in dictionary: {s!r}")
            out(oid)
        return oids

    def lookup(self, string):
        """Return the oid for *string* without interning.

        Raises :class:`DictionaryError` when the string is unknown.
        """
        oid = self._by_string.get(string)
        if oid is None:
            raise DictionaryError(f"string not in dictionary: {string!r}")
        return oid

    def lookup_or_none(self, string):
        """Return the oid for *string*, or ``None`` when unknown.

        Query constants that never appear in the data produce empty results
        rather than errors; engines use this entry point for literals coming
        from user queries.
        """
        return self._by_string.get(string)

    def decode(self, oid):
        """Return the string for *oid*."""
        try:
            return self._by_oid[self._index(oid)]
        except IndexError:
            raise DictionaryError(f"oid out of range: {oid}") from None

    def decode_many(self, oids):
        """Decode an iterable of oids, returning a list of strings.

        Fast path mirroring :meth:`encode_many`: direct indexing into the
        oid table with local variables, no per-element method dispatch.
        """
        by_oid = self._by_oid
        n = len(by_oid)
        strings = []
        out = strings.append
        for o in oids:
            index = int(o)
            if not 0 <= index < n:
                raise DictionaryError(f"oid out of range: {o}")
            out(by_oid[index])
        return strings

    def freeze(self):
        """Return an immutable :class:`FrozenDictionary` snapshot."""
        return FrozenDictionary(self)

    def byte_size(self):
        """Approximate in-memory/on-disk footprint of the string heap.

        Used by the simulated disk layer to size the dictionary segment.
        """
        # Per entry: the UTF-8 bytes plus an 8-byte offset-table slot.
        return sum(len(s.encode("utf-8")) + 8 for s in self._by_oid)

    @staticmethod
    def _index(oid):
        index = int(oid)
        if index < 0:
            raise DictionaryError(f"oid out of range: {oid}")
        return index


class FrozenDictionary:
    """Immutable view over a :class:`Dictionary`.

    Engines receive a frozen dictionary so that executing a query can never
    mutate the string heap.  ``encode`` is intentionally absent; use
    :meth:`lookup_or_none` for query constants.
    """

    __slots__ = ("_by_string", "_by_oid", "needs_reorganization")

    def __init__(self, source):
        self._by_string = dict(source._by_string)
        self._by_oid = tuple(source._by_oid)
        self.needs_reorganization = bool(
            getattr(source, "needs_reorganization", False)
        )

    def __len__(self):
        return len(self._by_oid)

    def __contains__(self, string):
        return string in self._by_string

    def __iter__(self):
        return iter(self._by_oid)

    def lookup(self, string):
        oid = self._by_string.get(string)
        if oid is None:
            raise DictionaryError(f"string not in dictionary: {string!r}")
        return oid

    def lookup_or_none(self, string):
        return self._by_string.get(string)

    def lookup_many(self, strings):
        get = self._by_string.get
        oids = []
        out = oids.append
        for s in strings:
            oid = get(s)
            if oid is None:
                raise DictionaryError(f"string not in dictionary: {s!r}")
            out(oid)
        return oids

    def decode(self, oid):
        try:
            return self._by_oid[Dictionary._index(oid)]
        except IndexError:
            raise DictionaryError(f"oid out of range: {oid}") from None

    def decode_many(self, oids):
        by_oid = self._by_oid
        n = len(by_oid)
        strings = []
        out = strings.append
        for o in oids:
            index = int(o)
            if not 0 <= index < n:
                raise DictionaryError(f"oid out of range: {o}")
            out(by_oid[index])
        return strings

    def byte_size(self):
        return sum(len(s.encode("utf-8")) + 8 for s in self._by_oid)
