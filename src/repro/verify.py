"""Cross-implementation verification (the repeatability spirit of the paper).

The paper is an Experiments & Analysis contribution: its value rests on
*independent implementations agreeing*.  This module packages that check as
a library/CLI feature: run every benchmark query on every engine x scheme
combination and on the naive reference evaluator, and report whether all
answers agree.

::

    python -m repro verify --triples 20000
"""

from dataclasses import dataclass, field

from repro.analysis import lint_physical_plan
from repro.colstore import ColumnStoreEngine
from repro.cstore import CSTORE_QUERIES, CStoreEngine
from repro.exec import execute_plan
from repro.observe.log import get_logger
from repro.queries import ALL_QUERY_NAMES, build_query, reference_answer
from repro.rowstore import RowStoreEngine
from repro.storage import (
    build_property_table_store,
    build_triple_store,
    build_vertical_store,
)

log = get_logger("verify")


@dataclass
class VerificationResult:
    """Outcome of one verification sweep."""

    configurations: list
    queries: list
    mismatches: list = field(default_factory=list)  # (config, query, detail)
    checks: int = 0
    # static-analysis findings: (config, query, Diagnostic)
    diagnostics: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.mismatches

    @property
    def lint_clean(self):
        """True when no plan in the sweep drew a warning+ diagnostic."""
        from repro.analysis import WARNING, worst

        return not worst(
            [d for _, _, d in self.diagnostics], at_least=WARNING
        )

    def render(self):
        lines = [
            f"verified {self.checks} (configuration, query) cells over "
            f"{len(self.configurations)} configurations x "
            f"{len(self.queries)} queries"
        ]
        if self.ok:
            lines.append("all implementations agree with the reference "
                         "evaluator")
        else:
            lines.append(f"{len(self.mismatches)} MISMATCHES:")
            for config, query, detail in self.mismatches:
                lines.append(f"  {config} {query}: {detail}")
        from repro.analysis import WARNING, worst

        flagged = worst(
            [d for _, _, d in self.diagnostics], at_least=WARNING
        )
        if flagged:
            lines.append(f"{len(flagged)} plans drew lint warnings:")
            for config, query, d in self.diagnostics:
                if d in flagged:
                    lines.append(
                        f"  {config} {query}: [{d.severity}] {d.rule} "
                        f"at {d.path}: {d.message}"
                    )
        else:
            lines.append(
                "all plans lint clean "
                f"({len(self.diagnostics)} informational notes)"
            )
        return "\n".join(lines)


#: (label, engine factory, scheme builder) for the SQL-engine combinations.
_CONFIGURATIONS = [
    ("column/triple-PSO", ColumnStoreEngine,
     lambda e, d: build_triple_store(
         e, d.triples, d.interesting_properties, clustering="PSO")),
    ("column/triple-SPO", ColumnStoreEngine,
     lambda e, d: build_triple_store(
         e, d.triples, d.interesting_properties, clustering="SPO")),
    ("column/vertical", ColumnStoreEngine,
     lambda e, d: build_vertical_store(
         e, d.triples, d.interesting_properties)),
    ("column/property-table", ColumnStoreEngine,
     lambda e, d: build_property_table_store(
         e, d.triples, d.interesting_properties)),
    ("row/triple-PSO", RowStoreEngine,
     lambda e, d: build_triple_store(
         e, d.triples, d.interesting_properties, clustering="PSO")),
    ("row/vertical", RowStoreEngine,
     lambda e, d: build_vertical_store(
         e, d.triples, d.interesting_properties)),
]


def verify_dataset(dataset, queries=ALL_QUERY_NAMES, include_cstore=True):
    """Run the verification sweep; returns a :class:`VerificationResult`."""
    graph = dataset.graph()
    expected = {
        q: reference_answer(graph, q, dataset.interesting_properties)
        for q in queries
    }

    result = VerificationResult(
        configurations=[label for label, _, _ in _CONFIGURATIONS],
        queries=list(queries),
    )

    for label, engine_cls, builder in _CONFIGURATIONS:
        log.debug("building %s", label)
        engine = engine_cls()
        catalog = builder(engine, dataset)
        for query in queries:
            log.debug("checking %s %s", label, query)
            plan = build_query(catalog, query)
            # Lint the lowered physical tree: the physical rules run on
            # top of every logical rule (same PlanFacts), so this also
            # covers what lint_plan reported before the unified layer.
            for diagnostic in lint_physical_plan(engine.lower(plan)):
                result.diagnostics.append((label, query, diagnostic))
            relation = execute_plan(engine, plan)
            got = sorted(
                relation.decoded_tuples(
                    catalog.dictionary, order=plan.output_columns()
                )
            )
            result.checks += 1
            if got != expected[query]:
                log.debug("MISMATCH %s %s", label, query)
                result.mismatches.append(
                    (label, query,
                     f"{len(got)} rows vs reference {len(expected[query])}")
                )

    if include_cstore:
        result.configurations.append("c-store/vertical")
        engine = CStoreEngine().load_vertical(
            dataset.triples, dataset.interesting_properties
        )
        for query in queries:
            if query not in CSTORE_QUERIES:
                continue
            relation = engine.execute(query)
            got = sorted(relation.decoded_tuples(engine.dictionary))
            result.checks += 1
            if got != expected[query]:
                result.mismatches.append(
                    ("c-store/vertical", query,
                     f"{len(got)} rows vs reference {len(expected[query])}")
                )
    return result
