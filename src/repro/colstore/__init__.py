"""MonetDB-like column-store engine.

A from-scratch column-at-a-time engine in the style the paper uses for its
MonetDB/SQL experiments:

* tables are collections of equal-length integer columns (BATs), each stored
  in its own disk segment — a query touches (and therefore reads) only the
  columns it uses,
* a table can be kept sorted on a column list; equality selections on the
  leading sort column become binary searches that read only the qualifying
  slice (how the PSO-sorted triples table and the SO-sorted property tables
  get their locality),
* operators are vectorized numpy primitives with a small per-value CPU cost,
  plus a per-operator plan overhead (MonetDB still parses/optimizes SQL —
  the term that grows with the hundreds of unions in full-scale
  vertically-partitioned queries).

MonetDB/SQL "does not include user defined indices" (paper, Section 4.1):
the engine exposes *sort order only*, no B+trees.
"""

from repro.colstore.engine import ColumnStoreEngine

__all__ = ["ColumnStoreEngine"]
