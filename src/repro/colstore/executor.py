"""Compatibility shim for the legacy column executor entry points.

The column-at-a-time interpretation loop that used to live here moved
into the unified execution layer: the operator bodies are registered in
:mod:`repro.colstore.operators` and driven by
:class:`repro.exec.runtime.Runtime`.  ``ColumnExecutor`` is now an alias
of the shared runtime (same ``execute(plan)`` surface, constructed with
the engine), kept so existing imports and ``engine._executor`` users keep
working.
"""

from repro.colstore.operators import VALUE_BYTES
from repro.exec.runtime import Intermediate as _Intermediate
from repro.exec.runtime import Runtime as ColumnExecutor

__all__ = ["ColumnExecutor", "VALUE_BYTES", "_Intermediate"]
