"""Column-at-a-time physical operators (vector paradigm).

The column store's operator set for the unified execution layer
(:mod:`repro.exec`).  Physical work is vectorized numpy; every operator
charges the query clock its cost-model CPU price, and every base-table
access goes through the buffer pool so I/O is accounted per column and per
byte range.

The operators understand two locality mechanisms that drive the paper's
results:

* **Sorted-prefix selection** — equality predicates on the leading sort
  columns of a table become binary searches; only the qualifying slice of
  the remaining columns is read (why a PSO-sorted triples table reads a
  property's range instead of the whole table, and why the SO-sorted
  vertically-partitioned tables are cheap).
* **Positional fetches** — selections that do not follow the sort order
  fetch matching rows by page, so a scattered 25% selectivity ends up
  touching every page (why SPO clustering is slow for property-bound
  queries).

Registration order is lowering priority: the fused ``scan+select`` access
path is matched before the generic ``filter``/``scan`` pair, mirroring the
legacy executor's dispatch.
"""

import math
import numpy as np

from repro.colstore import vectorops as V
from repro.exec.common import (
    MISSING_VALUE,
    ascending_prefix,
    extend_fill_value,
    sort_cost,
)
from repro.exec.morsel import effective_dop, split_morsels
from repro.exec.registry import EngineOperatorSet, Lowered, match_type
from repro.exec.runtime import Intermediate
from repro.observe.trace import wall_now
from repro.plan import logical as L
from repro.plan.predicates import is_column_comparison
from repro.relation import Relation
from repro.storage.compress import note_runs_skipped, note_scan

VALUE_BYTES = 8

COLUMN_OPS = EngineOperatorSet("column-store", paradigm="vector")


# ---------------------------------------------------------------------------
# base-table access helpers
# ---------------------------------------------------------------------------

def _base_column(scan, qualified):
    if scan.alias and qualified.startswith(scan.alias + "."):
        return qualified[len(scan.alias) + 1 :]
    return qualified


def _binary_search(rt, table, column, value, lo, hi):
    """Range of *value* in the sorted column; charges probe I/O + CPU."""
    if lo >= hi:
        return lo, lo
    array = table.array(column)
    if value is None:
        return lo, lo
    rt.clock.charge_cpu(
        rt.costs.select_tuple * (2 * math.log2(max(hi - lo, 2)))
    )
    segment = table.segment(column)
    encoding = table.physical_encoding(column)
    if encoding is not None:
        rt.pool.read_pages(
            segment, _probe_pages_compressed(segment, encoding, lo, hi)
        )
    else:
        rt.pool.read_pages(segment, _probe_pages(segment, lo, hi))
    new_lo = int(np.searchsorted(array[lo:hi], value, side="left")) + lo
    new_hi = int(np.searchsorted(array[lo:hi], value, side="right")) + lo
    return new_lo, new_hi


def _probe_pages(segment, lo, hi):
    """Deterministic bisection probe pages within the row range."""
    pages = set()
    a, b = lo, hi
    for _ in range(64):
        if a >= b:
            break
        mid = (a + b) // 2
        pages.add(mid * VALUE_BYTES // segment.page_size)
        b = mid  # descend left; the exact path doesn't matter for cost
        if b - a <= segment.page_size // VALUE_BYTES:
            break
    return sorted(pages)


def _probe_pages_compressed(segment, encoding, lo, hi):
    """Bisection probe pages mapped through the compressed byte layout."""
    pages = set()
    a, b = lo, hi
    for _ in range(64):
        if a >= b:
            break
        mid = (a + b) // 2
        pages.add(encoding.probe_byte(mid) // segment.page_size)
        b = mid  # descend left; the exact path doesn't matter for cost
        if b - a <= segment.page_size // VALUE_BYTES:
            break
    return sorted(pages)


def _read_compressed(rt, segment, encoding, lo, hi):
    """Read the compressed byte ranges covering rows ``[lo, hi)``."""
    nbytes = 0
    for offset, length in encoding.byte_ranges(lo, hi):
        rt.pool.read(segment, offset, length)
        nbytes += length
    _note_compressed_read(rt, segment, nbytes, (hi - lo) * VALUE_BYTES)


def _note_compressed_read(rt, segment, nbytes, logical_nbytes):
    note_scan(nbytes, logical_nbytes)
    observe = rt.engine.observe
    if not observe.enabled:
        return
    metrics = observe.metrics
    metrics.counter(
        "compress.bytes_scanned", segment=segment.name
    ).inc(int(nbytes))
    metrics.counter(
        "compress.logical_bytes_scanned", segment=segment.name
    ).inc(int(logical_nbytes))


def _note_runs_skipped(rt, segment, n):
    if n <= 0:
        return
    note_runs_skipped(n)
    observe = rt.engine.observe
    if observe.enabled:
        observe.metrics.counter(
            "compress.runs_skipped", segment=segment.name
        ).inc(int(n))


def _fetch_cost(rt, table, column, lo, hi, positions):
    """Charge exactly the I/O a :func:`_fetch` of the same rows would.

    Split out so the morsel coordinator can replay the serial charge
    sequence over worker-produced positions: buffer-pool request counts
    depend on global access order (sequential coalescing, run chunking,
    the scattered-read penalty), so cost accounting must stay a single
    serial stream even when the data work ran on many lanes.
    """
    segment = table.segment(column)
    encoding = table.physical_encoding(column)
    if positions is None:
        if encoding is not None:
            _read_compressed(rt, segment, encoding, lo, hi)
        else:
            rt.pool.read(segment, lo * VALUE_BYTES, (hi - lo) * VALUE_BYTES)
        return
    if len(positions) == 0:
        return
    if encoding is not None:
        pages = encoding.pages_for_rows(positions, segment.page_size)
        rt.pool.read_pages(segment, pages, scattered=True)
        _note_compressed_read(
            rt, segment, len(pages) * segment.page_size,
            len(positions) * VALUE_BYTES,
        )
    else:
        pages = np.unique(positions * VALUE_BYTES // segment.page_size)
        rt.pool.read_pages(segment, pages, scattered=True)


def _fetch(rt, table, column, lo, hi, positions):
    """Read column values for the candidate rows, charging I/O."""
    _fetch_cost(rt, table, column, lo, hi, positions)
    array = table.array(column)
    if positions is None:
        return array[lo:hi]
    if len(positions) == 0:
        return np.empty(0, dtype=np.int64)
    return array[positions]


def _scan_sortedness(scan, table, positions):
    # A dense range of a sorted table stays sorted; positional filtering
    # preserves order too (masks keep row order).
    return tuple(scan.qualified(c) for c in table.sort_order)


def _needed_base_columns(scan, needed):
    """Base column names for the needed outputs, in scan output order."""
    base_needed = []
    for col in scan.output_columns():
        if col in needed:
            base_needed.append(_base_column(scan, col))
    return base_needed


def _group_predicates(scan, predicates):
    """Predicates keyed by base column, preserving predicate order."""
    by_base = {}
    for pred in predicates:
        by_base.setdefault(_base_column(scan, pred.column), []).append(pred)
    return by_base


def _sorted_prefix(rt, table, by_base):
    """Binary-search the equality predicates that follow the sort order;
    returns the narrowed ``(lo, hi)`` range and the consumed predicate
    ids.  Charges probe I/O + CPU as it descends."""
    lo, hi = 0, table.n_rows
    consumed = set()
    for sort_col in table.sort_order:
        preds = by_base.get(sort_col, [])
        eq = next((p for p in preds if p.is_equality()), None)
        if eq is None:
            break
        lo, hi = _binary_search(rt, table, sort_col, eq.value, lo, hi)
        consumed.add(id(eq))
        if lo >= hi:
            break
    return lo, hi, consumed


def _scan_select(rt, scan, predicates, needed):
    """Scan with fused selection: binary-searchable sorted prefix, then
    column-at-a-time residual predicates over the candidates."""
    table = rt.engine.table(scan.table)
    base_needed = _needed_base_columns(scan, needed)
    by_base = _group_predicates(scan, predicates)
    lo, hi, consumed = _sorted_prefix(rt, table, by_base)
    return _scan_select_body(
        rt, scan, table, by_base, consumed, base_needed, lo, hi
    )


def _scan_select_body(rt, scan, table, by_base, consumed, base_needed,
                      lo, hi):
    """Residual predicates + needed-column gathers over ``[lo, hi)`` —
    the serial tail shared by the morsel dispatcher's fallback path."""
    positions = None  # None means the dense range [lo, hi)
    count = hi - lo
    # Remaining predicates: evaluate column-at-a-time over candidates.
    # On a dense range whose column carries a physical RLE codec, the
    # predicate runs once per run instead of once per row — the mask is
    # identical by the run-length identity (every row of a run shares the
    # run's value), only the CPU charge shrinks.
    for base_col, preds in by_base.items():
        for pred in preds:
            if id(pred) in consumed or count == 0:
                continue
            encoding = (
                table.physical_encoding(base_col)
                if positions is None else None
            )
            if encoding is not None and encoding.codec == "rle":
                segment = table.segment(base_col)
                run_values, run_counts = encoding.runs_overlapping(lo, hi)
                _read_compressed(rt, segment, encoding, lo, hi)
                n_runs = len(run_values)
                rt.clock.charge_cpu(rt.costs.select_tuple * max(n_runs, 1))
                _note_runs_skipped(rt, segment, count - n_runs)
                mask = np.repeat(pred.mask(run_values), run_counts)
            else:
                values = _fetch(rt, table, base_col, lo, hi, positions)
                rt.clock.charge_cpu(rt.costs.select_tuple * max(count, 1))
                mask = pred.mask(values)
            if positions is None:
                positions = lo + np.nonzero(mask)[0]
            else:
                positions = positions[mask]
            count = len(positions)

    columns = {}
    for base_col in base_needed:
        if count == 0:
            columns[scan.qualified(base_col)] = np.empty(0, dtype=np.int64)
            continue
        values = _fetch(rt, table, base_col, lo, hi, positions)
        rt.clock.charge_cpu(rt.costs.scan_tuple * count)
        columns[scan.qualified(base_col)] = values
    return _finish_scan(scan, table, columns, count, positions)


def _finish_scan(scan, table, columns, count, positions):
    if not columns:
        # Parent only needs the row count (e.g. a bare count(*)).
        columns["__rowid__"] = np.arange(count, dtype=np.int64)
    relation = Relation(columns, oid_columns=set(columns) - {"__rowid__"})
    sorted_by = _scan_sortedness(scan, table, positions)
    return Intermediate(relation, sorted_by)


def _apply_cross(rt, intermediate, cross):
    rel = intermediate.relation
    mask = np.ones(rel.n_rows, dtype=bool)
    for pred in cross:
        rt.clock.charge_cpu(rt.costs.select_tuple * max(rel.n_rows, 1))
        mask &= pred.mask(rel.column(pred.left), rel.column(pred.right))
    columns = {n: a[mask] for n, a in rel.columns.items()}
    return Intermediate(
        Relation(columns, rel.oid_columns), intermediate.sorted_by
    )


# ---------------------------------------------------------------------------
# operate-on-compressed kernels
# ---------------------------------------------------------------------------
#
# Registered ahead of the generic access paths (registration order is
# lowering priority) but behind a `guard`: they only apply when the live
# engine's table physically stores the relevant column RLE-encoded, so an
# uncompressed (or logical-mode) engine lowers exactly as before.

def _rle_leading_scan(engine, scan):
    """``(table, leading_sort_column, rle_encoding)`` when *scan*'s table
    physically stores its leading sort column run-length encoded."""
    if not engine.has_table(scan.table):
        return None
    table = engine.table(scan.table)
    if not table.sort_order:
        return None
    lead = table.sort_order[0]
    encoding = table.physical_encoding(lead)
    if encoding is None or encoding.codec != "rle":
        return None
    return table, lead, encoding


def _guard_compressed_group(engine, node):
    if not isinstance(node, L.GroupBy):
        return False
    if node.aggregates or len(node.keys) != 1:
        return False
    scan = node.child
    if not isinstance(scan, L.Scan):
        return False
    info = _rle_leading_scan(engine, scan)
    if info is None:
        return False
    _, lead, _ = info
    return _base_column(scan, node.keys[0]) == lead


def _match_compressed_group(node):
    return Lowered(fused=(node.child,))


@COLUMN_OPS.operator(
    "compressed-group", _match_compressed_group,
    "grouped count(*) straight off the RLE runs of the leading sort "
    "column: group keys are the run values, counts the run lengths",
    guard=_guard_compressed_group,
)
def compressed_group(rt, pnode, needed_above):
    node = pnode.logical
    scan = node.child
    table = rt.engine.table(scan.table)
    lead = table.sort_order[0]
    encoding = table.encoding(lead)
    segment = table.segment(lead)

    def grouped():
        # Maximal runs of the sorted leading column: run values are the
        # distinct keys in ascending order, run lengths their counts —
        # exactly group_count's output, without touching a single row.
        _read_compressed(rt, segment, encoding, 0, table.n_rows)
        n_runs = encoding.n_runs
        rt.clock.charge_cpu(rt.costs.scan_tuple * max(n_runs, 1))
        _note_runs_skipped(rt, segment, table.n_rows - n_runs)
        columns = {
            node.keys[0]: encoding.run_values.copy(),
            node.count_column: encoding.run_lengths.copy(),
        }
        relation = Relation(columns, oid_columns={node.keys[0]})
        return Intermediate(relation, tuple(node.keys))

    result = rt.traced_block(scan, grouped)
    rt.clock.charge_cpu(
        rt.costs.group_tuple * max(result.relation.n_rows, 1)
    )
    return result


def _guard_compressed_join(engine, node):
    if not isinstance(node, L.Join) or len(node.on) != 1:
        return False
    scan = node.right
    if not isinstance(scan, L.Scan):
        return False
    info = _rle_leading_scan(engine, scan)
    if info is None:
        return False
    _, lead, _ = info
    (_, rcol), = node.on
    return _base_column(scan, rcol) == lead


def _match_compressed_join(node):
    return Lowered(children=(node.left,), fused=(node.right,))


@COLUMN_OPS.operator(
    "compressed-join", _match_compressed_join,
    "merge join walking RLE run boundaries of the right scan's sorted "
    "key column; non-key columns fetched positionally for matches only",
    guard=_guard_compressed_join,
)
def compressed_join(rt, pnode, needed):
    node = pnode.logical
    scan = node.right
    table = rt.engine.table(scan.table)
    lead = table.sort_order[0]
    encoding = table.encoding(lead)
    segment = table.segment(lead)
    (lcol, rcol), = node.on

    left_cols = set(node.left.output_columns())
    left_needed = (needed & left_cols) | {lcol}
    left = rt.run_child(pnode.children[0], left_needed)
    lrel = left.relation

    def scan_runs():
        _read_compressed(rt, segment, encoding, 0, table.n_rows)
        rt.clock.charge_cpu(rt.costs.scan_tuple * max(encoding.n_runs, 1))
        _note_runs_skipped(rt, segment, table.n_rows - encoding.n_runs)
        relation = Relation(
            {rcol: encoding.run_values}, oid_columns={rcol}
        )
        return Intermediate(relation, (rcol,))

    rt.traced_block(scan, scan_runs)

    lidx, right_pos = V.join_runs(
        lrel.column(lcol), encoding.run_values,
        encoding.run_starts, encoding.run_lengths,
    )
    n_out = len(lidx)
    rt.clock.charge_cpu(
        rt.costs.merge_step * (lrel.n_rows + encoding.n_runs + n_out)
    )

    columns = {}
    for name, arr in lrel.columns.items():
        if name in needed or name == lcol:
            columns[name] = arr[lidx]
    for qualified in scan.output_columns():
        if qualified not in needed and qualified != rcol:
            continue
        base = _base_column(scan, qualified)
        if base == lead:
            # The key column's bytes were already read as runs; the
            # matched values materialize from the in-memory array.
            values = table.array(base)[right_pos]
        else:
            values = _fetch(rt, table, base, 0, table.n_rows, right_pos)
        rt.clock.charge_cpu(rt.costs.scan_tuple * max(n_out, 1))
        columns[qualified] = values
    scan_outputs = set(scan.output_columns())
    oid = (lrel.oid_columns | scan_outputs) & set(columns)
    # join_runs keeps left order, so left sortedness survives.
    return Intermediate(Relation(columns, oid), left.sorted_by)


# ---------------------------------------------------------------------------
# morsel-driven parallel access paths
# ---------------------------------------------------------------------------
#
# Guarded like the compressed kernels: they bind only when the live engine
# has a ParallelContext installed (``install_parallelism``), so a serial
# engine lowers exactly as before.  Workers perform pure data-plane numpy
# work (predicate masks, position narrowing, column gathers) and NEVER
# touch the clock or buffer pool; the coordinator replays the cost charges
# in the exact serial order over the merged positions, which makes rows
# AND simulated-cost documents bit-identical to serial execution at any
# worker count.  Tables with physical compression are excluded — the RLE
# run-level residual path and compressed byte-range fetches are inherently
# dense-range shaped (logical compression mode stays eligible because
# ``physical_encoding`` returns None there).

def _match_fused_scan(node):
    if isinstance(node, L.Select) and isinstance(node.child, L.Scan):
        return Lowered(fused=(node.child,))
    return None


def _parallel_context(engine):
    getter = getattr(engine, "parallelism", None)
    return getter() if getter is not None else None


def _parallel_table_ok(engine, table_name):
    if not engine.has_table(table_name):
        return False
    table = engine.table(table_name)
    return table.compress is None or table.compress.cost_mode != "physical"


def _guard_parallel_fused(engine, node):
    if _parallel_context(engine) is None:
        return False
    if not (isinstance(node, L.Select) and isinstance(node.child, L.Scan)):
        return False
    return _parallel_table_ok(engine, node.child.table)


def _guard_parallel_scan(engine, node):
    if _parallel_context(engine) is None:
        return False
    return isinstance(node, L.Scan) and _parallel_table_ok(engine, node.table)


def _make_morsel_scan_task(table, residual, base_needed, mlo, mhi):
    """Data-plane work for one morsel ``[mlo, mhi)``: evaluate the
    residual predicates stage by stage and gather the needed columns.
    Returns ``(stage_positions, gathers)`` — masks are row-local, so the
    morsel-index-ordered concatenation of each stage equals the serial
    stage arrays exactly."""

    def task():
        stages = []
        local = None
        for base_col, pred in residual:
            array = table.array(base_col)
            if local is None:
                mask = pred.mask(array[mlo:mhi])
                local = mlo + np.nonzero(mask)[0]
            elif len(local):
                local = local[pred.mask(array[local])]
            stages.append(local)
        gathers = {}
        for base_col in base_needed:
            array = table.array(base_col)
            if local is None:
                gathers[base_col] = array[mlo:mhi]
            else:
                gathers[base_col] = array[local]
        return stages, gathers

    return task


def _morsel_span_attribution(rt, snap, wall0, task_rows, steals):
    """Fold the parallel section's clock delta into per-morsel child
    spans, apportioned by morsel row count (the last morsel takes the
    exact remainder, so the shares telescope back to the delta and the
    span-sum invariant holds to the bit)."""
    observe = rt.engine.observe
    tracer = observe.tracer
    now = rt.clock.profile_snapshot()
    wall = wall_now() - wall0
    delta = [now[i] - snap[i] for i in range(6)]
    total = sum(task_rows)
    remaining = list(delta)
    wall_remaining = wall
    last = len(task_rows) - 1
    for index, rows in enumerate(task_rows):
        if index == last:
            share, wall_share = remaining, wall_remaining
        else:
            frac = (rows / total) if total else 0.0
            share = [delta[i] * frac for i in range(6)]
            wall_share = wall * frac
            remaining = [remaining[i] - share[i] for i in range(6)]
            wall_remaining -= wall_share
        child = tracer.transfer_to_child(
            f"morsel[{index}]", share, wall_share
        )
        if child is not None:
            child.rows = rows
    tracer.current_add(morsels=len(task_rows), steals=int(steals))
    metrics = observe.metrics
    metrics.counter("parallel.batches").inc(1)
    metrics.counter("parallel.morsels").inc(len(task_rows))
    metrics.counter("parallel.steals").inc(int(steals))


def _parallel_scan_select(rt, scan, predicates, needed):
    """Morsel-parallel scan with fused selection.

    The sorted-prefix binary search stays on the coordinator (it narrows
    the range the morsels split).  Workers produce per-morsel stage
    positions and gathers; the coordinator merges them by morsel index
    and replays the residual/gather charges in serial order.
    """
    table = rt.engine.table(scan.table)
    context = _parallel_context(rt.engine)
    base_needed = _needed_base_columns(scan, needed)
    by_base = _group_predicates(scan, predicates)
    lo, hi, consumed = _sorted_prefix(rt, table, by_base)
    dop = effective_dop(rt, context)
    morsels = split_morsels(lo, hi, context.morsel_rows)
    if dop <= 1 or len(morsels) <= 1:
        # Nothing to parallelize (admission clamped the query to one
        # lane, or the range fits one morsel): run the serial body.
        return _scan_select_body(
            rt, scan, table, by_base, consumed, base_needed, lo, hi
        )
    residual = [
        (base_col, pred)
        for base_col, preds in by_base.items()
        for pred in preds
        if id(pred) not in consumed
    ]
    tasks = [
        _make_morsel_scan_task(table, residual, base_needed, mlo, mhi)
        for mlo, mhi in morsels
    ]
    observe = rt.engine.observe
    snap = rt.clock.profile_snapshot() if observe.enabled else None
    wall0 = wall_now()
    results, steals = context.pool.run_batch(
        tasks, dop, cancel_token=rt.cancel_token
    )

    # Coordinator cost replay — the exact serial charge sequence over the
    # merged positions (count==0 short-circuits match the serial loop).
    positions = None
    count = hi - lo
    for stage, (base_col, _pred) in enumerate(residual):
        if count == 0:
            continue
        _fetch_cost(rt, table, base_col, lo, hi, positions)
        rt.clock.charge_cpu(rt.costs.select_tuple * max(count, 1))
        positions = np.concatenate([r[0][stage] for r in results])
        count = len(positions)
    columns = {}
    for base_col in base_needed:
        qualified = scan.qualified(base_col)
        if count == 0:
            columns[qualified] = np.empty(0, dtype=np.int64)
            continue
        _fetch_cost(rt, table, base_col, lo, hi, positions)
        rt.clock.charge_cpu(rt.costs.scan_tuple * count)
        columns[qualified] = np.concatenate(
            [r[1][base_col] for r in results]
        )
    if observe.enabled:
        _morsel_span_attribution(
            rt, snap, wall0, [mhi - mlo for mlo, mhi in morsels], steals
        )
    return _finish_scan(scan, table, columns, count, positions)


@COLUMN_OPS.operator(
    "parallel-scan+select", _match_fused_scan,
    "morsel-parallel scan+select: workers evaluate residual masks and "
    "gathers per row range; the coordinator merges by morsel index and "
    "replays the serial cost sequence",
    guard=_guard_parallel_fused,
)
def parallel_scan_select(rt, pnode, needed):
    node = pnode.logical
    scan = node.child
    simple = [p for p in node.predicates if not is_column_comparison(p)]
    cross = [p for p in node.predicates if is_column_comparison(p)]
    if not cross:
        return rt.traced_block(
            scan, lambda: _parallel_scan_select(rt, scan, simple, needed)
        )
    inner_needed = set(needed) | {c for p in cross for c in p.columns()}
    result = rt.traced_block(
        scan, lambda: _parallel_scan_select(rt, scan, simple, inner_needed)
    )
    return _apply_cross(rt, result, cross)


@COLUMN_OPS.operator(
    "parallel-scan", match_type(L.Scan),
    "morsel-parallel full-column scan (dense per-range gathers merged "
    "by morsel index)",
    guard=_guard_parallel_scan,
)
def parallel_scan(rt, pnode, needed):
    return _parallel_scan_select(rt, pnode.logical, [], needed)


class _UnionBranchInfo:
    """Static per-branch facts the parallel union needs: the table, its
    row count, the columns to fetch (cost replay), the columns to gather
    (data plane), and the kept output mapping."""

    __slots__ = ("table", "count", "fetch_cols", "gather_cols",
                 "extend_out", "extend_value", "part_mapping")

    def __init__(self, table, count, fetch_cols, gather_cols, extend_out,
                 extend_value, part_mapping):
        self.table = table
        self.count = count
        self.fetch_cols = fetch_cols
        self.gather_cols = gather_cols
        self.extend_out = extend_out
        self.extend_value = extend_value
        self.part_mapping = part_mapping


def _union_branch_info(rt, child, out_names, keep):
    """Resolve one canonical ``Project(Extend?(Scan))`` union branch into
    a :class:`_UnionBranchInfo`, reproducing the fast path's needed-column
    propagation (including extend's first-column quirk) exactly."""
    mapping = child.mapping
    inner = child.child
    extend_node = None
    if type(inner) is L.Extend:
        extend_node = inner
        inner = inner.child
    scan_node = inner

    child_needed = {mapping[i][1] for i in keep}
    if extend_node is not None:
        scan_needed = child_needed - {extend_node.column}
        if not scan_needed:
            scan_needed = {scan_node.output_columns()[0]}
    else:
        scan_needed = child_needed

    table = rt.engine.table(scan_node.table)
    fetch_cols = [
        (qualified, _base_column(scan_node, qualified))
        for qualified in scan_node.output_columns()
        if qualified in scan_needed
    ]
    extend_out = None
    extend_value = 0
    if extend_node is not None and extend_node.column in child_needed:
        extend_out = extend_node.column
        extend_value = extend_fill_value(extend_node.value)
    gather_cols = [
        (qualified, base_col)
        for qualified, base_col in fetch_cols
        if any(mapping[i][1] == qualified for i in keep)
    ]
    part_mapping = [(out_names[i], mapping[i][1]) for i in keep]
    return _UnionBranchInfo(
        table, table.n_rows, fetch_cols, gather_cols, extend_out,
        extend_value, part_mapping,
    )


def _make_union_group_task(group, out_keys):
    """Data-plane work for one branch group: per-branch kept arrays
    (dense slices + constant extend fills), concatenated per output in
    branch order within the group."""

    def task():
        parts = []
        for info in group:
            fetched = {}
            for qualified, base_col in info.gather_cols:
                if info.count == 0:
                    fetched[qualified] = np.empty(0, dtype=np.int64)
                else:
                    fetched[qualified] = info.table.array(base_col)
            if info.extend_out is not None:
                fetched[info.extend_out] = np.full(
                    info.count, info.extend_value, dtype=np.int64
                )
            parts.append(
                {out: fetched[inner] for out, inner in info.part_mapping}
            )
        return {
            out: np.concatenate([part[out] for part in parts])
            for out in out_keys
        }

    return task


def _guard_parallel_union(engine, node):
    if _parallel_context(engine) is None:
        return False
    if not isinstance(node, L.Union):
        return False
    branches = list(node.children())
    if len(branches) < 2:
        return False
    for child in branches:
        if type(child) is not L.Project:
            return False
        inner = child.child
        extended = set()
        if type(inner) is L.Extend:
            extended = {inner.column}
            inner = inner.child
        if type(inner) is not L.Scan:
            return False
        if not _parallel_table_ok(engine, inner.table):
            return False
        legal = set(inner.output_columns()) | extended
        if any(source not in legal for _, source in child.mapping):
            return False
    return True


def _match_parallel_union(node):
    return Lowered(fused=tuple(node.children()))


@COLUMN_OPS.operator(
    "parallel-union", _match_parallel_union,
    "morsel-parallel union of canonical Project(Extend?(Scan)) branches: "
    "branch groups gather on workers, the coordinator replays per-branch "
    "charges in branch order",
    guard=_guard_parallel_union,
)
def parallel_union(rt, pnode, needed):
    node = pnode.logical
    context = _parallel_context(rt.engine)
    out_names = node.output_columns()
    keep = [i for i, name in enumerate(out_names) if name in needed]
    if not keep:
        keep = [0]
    branches = list(node.children())
    infos = [
        _union_branch_info(rt, child, out_names, keep) for child in branches
    ]
    total_in = sum(info.count for info in infos)

    # Group branches into morsel-sized chunks (deterministic: depends
    # only on branch order and static table sizes, never on workers).
    groups = []
    current, rows = [], 0
    for info in infos:
        current.append(info)
        rows += info.count
        if rows >= context.morsel_rows:
            groups.append(current)
            current, rows = [], 0
    if current:
        groups.append(current)

    dop = effective_dop(rt, context)
    out_keys = [out_names[i] for i in keep]
    oid = set(out_keys)  # scans and extends only produce oid columns

    if dop <= 1 or len(groups) <= 1:
        # Serial fallback: the fast path charges in branch order.
        parts = []
        for child in branches:
            part, _n_rows, _part_oid = _union_branch_fast(
                rt, child, out_names, keep
            )
            parts.append(part)
        columns = {
            out: np.concatenate([part[out] for part in parts])
            for out in out_keys
        }
    else:
        tasks = [_make_union_group_task(group, out_keys) for group in groups]
        observe = rt.engine.observe
        snap = rt.clock.profile_snapshot() if observe.enabled else None
        wall0 = wall_now()
        results, steals = context.pool.run_batch(
            tasks, dop, cancel_token=rt.cancel_token
        )
        # Replay the per-branch fetch charges in branch order.
        for info in infos:
            if info.count == 0:
                continue
            for _qualified, base_col in info.fetch_cols:
                _fetch_cost(rt, info.table, base_col, 0, info.count, None)
                rt.clock.charge_cpu(rt.costs.scan_tuple * info.count)
        if observe.enabled:
            _morsel_span_attribution(
                rt, snap, wall0,
                [sum(info.count for info in group) for group in groups],
                steals,
            )
        columns = {
            out: np.concatenate([block[out] for block in results])
            for out in out_keys
        }

    rt.clock.charge_cpu(rt.costs.union_tuple * max(total_in, 1))
    rel = Relation(columns, oid)
    if node.distinct:
        rt.clock.charge_cpu(rt.costs.group_tuple * max(rel.n_rows, 1))
        idx = V.distinct_rows([rel.column(n) for n in rel.columns])
        rel = Relation(
            {n: a[idx] for n, a in rel.columns.items()}, rel.oid_columns
        )
        return Intermediate(rel, tuple(rel.columns))
    return Intermediate(rel, ())


@COLUMN_OPS.operator(
    "scan+select", _match_fused_scan,
    "selection fused into the scan: sorted-prefix binary search plus "
    "column-at-a-time residual predicates",
)
def scan_select(rt, pnode, needed):
    node = pnode.logical
    scan = node.child
    simple = [p for p in node.predicates if not is_column_comparison(p)]
    cross = [p for p in node.predicates if is_column_comparison(p)]
    if not cross:
        # The fused scan still gets its own span; its reported rows are
        # post-selection (the selection runs inside the scan).
        return rt.traced_block(
            scan, lambda: _scan_select(rt, scan, simple, needed)
        )
    inner_needed = set(needed) | {c for p in cross for c in p.columns()}
    result = rt.traced_block(
        scan, lambda: _scan_select(rt, scan, simple, inner_needed)
    )
    return _apply_cross(rt, result, cross)


@COLUMN_OPS.operator(
    "scan", match_type(L.Scan),
    "full-column scan (dense sequential reads of the needed columns)",
)
def scan(rt, pnode, needed):
    return _scan_select(rt, pnode.logical, [], needed)


@COLUMN_OPS.operator(
    "filter", match_type(L.Select),
    "vectorized selection over a materialized intermediate",
)
def filter_(rt, pnode, needed):
    node = pnode.logical
    child_needed = set(needed)
    for p in node.predicates:
        if is_column_comparison(p):
            child_needed.update(p.columns())
        else:
            child_needed.add(p.column)
    child = rt.run_child(pnode.children[0], child_needed)
    rel = child.relation
    mask = np.ones(rel.n_rows, dtype=bool)
    for pred in node.predicates:
        rt.clock.charge_cpu(rt.costs.select_tuple * max(rel.n_rows, 1))
        if is_column_comparison(pred):
            mask &= pred.mask(rel.column(pred.left), rel.column(pred.right))
        else:
            mask &= pred.mask(rel.column(pred.column))
    columns = {n: a[mask] for n, a in rel.columns.items()}
    return Intermediate(Relation(columns, rel.oid_columns), child.sorted_by)


# ---------------------------------------------------------------------------
# projection / join
# ---------------------------------------------------------------------------

@COLUMN_OPS.operator(
    "project", match_type(L.Project),
    "narrow/rename columns (no data movement beyond the mapping)",
)
def project(rt, pnode, needed):
    node = pnode.logical
    mapping = [(o, i) for o, i in node.mapping if o in needed]
    if not mapping:
        mapping = node.mapping[:1]
    child_needed = {i for _, i in mapping}
    child = rt.run_child(pnode.children[0], child_needed)
    rel = child.relation
    columns = {o: rel.column(i) for o, i in mapping}
    oid = {o for o, i in mapping if i in rel.oid_columns}
    rename = dict((i, o) for o, i in mapping)
    sorted_by = []
    for col in child.sorted_by:
        if col in rename:
            sorted_by.append(rename[col])
        else:
            break
    return Intermediate(Relation(columns, oid), tuple(sorted_by))


def _merge_joinable(left, right, on):
    if len(on) != 1:
        return False
    (lcol, rcol), = on
    return (
        len(left.sorted_by) > 0
        and left.sorted_by[0] == lcol
        and len(right.sorted_by) > 0
        and right.sorted_by[0] == rcol
    )


@COLUMN_OPS.operator(
    "vector-join", match_type(L.Join),
    "equi-join over column vectors: merge when both inputs prove sorted "
    "on the key, hash otherwise",
)
def vector_join(rt, pnode, needed):
    node = pnode.logical
    left_cols = set(node.left.output_columns())
    right_cols = set(node.right.output_columns())
    left_needed = (needed & left_cols) | {l for l, _ in node.on}
    right_needed = (needed & right_cols) | {r for _, r in node.on}
    left = rt.run_child(pnode.children[0], left_needed)
    right = rt.run_child(pnode.children[1], right_needed)
    lrel, rrel = left.relation, right.relation

    lkeys = [lrel.column(l) for l, _ in node.on]
    rkeys = [rrel.column(r) for _, r in node.on]
    right_sorted = False
    if len(node.on) == 1:
        lcodes, rcodes = lkeys[0], rkeys[0]
        # The plan's sort-order metadata proves the right side sorted on
        # the join key (e.g. an SO-sorted vertical table joined on
        # subject), so join_indices can skip its argsort.
        (_, rcol), = node.on
        right_sorted = (
            len(right.sorted_by) > 0 and right.sorted_by[0] == rcol
        )
    else:
        lcodes, rcodes = V.factorize_rows_shared(lkeys, rkeys)

    lidx, ridx = V.join_indices(lcodes, rcodes, assume_sorted=right_sorted)
    n_left, n_right, n_out = lrel.n_rows, rrel.n_rows, len(lidx)

    merge = _merge_joinable(left, right, node.on)
    if merge:
        rt.clock.charge_cpu(
            rt.costs.merge_step * (n_left + n_right + n_out)
        )
    else:
        small, large = sorted((n_left, n_right))
        rt.clock.charge_cpu(
            rt.costs.hash_build * small
            + rt.costs.hash_probe * large
            + rt.costs.union_tuple * n_out
        )

    columns = {}
    for name, arr in lrel.columns.items():
        if name in needed or any(name == l for l, _ in node.on):
            columns[name] = arr[lidx]
    for name, arr in rrel.columns.items():
        if name in needed or any(name == r for _, r in node.on):
            columns[name] = arr[ridx]
    oid = (lrel.oid_columns | rrel.oid_columns) & set(columns)
    # join_indices keeps left order, so left sortedness survives.
    return Intermediate(Relation(columns, oid), left.sorted_by)


# ---------------------------------------------------------------------------
# grouping / having
# ---------------------------------------------------------------------------

def _any_column(child):
    return {child.output_columns()[0]}


@COLUMN_OPS.operator(
    "vector-group", match_type(L.GroupBy),
    "grouped count(*)/min/max via factorize + segmented reduction",
)
def vector_group(rt, pnode, needed_above):
    node = pnode.logical
    needed = set(node.keys) | {c for _, c, _ in node.aggregates}
    child = rt.run_child(
        pnode.children[0], needed or _any_column(node.child)
    )
    rel = child.relation
    charge = max(rel.n_rows, 1) * (1 + len(node.aggregates))
    rt.clock.charge_cpu(rt.costs.group_tuple * charge)
    if not node.keys:
        columns = {node.count_column: np.array([rel.n_rows], dtype=np.int64)}
        oid = set()
        for func, input_column, output_name in node.aggregates:
            values = rel.column(input_column)
            reducer = {"min": np.min, "max": np.max}[func]
            result = int(reducer(values)) if rel.n_rows else MISSING_VALUE
            columns[output_name] = np.array([result], dtype=np.int64)
            if input_column in rel.oid_columns:
                oid.add(output_name)
        return Intermediate(Relation(columns, oid_columns=oid), ())
    key_arrays = [rel.column(k) for k in node.keys]
    keys, counts = V.group_count(key_arrays)
    columns = dict(zip(node.keys, keys))
    columns[node.count_column] = counts
    oid = set(node.keys) & rel.oid_columns
    for func, input_column, output_name in node.aggregates:
        columns[output_name] = V.group_aggregate(
            key_arrays, rel.column(input_column), func
        )
        if input_column in rel.oid_columns:
            oid.add(output_name)
    return Intermediate(Relation(columns, oid), tuple(node.keys))


@COLUMN_OPS.operator(
    "having", match_type(L.Having),
    "vectorized group filter over the GroupBy output",
)
def having(rt, pnode, needed):
    node = pnode.logical
    child = rt.run_child(pnode.children[0], set(node.output_columns()))
    rel = child.relation
    rt.clock.charge_cpu(rt.costs.select_tuple * max(rel.n_rows, 1))
    mask = node.predicate.mask(rel.column(node.predicate.column))
    columns = {n: a[mask] for n, a in rel.columns.items()}
    return Intermediate(Relation(columns, rel.oid_columns), child.sorted_by)


# ---------------------------------------------------------------------------
# union / distinct / extend
# ---------------------------------------------------------------------------

def _union_branch_fast(rt, child, out_names, keep):
    """Evaluate a canonical union branch without generic dispatch.

    The vertically-partitioned plans union hundreds of
    ``Project(Extend?(Scan))`` branches (one per property table); the
    generic operator machinery costs more wall-clock than the arrays.
    This fused path performs the *same* buffer reads and clock charges
    in the same order as the generic operators — simulated timings are
    identical — and returns ``(columns, n_rows, oid_columns)``, or
    ``None`` for any other branch shape.
    """
    if type(child) is not L.Project:
        return None
    mapping = child.mapping
    inner = child.child
    extend_node = None
    if type(inner) is L.Extend:
        extend_node = inner
        inner = inner.child
    if type(inner) is not L.Scan:
        return None
    scan_node = inner

    # Reproduce the operators' "needed columns" propagation exactly —
    # including extend's quirk of requesting the scan's first column
    # when nothing below the extended column is needed.
    child_needed = {mapping[i][1] for i in keep}
    if extend_node is not None:
        scan_needed = child_needed - {extend_node.column}
        if not scan_needed:
            scan_needed = {scan_node.output_columns()[0]}
    else:
        scan_needed = child_needed

    table = rt.engine.table(scan_node.table)
    count = table.n_rows
    # Fetch in scan column order (the generic scan's charge order).
    fetched = {}
    for qualified in scan_node.output_columns():
        if qualified not in scan_needed:
            continue
        if count == 0:
            fetched[qualified] = np.empty(0, dtype=np.int64)
            continue
        base_col = _base_column(scan_node, qualified)
        fetched[qualified] = _fetch(rt, table, base_col, 0, count, None)
        rt.clock.charge_cpu(rt.costs.scan_tuple * count)
    if extend_node is not None and extend_node.column in child_needed:
        value = extend_fill_value(extend_node.value)
        fetched[extend_node.column] = np.full(count, value, dtype=np.int64)

    part = {}
    part_oid = set()
    for i in keep:
        out = out_names[i]
        part[out] = fetched[mapping[i][1]]
        part_oid.add(out)  # scans and extends only produce oid columns
    return part, count, part_oid


@COLUMN_OPS.operator(
    "vector-union", match_type(L.Union),
    "concatenate branch vectors (canonical Project(Extend?(Scan)) "
    "branches run a fused fast path with identical charges)",
)
def vector_union(rt, pnode, needed):
    node = pnode.logical
    out_names = node.output_columns()
    keep = [i for i, name in enumerate(out_names) if name in needed]
    if not keep:
        keep = [0]
    parts = []
    oid = set()
    total_in = 0
    for child_pnode in pnode.children:
        child = child_pnode.logical
        fast = _union_branch_fast(rt, child, out_names, keep)
        if fast is not None:
            part, n_rows, part_oid = fast
            total_in += n_rows
            oid |= part_oid
            parts.append(part)
            continue
        child_names = child.output_columns()
        child_needed = {child_names[i] for i in keep}
        result = rt.run_child(child_pnode, child_needed)
        rel = result.relation
        total_in += rel.n_rows
        part = {}
        for i in keep:
            src = child_names[i]
            part[out_names[i]] = rel.column(src)
            if src in rel.oid_columns:
                oid.add(out_names[i])
        parts.append(part)
    columns = {
        out_names[i]: np.concatenate([p[out_names[i]] for p in parts])
        for i in keep
    }
    rt.clock.charge_cpu(rt.costs.union_tuple * max(total_in, 1))
    rel = Relation(columns, oid)
    if node.distinct:
        rt.clock.charge_cpu(rt.costs.group_tuple * max(rel.n_rows, 1))
        idx = V.distinct_rows([rel.column(n) for n in rel.columns])
        rel = Relation(
            {n: a[idx] for n, a in rel.columns.items()}, rel.oid_columns
        )
        return Intermediate(rel, tuple(rel.columns))
    return Intermediate(rel, ())


@COLUMN_OPS.operator(
    "vector-distinct", match_type(L.Distinct),
    "deduplicate rows via multi-column factorization",
)
def vector_distinct(rt, pnode, needed):
    node = pnode.logical
    child = rt.run_child(pnode.children[0], set(node.output_columns()))
    rel = child.relation
    rt.clock.charge_cpu(rt.costs.group_tuple * max(rel.n_rows, 1))
    idx = V.distinct_rows([rel.column(n) for n in rel.columns])
    columns = {n: a[idx] for n, a in rel.columns.items()}
    return Intermediate(Relation(columns, rel.oid_columns), tuple(columns))


@COLUMN_OPS.operator(
    "extend", match_type(L.Extend),
    "append a constant column (materialized only when consumed)",
)
def extend(rt, pnode, needed):
    node = pnode.logical
    child_needed = set(needed) - {node.column}
    if not child_needed:
        child_needed = {node.child.output_columns()[0]}
    child = rt.run_child(pnode.children[0], child_needed)
    rel = child.relation
    if node.column not in needed:
        return child
    value = extend_fill_value(node.value)
    columns = dict(rel.columns)
    columns[node.column] = np.full(rel.n_rows, value, dtype=np.int64)
    oid = set(rel.oid_columns) | {node.column}
    return Intermediate(Relation(columns, oid), child.sorted_by)


# ---------------------------------------------------------------------------
# sort / limit
# ---------------------------------------------------------------------------

@COLUMN_OPS.operator(
    "vector-sort", match_type(L.Sort),
    "np.lexsort over the key columns (stable, last key first)",
)
def vector_sort(rt, pnode, needed):
    node = pnode.logical
    child_needed = set(needed) | {c for c, _ in node.keys}
    child = rt.run_child(pnode.children[0], child_needed)
    rel = child.relation
    n = rel.n_rows
    rt.clock.charge_cpu(sort_cost(rt.costs, n))
    # np.lexsort sorts by the last key first; negate for descending
    # (values are oids/counts, far from the int64 extremes).
    sort_arrays = []
    for column, direction in reversed(node.keys):
        values = rel.column(column)
        sort_arrays.append(-values if direction == "desc" else values)
    order = np.lexsort(sort_arrays) if n else np.empty(0, dtype=np.int64)
    columns = {name: a[order] for name, a in rel.columns.items()}
    return Intermediate(
        Relation(columns, rel.oid_columns), ascending_prefix(node.keys)
    )


@COLUMN_OPS.operator(
    "limit", match_type(L.Limit),
    "truncate the materialized vectors to the first n rows",
)
def limit(rt, pnode, needed):
    node = pnode.logical
    child = rt.run_child(pnode.children[0], needed)
    rel = child.relation
    columns = {name: a[: node.n] for name, a in rel.columns.items()}
    return Intermediate(Relation(columns, rel.oid_columns), child.sorted_by)
