"""The column-store engine facade."""

from repro.colstore.table import ColumnTable
from repro.exec.morsel import (
    MAX_WORKERS,
    ParallelContext,
    morsel_rows_from_env,
    shared_pool,
    workers_from_env,
)
from repro.exec.runtime import Runtime
from repro.engine import (
    COLUMN_STORE_COSTS,
    MACHINE_A,
    BufferPool,
    QueryClock,
    SimulatedDisk,
)
from repro.errors import StorageError
from repro.observe import NULL_OBSERVATION
from repro.plan.logical import count_operators
from repro.storage.compress import CompressionConfig


class ColumnStoreEngine:
    """MonetDB-like engine: column tables, sort orders, vectorized operators.

    Usage::

        engine = ColumnStoreEngine()
        engine.create_table("triples", {"subj": ..., "prop": ..., "obj": ...},
                            sort_by=["prop", "subj", "obj"])
        relation, timing = engine.run(plan)
    """

    kind = "column-store"

    #: Column scans issue large sequential requests (1 MB) — the engine can
    #: exploit the full disk bandwidth, unlike the C-Store replica.
    DEFAULT_MAX_RUN_BYTES = 1024 * 1024

    #: Default page size.  Smaller than a production 8 KB page on purpose:
    #: the benchmarks run a 1:N scale model of the 50M-triple dataset, and
    #: per-table page-size floors (222 near-empty property tables) would
    #: otherwise be magnified N-fold relative to everything else.
    DEFAULT_PAGE_SIZE = 2048

    def __init__(self, machine=MACHINE_A, costs=COLUMN_STORE_COSTS,
                 page_size=DEFAULT_PAGE_SIZE, buffer_bytes=None,
                 max_run_bytes=DEFAULT_MAX_RUN_BYTES, observe=None,
                 compression=None, workers=None):
        self.machine = machine
        self.costs = costs
        self.compression = CompressionConfig.coerce(compression)
        self.observe = observe if observe is not None else NULL_OBSERVATION
        self.disk = SimulatedDisk(page_size=page_size)
        self.clock = QueryClock(machine)
        if buffer_bytes is None:
            buffer_bytes = int(machine.ram_bytes * 0.8)
        self.pool = BufferPool(
            self.disk, self.clock, buffer_bytes, max_run_bytes=max_run_bytes,
            observe=self.observe,
        )
        self._tables = {}
        self._parallel = None
        self._executor = Runtime(self)
        if workers is None:
            workers = workers_from_env(1)
        self.install_parallelism(workers)

    def executor(self):
        """The engine's execution runtime (unified layer)."""
        return self._executor

    # ------------------------------------------------------------------
    # intra-query parallelism
    # ------------------------------------------------------------------

    def install_parallelism(self, workers):
        """Configure the engine's degree of parallelism.

        ``workers <= 1`` removes the parallel context: the guarded
        ``parallel-*`` operators stop binding and plans lower exactly as
        on a serial engine.  Higher values attach the process-wide
        work-stealing pool (``workers - 1`` helper threads; the query
        thread is lane 0).  Either way the lowered-plan cache is dropped,
        since the change alters which guarded operators match.
        """
        workers = max(1, min(int(workers), MAX_WORKERS))
        if workers <= 1:
            self._parallel = None
        else:
            self._parallel = ParallelContext(
                workers, shared_pool(workers - 1), morsel_rows_from_env()
            )
        self._executor.invalidate_lowered()
        return self._parallel

    def parallelism(self):
        """The installed :class:`ParallelContext`, or ``None`` (serial)."""
        return self._parallel

    @property
    def workers(self):
        """The configured degree of parallelism (1 when serial)."""
        return 1 if self._parallel is None else self._parallel.dop

    def lower(self, plan):
        """Physical plan for *plan* under this engine's operator set."""
        return self._executor.lower(plan)

    def install_observation(self, observe):
        """Install (or, with ``None``, remove) an Observation bundle.

        Instrumentation routes through this bundle everywhere, so swapping
        it turns metrics + tracing on or off without rebuilding the engine.
        """
        self.observe = observe if observe is not None else NULL_OBSERVATION
        self.pool.observe = self.observe
        return self.observe

    # ------------------------------------------------------------------
    # DDL / catalog
    # ------------------------------------------------------------------

    def create_table(self, name, columns, sort_by=None, indexes=None,
                     presorted=False):
        """Create a sorted column table.

        *indexes* is accepted for interface parity with the row store but
        must be empty: "MonetDB/SQL does not include user defined indices"
        (paper, Section 4.1) — callers express physical design as sort order.

        *presorted* asserts the columns already arrive in *sort_by* order
        (e.g. restored from the artifact cache), skipping the load sort.
        """
        if indexes:
            raise StorageError(
                "the column store supports sort orders, not user-defined "
                "indices (paper, Section 4.1)"
            )
        if name in self._tables:
            raise StorageError(f"table already exists: {name!r}")
        table = ColumnTable(
            name, columns, self.disk, sort_order=sort_by, presorted=presorted,
            compress=self.compression,
        )
        self._tables[name] = table
        return table

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"no such table: {name!r}") from None

    def drop_table(self, name):
        """Drop a table and free its segments (incremental maintenance
        rebuilds tables by drop + create)."""
        table = self.table(name)
        for column in table.column_names():
            self.disk.drop_segment(f"{name}.{column}")
        del self._tables[name]

    def has_table(self, name):
        return name in self._tables

    def table_names(self):
        return list(self._tables)

    def database_bytes(self):
        return self.disk.total_bytes()

    @property
    def compression_mode(self):
        """``None``, ``"logical"``, or ``"physical"``."""
        return None if self.compression is None else self.compression.cost_mode

    def compression_report(self):
        """Footprint report across all tables (``None`` when disabled).

        ``compression_ratio`` is logical/compressed bytes over every
        column (raw-kept columns count at full size, so the ratio reflects
        the whole store, not just the compressible part).
        """
        if self.compression is None:
            return None
        logical = 0
        compressed = 0
        codecs = {}
        for table in self._tables.values():
            logical += table.logical_bytes()
            compressed += table.compressed_bytes()
            for info in table.compression_summary().values():
                codecs[info["codec"]] = codecs.get(info["codec"], 0) + 1
        ratio = (logical / compressed) if compressed else 1.0
        return {
            "mode": self.compression.cost_mode,
            "logical_bytes": logical,
            "compressed_bytes": compressed,
            "compression_ratio": ratio,
            "columns_by_codec": dict(sorted(codecs.items())),
        }

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def run(self, plan):
        """Execute a logical plan; returns ``(Relation, QueryTiming)``.

        The clock restarts for each run.  Buffer-pool state is preserved
        across runs — call :meth:`make_cold` to simulate a server restart
        with cleared caches (the benchmark's cold protocol).
        """
        self.clock.reset()
        n_operators = count_operators(plan)
        self.clock.charge_cpu(
            self.costs.query_overhead
            + self.costs.plan_operator * n_operators
            + self.costs.plan_quadratic * n_operators * n_operators,
            category="plan",
        )
        relation = self._executor.execute(plan)
        self.clock.charge_cpu(
            self.costs.output_tuple * relation.n_rows, category="output"
        )
        return relation, self.clock.timing()

    def execute(self, plan):
        """Execute and return only the relation (timing discarded)."""
        relation, _ = self.run(plan)
        return relation

    def make_cold(self):
        """Clear every cached page (server restart + cache flush)."""
        self.pool.clear()

    def io_history(self):
        """Figure-5-style (seconds, cumulative bytes) trace of the last run."""
        return self.clock.io_history()
