"""Vectorized relational primitives over numpy int64 arrays.

These are the column-store's physical operators: many-to-many equi-join
index computation, row factorization (for multi-column keys), grouping and
duplicate elimination.  They are pure functions of arrays — cost accounting
happens in the executor that calls them.
"""

import numpy as np


def _is_sorted(array):
    """O(n) check — far cheaper than the O(n log n) argsort it can save."""
    return array.size < 2 or bool(np.all(array[1:] >= array[:-1]))


def _dense_codes(array):
    """Rank codes via a counting LUT when the value range is dense.

    Returns ``(codes, n_distinct)`` with codes identical to
    ``np.unique(array, return_inverse=True)[1]`` (rank among sorted distinct
    values), computed in O(n + range) instead of O(n log n).  Returns
    ``None`` when the value range is too sparse for the LUT to pay off —
    dictionary OIDs are dense, so benchmark-shaped inputs qualify.
    """
    n = array.size
    amin = int(array.min())
    value_range = int(array.max()) - amin + 1
    if value_range > 4 * n + 65536:
        return None
    rel = array - amin
    present = np.zeros(value_range, dtype=bool)
    present[rel] = True
    lut = np.cumsum(present, dtype=np.int64)
    lut -= 1
    return lut[rel], int(lut[-1]) + 1


def _stable_argsort(keys):
    """``np.argsort(keys, kind="stable")``, via int16 radix sort when the
    key range is dense and narrow enough.

    A stable argsort of rank codes equals a stable argsort of the values
    themselves (codes are order-isomorphic), and numpy's stable sort on
    16-bit integers is a radix sort — O(n) instead of a comparison sort.
    """
    dense = _dense_codes(keys)
    if dense is not None and dense[1] <= np.iinfo(np.int16).max:
        return np.argsort(dense[0].astype(np.int16), kind="stable")
    return np.argsort(keys, kind="stable")


def join_indices(left_keys, right_keys, assume_sorted=False):
    """Indices realizing the inner equi-join of two key arrays.

    Returns ``(left_idx, right_idx)`` such that
    ``left_keys[left_idx] == right_keys[right_idx]`` enumerates every
    matching pair.  ``left_idx`` is non-decreasing, so the join output
    preserves the left input's ordering (the property the executor relies on
    for sortedness propagation).

    With ``assume_sorted=True`` the right input is taken to be already
    sorted ascending and the ``np.argsort`` is skipped — the executor passes
    this when the plan's sort-order metadata proves the right side sorted
    (e.g. the SO-sorted vertical tables joined on subject).
    """
    left_keys = np.asarray(left_keys, dtype=np.int64)
    right_keys = np.asarray(right_keys, dtype=np.int64)
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    if assume_sorted or _is_sorted(right_keys):
        # Already sorted (proven by plan metadata, or detected at run time —
        # a stable argsort of a sorted array is the identity permutation, so
        # skipping it cannot change the output).
        order = None
        sorted_right = right_keys
    else:
        order = _stable_argsort(right_keys)
        sorted_right = right_keys[order]
    lo = np.searchsorted(sorted_right, left_keys, side="left")
    hi = np.searchsorted(sorted_right, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    left_idx = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    # For each output row, its offset within the matching right-side run.
    run_starts = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - run_starts
    sorted_positions = np.repeat(lo, counts) + within
    right_idx = sorted_positions if order is None else order[sorted_positions]
    return left_idx, right_idx


def join_runs(left_keys, run_values, run_starts, run_lengths):
    """Equi-join a key array against an RLE-encoded sorted column.

    The right side never materializes: a run with value ``v`` starting at
    row ``s`` with length ``c`` stands for ``c`` rows ``s .. s+c-1`` all
    equal to ``v``.  ``run_values`` must be sorted ascending with distinct
    values (maximal runs of a sorted column — the shape the lowering guard
    checks), so one ``searchsorted`` replaces the whole probe phase.

    Returns ``(left_idx, right_pos)`` — ``left_idx`` indexes the left
    input, ``right_pos`` holds *row positions* in the encoded column —
    enumerating exactly the pairs :func:`join_indices` would, in the same
    order (left order preserved, right positions ascending per match).
    """
    left_keys = np.asarray(left_keys, dtype=np.int64)
    n_runs = len(run_values)
    if len(left_keys) == 0 or n_runs == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    idx = np.searchsorted(run_values, left_keys)
    idx = np.minimum(idx, n_runs - 1)
    matched = np.flatnonzero(run_values[idx] == left_keys)
    if len(matched) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    runs = idx[matched]
    counts = run_lengths[runs]
    total = int(counts.sum())
    left_idx = np.repeat(matched, counts)
    group_starts = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - group_starts
    right_pos = np.repeat(run_starts[runs], counts) + within
    return left_idx, right_pos


def factorize_rows(arrays):
    """Dense integer codes identifying distinct rows of parallel arrays.

    Returns ``(codes, n_distinct)``.  Equal rows get equal codes; codes are
    assigned in sorted-row order (so sorting by code sorts by row).
    """
    arrays = [np.asarray(a, dtype=np.int64) for a in arrays]
    if not arrays:
        raise ValueError("factorize_rows needs at least one array")
    n = len(arrays[0])
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    if len(arrays) == 1:
        array = arrays[0]
        if _is_sorted(array):
            # For sorted input np.unique's inverse is the running count of
            # value changes — same codes, no argsort.
            codes = np.empty(n, dtype=np.int64)
            codes[0] = 0
            np.cumsum(array[1:] != array[:-1], out=codes[1:])
            return codes, int(codes[-1]) + 1
        dense = _dense_codes(array)
        if dense is not None:
            return dense
        uniques, codes = np.unique(array, return_inverse=True)
        return codes.astype(np.int64), len(uniques)
    # Multi-column: rank-code each column, then pair the codes into one
    # int64 key whose numeric order is the rows' lexicographic order — the
    # final rank compression therefore assigns the exact codes
    # ``np.unique(axis=0)`` would, without its slow row-wise comparisons.
    combined, span = None, 1
    for array in arrays:
        codes, n_codes = factorize_rows([array])
        if combined is None:
            combined, span = codes, n_codes
        elif span * n_codes >= 2 ** 62:  # pairing would overflow int64
            stacked = np.column_stack(arrays)
            uniques, codes = np.unique(stacked, axis=0, return_inverse=True)
            return codes.reshape(-1).astype(np.int64), len(uniques)
        else:
            combined = combined * n_codes + codes
            span *= n_codes
    return factorize_rows([combined])


def factorize_rows_shared(left_arrays, right_arrays):
    """Factorize two row sets against a shared code space.

    Returns ``(left_codes, right_codes)`` where equal rows (across the two
    sides) receive equal codes — the building block for multi-column joins.
    """
    n_left = len(left_arrays[0]) if left_arrays else 0
    combined = [
        np.concatenate((np.asarray(l, dtype=np.int64), np.asarray(r, dtype=np.int64)))
        for l, r in zip(left_arrays, right_arrays)
    ]
    codes, _ = factorize_rows(combined)
    return codes[:n_left], codes[n_left:]


def _first_positions(codes, n_codes):
    """First row index of each dense code, in code (= sorted key) order.

    Equivalent to ``np.unique(codes, return_index=True)[1]`` — factorized
    codes are dense, so a reverse scatter replaces the O(n log n) sort.
    """
    first = np.empty(n_codes, dtype=np.int64)
    first[codes[::-1]] = np.arange(len(codes) - 1, -1, -1, dtype=np.int64)
    return first


def group_count(key_arrays):
    """Group rows by key columns and count each group.

    Returns ``(group_key_arrays, counts)`` with groups in sorted key order.
    """
    key_arrays = [np.asarray(a, dtype=np.int64) for a in key_arrays]
    n = len(key_arrays[0])
    if n == 0:
        return [np.empty(0, dtype=np.int64) for _ in key_arrays], np.empty(
            0, dtype=np.int64
        )
    codes, n_groups = factorize_rows(key_arrays)
    counts = np.bincount(codes, minlength=n_groups)
    first_pos = _first_positions(codes, n_groups)
    keys = [a[first_pos] for a in key_arrays]
    return keys, counts.astype(np.int64)


def group_aggregate(key_arrays, value_array, func):
    """Per-group min/max of *value_array*, groups in sorted key order.

    Group order matches :func:`group_count` over the same keys.
    """
    value_array = np.asarray(value_array, dtype=np.int64)
    if len(value_array) == 0:
        return np.empty(0, dtype=np.int64)
    codes, _ = factorize_rows(
        [np.asarray(a, dtype=np.int64) for a in key_arrays]
    )
    if _is_sorted(codes):
        sorted_codes, sorted_values = codes, value_array
    else:
        order = np.argsort(codes, kind="stable")
        sorted_codes, sorted_values = codes[order], value_array[order]
    starts = np.empty(int(sorted_codes[-1]) + 1, dtype=np.int64)
    starts[0] = 0
    changes = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1])
    starts[1:] = changes + 1
    reducer = {"min": np.minimum, "max": np.maximum}[func]
    return reducer.reduceat(sorted_values, starts)


def distinct_rows(arrays):
    """Indices of one representative row per distinct value combination.

    Returned indices are sorted by row value (np.unique order).
    """
    arrays = [np.asarray(a, dtype=np.int64) for a in arrays]
    if len(arrays[0]) == 0:
        return np.empty(0, dtype=np.int64)
    codes, n_distinct = factorize_rows(arrays)
    return _first_positions(codes, n_distinct)
