"""Vectorized relational primitives over numpy int64 arrays.

These are the column-store's physical operators: many-to-many equi-join
index computation, row factorization (for multi-column keys), grouping and
duplicate elimination.  They are pure functions of arrays — cost accounting
happens in the executor that calls them.
"""

import numpy as np


def join_indices(left_keys, right_keys):
    """Indices realizing the inner equi-join of two key arrays.

    Returns ``(left_idx, right_idx)`` such that
    ``left_keys[left_idx] == right_keys[right_idx]`` enumerates every
    matching pair.  ``left_idx`` is non-decreasing, so the join output
    preserves the left input's ordering (the property the executor relies on
    for sortedness propagation).
    """
    left_keys = np.asarray(left_keys, dtype=np.int64)
    right_keys = np.asarray(right_keys, dtype=np.int64)
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    lo = np.searchsorted(sorted_right, left_keys, side="left")
    hi = np.searchsorted(sorted_right, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    left_idx = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    # For each output row, its offset within the matching right-side run.
    run_starts = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - run_starts
    right_idx = order[np.repeat(lo, counts) + within]
    return left_idx, right_idx


def factorize_rows(arrays):
    """Dense integer codes identifying distinct rows of parallel arrays.

    Returns ``(codes, n_distinct)``.  Equal rows get equal codes; codes are
    assigned in sorted-row order (so sorting by code sorts by row).
    """
    arrays = [np.asarray(a, dtype=np.int64) for a in arrays]
    if not arrays:
        raise ValueError("factorize_rows needs at least one array")
    n = len(arrays[0])
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    if len(arrays) == 1:
        uniques, codes = np.unique(arrays[0], return_inverse=True)
        return codes.astype(np.int64), len(uniques)
    stacked = np.column_stack(arrays)
    uniques, codes = np.unique(stacked, axis=0, return_inverse=True)
    return codes.reshape(-1).astype(np.int64), len(uniques)


def factorize_rows_shared(left_arrays, right_arrays):
    """Factorize two row sets against a shared code space.

    Returns ``(left_codes, right_codes)`` where equal rows (across the two
    sides) receive equal codes — the building block for multi-column joins.
    """
    n_left = len(left_arrays[0]) if left_arrays else 0
    combined = [
        np.concatenate((np.asarray(l, dtype=np.int64), np.asarray(r, dtype=np.int64)))
        for l, r in zip(left_arrays, right_arrays)
    ]
    codes, _ = factorize_rows(combined)
    return codes[:n_left], codes[n_left:]


def group_count(key_arrays):
    """Group rows by key columns and count each group.

    Returns ``(group_key_arrays, counts)`` with groups in sorted key order.
    """
    key_arrays = [np.asarray(a, dtype=np.int64) for a in key_arrays]
    n = len(key_arrays[0])
    if n == 0:
        return [np.empty(0, dtype=np.int64) for _ in key_arrays], np.empty(
            0, dtype=np.int64
        )
    codes, _ = factorize_rows(key_arrays)
    unique_codes, first_pos, counts = np.unique(
        codes, return_index=True, return_counts=True
    )
    keys = [a[first_pos] for a in key_arrays]
    return keys, counts.astype(np.int64)


def group_aggregate(key_arrays, value_array, func):
    """Per-group min/max of *value_array*, groups in sorted key order.

    Group order matches :func:`group_count` over the same keys.
    """
    value_array = np.asarray(value_array, dtype=np.int64)
    if len(value_array) == 0:
        return np.empty(0, dtype=np.int64)
    codes, _ = factorize_rows(
        [np.asarray(a, dtype=np.int64) for a in key_arrays]
    )
    order = np.argsort(codes, kind="stable")
    sorted_values = value_array[order]
    _, starts = np.unique(codes[order], return_index=True)
    reducer = {"min": np.minimum, "max": np.maximum}[func]
    return reducer.reduceat(sorted_values, starts)


def distinct_rows(arrays):
    """Indices of one representative row per distinct value combination.

    Returned indices are sorted by row value (np.unique order).
    """
    arrays = [np.asarray(a, dtype=np.int64) for a in arrays]
    if len(arrays[0]) == 0:
        return np.empty(0, dtype=np.int64)
    codes, _ = factorize_rows(arrays)
    _, first_pos = np.unique(codes, return_index=True)
    return first_pos.astype(np.int64)
