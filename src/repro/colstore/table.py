"""Column tables: named BAT-style columns bound to disk segments."""

import numpy as np

from repro.errors import StorageError
from repro.storage.compress import choose_codec, note_column

VALUE_BYTES = 8  # int64 oids


class ColumnTable:
    """A table stored column-wise, optionally sorted on a column list.

    Each column lives in its own segment named ``<table>.<column>``, so the
    buffer pool accounts I/O per column — the mechanism behind the
    column-store's "read only what the query touches" advantage.

    With *compress* (a :class:`~repro.storage.compress.CompressionConfig`)
    each column is additionally encoded by the stats-driven codec picker.
    In ``"logical"`` cost mode segments stay sized at the uncompressed
    footprint (simulated costs bit-identical to the uncompressed engine;
    the encodings only feed the compression report); in ``"physical"``
    mode segments are sized at the encoded footprint and the operators
    read compressed byte ranges.
    """

    def __init__(self, name, columns, disk, sort_order=None, presorted=False,
                 compress=None):
        if not columns:
            raise StorageError(f"table {name!r} needs at least one column")
        sort_order = list(sort_order or [])
        for col in sort_order:
            if col not in columns:
                raise StorageError(
                    f"sort column {col!r} not in table {name!r}"
                )

        arrays = {
            col: np.ascontiguousarray(values, dtype=np.int64)
            for col, values in columns.items()
        }
        lengths = {len(a) for a in arrays.values()}
        if len(lengths) != 1:
            raise StorageError(f"ragged columns in table {name!r}")
        n_rows = lengths.pop()

        if sort_order and not presorted:
            # np.lexsort sorts by the *last* key first.
            keys = [arrays[col] for col in reversed(sort_order)]
            order = np.lexsort(keys)
            arrays = {col: a[order] for col, a in arrays.items()}

        self.name = name
        self.n_rows = n_rows
        self.sort_order = sort_order
        self.compress = compress
        self._arrays = arrays
        self._encodings = {}
        if compress is not None:
            for col, a in arrays.items():
                encoding = choose_codec(a, compress)
                note_column(encoding, n_rows)
                if encoding is not None:
                    self._encodings[col] = encoding
        physical = compress is not None and compress.cost_mode == "physical"
        self._segments = {
            col: disk.create_segment(
                f"{name}.{col}", self._segment_bytes(col, physical)
            )
            for col in arrays
        }

    def _segment_bytes(self, column, physical):
        encoding = self._encodings.get(column)
        if physical and encoding is not None:
            return encoding.nbytes
        return self.n_rows * VALUE_BYTES

    def __repr__(self):
        return (
            f"ColumnTable({self.name!r}, rows={self.n_rows}, "
            f"sort={self.sort_order})"
        )

    def column_names(self):
        return list(self._arrays)

    def has_column(self, name):
        return name in self._arrays

    def array(self, column):
        """The raw in-memory array (I/O accounting is the caller's job)."""
        try:
            return self._arrays[column]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def segment(self, column):
        return self._segments[column]

    def encoding(self, column):
        """The column's codec object, or ``None`` when stored raw."""
        return self._encodings.get(column)

    def physical_encoding(self, column):
        """The codec to *account I/O against*, or ``None``.

        Non-None only in physical cost mode — in logical mode segments are
        raw-sized, so the uncompressed read paths keep charging exactly
        the uncompressed costs.
        """
        if self.compress is None or self.compress.cost_mode != "physical":
            return None
        return self._encodings.get(column)

    def bytes_on_disk(self):
        return sum(s.nbytes for s in self._segments.values())

    def logical_bytes(self):
        """Uncompressed footprint of the table's columns."""
        return len(self._arrays) * self.n_rows * VALUE_BYTES

    def compressed_bytes(self):
        """Encoded footprint (raw-kept columns count at full size)."""
        total = 0
        for col in self._arrays:
            encoding = self._encodings.get(col)
            total += (
                encoding.nbytes if encoding is not None
                else self.n_rows * VALUE_BYTES
            )
        return total

    def compression_summary(self):
        """Per-column codec + size document for reports."""
        columns = {}
        for col in self._arrays:
            encoding = self._encodings.get(col)
            columns[col] = {
                "codec": encoding.codec if encoding is not None else "raw",
                "logical_bytes": self.n_rows * VALUE_BYTES,
                "compressed_bytes": (
                    encoding.nbytes if encoding is not None
                    else self.n_rows * VALUE_BYTES
                ),
            }
        return columns
