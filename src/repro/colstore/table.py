"""Column tables: named BAT-style columns bound to disk segments."""

import numpy as np

from repro.errors import StorageError

VALUE_BYTES = 8  # int64 oids


class ColumnTable:
    """A table stored column-wise, optionally sorted on a column list.

    Each column lives in its own segment named ``<table>.<column>``, so the
    buffer pool accounts I/O per column — the mechanism behind the
    column-store's "read only what the query touches" advantage.
    """

    def __init__(self, name, columns, disk, sort_order=None, presorted=False):
        if not columns:
            raise StorageError(f"table {name!r} needs at least one column")
        sort_order = list(sort_order or [])
        for col in sort_order:
            if col not in columns:
                raise StorageError(
                    f"sort column {col!r} not in table {name!r}"
                )

        arrays = {
            col: np.ascontiguousarray(values, dtype=np.int64)
            for col, values in columns.items()
        }
        lengths = {len(a) for a in arrays.values()}
        if len(lengths) != 1:
            raise StorageError(f"ragged columns in table {name!r}")
        n_rows = lengths.pop()

        if sort_order and not presorted:
            # np.lexsort sorts by the *last* key first.
            keys = [arrays[col] for col in reversed(sort_order)]
            order = np.lexsort(keys)
            arrays = {col: a[order] for col, a in arrays.items()}

        self.name = name
        self.n_rows = n_rows
        self.sort_order = sort_order
        self._arrays = arrays
        self._segments = {
            col: disk.create_segment(f"{name}.{col}", n_rows * VALUE_BYTES)
            for col in arrays
        }

    def __repr__(self):
        return (
            f"ColumnTable({self.name!r}, rows={self.n_rows}, "
            f"sort={self.sort_order})"
        )

    def column_names(self):
        return list(self._arrays)

    def has_column(self, name):
        return name in self._arrays

    def array(self, column):
        """The raw in-memory array (I/O accounting is the caller's job)."""
        try:
            return self._arrays[column]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def segment(self, column):
        return self._segments[column]

    def bytes_on_disk(self):
        return sum(s.nbytes for s in self._segments.values())
