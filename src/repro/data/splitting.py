"""Property splitting for the scale-up experiment (paper, Section 4.4).

To study how the number of properties affects the storage schemes while
keeping the number of triples fixed, the paper "split[s] in each round an
arbitrary number of properties into n sub-properties, where n = 1..9.  The
triples defined over the split properties are re-defined on one of the
sub-properties following a uniform distribution."

:func:`split_properties` implements that transform: it grows the property
vocabulary of a dataset to a target size by splitting the most frequent
properties into uniform sub-properties, renaming the affected triples.
"""

from collections import Counter

import numpy as np

from repro.errors import BenchmarkError
from repro.model.triple import Triple


def split_properties(triples, target_property_count, seed=0,
                     protected=(), max_subproperties=10):
    """Return a new triple list whose property vocabulary has the target size.

    Properties are split most-frequent-first (splitting a frequent property
    creates sub-properties that still carry data, as in the paper); each
    split distributes the property's triples uniformly over its
    sub-properties.  Properties named in *protected* (e.g. ``<type>`` — the
    benchmark queries bind it) are never split.

    Returns ``(new_triples, property_names)``.
    """
    counts = Counter(t.p for t in triples)
    current = len(counts)
    if target_property_count < current:
        raise BenchmarkError(
            f"cannot shrink properties: have {current}, asked for "
            f"{target_property_count}"
        )

    protected = set(protected)
    rng = np.random.default_rng(seed)
    # Decide how many sub-properties each property is split into.
    fan_out = {p: 1 for p in counts}
    needed = target_property_count - current
    by_frequency = sorted(
        (p for p in counts if p not in protected),
        key=lambda p: (-counts[p], p),
    )
    if not by_frequency and needed:
        raise BenchmarkError("no splittable properties available")
    def saturated(prop):
        # A property cannot be split into more sub-properties than it has
        # triples (an empty sub-property would not exist in the data).
        return fan_out[prop] >= min(max_subproperties, counts[prop])

    cursor = 0
    while needed > 0:
        prop = by_frequency[cursor % len(by_frequency)]
        # Splitting into one more sub-property adds exactly one new property.
        if not saturated(prop):
            fan_out[prop] += 1
            needed -= 1
        elif all(saturated(p) for p in by_frequency):
            raise BenchmarkError(
                "target_property_count unreachable with "
                f"max_subproperties={max_subproperties}"
            )
        cursor += 1

    sub_names = {
        p: ([p] if n == 1 else [_sub_name(p, i) for i in range(n)])
        for p, n in fan_out.items()
    }

    # The first len(names) triples of a split property go round-robin to its
    # sub-properties, guaranteeing every sub-property is non-empty; the rest
    # follow the paper's uniform redistribution.
    seen = {p: 0 for p in fan_out}
    new_triples = []
    for t in triples:
        names = sub_names[t.p]
        if len(names) == 1:
            new_triples.append(t)
            continue
        index = seen[t.p]
        seen[t.p] = index + 1
        if index < len(names):
            sub = names[index]
        else:
            sub = names[rng.integers(len(names))]
        new_triples.append(Triple(t.s, sub, t.o))

    new_properties = sorted({t.p for t in new_triples})
    return new_triples, new_properties


def _sub_name(prop, index):
    """Name of the *index*-th sub-property of *prop*.

    ``<records>`` splits into ``<records#0>``, ``<records#1>``, ...
    """
    if prop.endswith(">"):
        return f"{prop[:-1]}#{index}>"
    return f"{prop}#{index}"
