"""Synthetic dataset generation and dataset statistics.

The paper evaluates on the Barton Libraries catalog dump (50M triples, 222
properties).  That dump is not redistributable at laptop scale, so this
package provides :func:`generate_barton`, a generator that reproduces the
*structural* characteristics the paper's Section 2.1 reports — the highly
Zipfian property skew (top 13% of properties covering 99% of the triples),
the near-uniform subjects, the #type-dominated object skew, the large
subject/object overlap — together with every property/value hook the
benchmark queries q1-q8 touch.

All sizes are parameters, so the harness can sweep dataset scale, and the
splitting transform of Section 4.4 (Figure 7) can grow the property count
without changing the number of triples.
"""

from repro.data.zipf import zipf_weights, head_tail_weights, sample_by_weights
from repro.data.barton import BartonConfig, BartonDataset, generate_barton
from repro.data.stats import DatasetStatistics, compute_statistics, cumulative_distribution
from repro.data.splitting import split_properties

__all__ = [
    "zipf_weights",
    "head_tail_weights",
    "sample_by_weights",
    "BartonConfig",
    "BartonDataset",
    "generate_barton",
    "DatasetStatistics",
    "compute_statistics",
    "cumulative_distribution",
    "split_properties",
]
