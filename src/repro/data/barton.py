"""Synthetic Barton-like RDF dataset generator.

The generator reproduces, at configurable scale, the structural facts the
paper's Section 2.1 reports about the Barton Libraries catalog:

* a highly Zipfian property distribution — with the defaults, the top 13% of
  properties carry 99% of the triples and the long tail yields many
  vertically-partitioned tables with fewer than 10 rows,
* ``<type>`` is the most frequent property (~25% of all triples),
* objects are dominated by the #type class vocabulary (``<Date>`` the most
  popular object overall, ``<Text>`` close behind),
* subjects are near-uniform (every entity has exactly one ``<type>`` triple
  plus a Poisson-ish share of the other properties),
* a large fraction of subjects also appear as objects (entity-valued
  properties such as ``<records>`` point at other entities).

Every value hook the benchmark queries need is guaranteed present:
``<type>``/``<Text>`` (q1-q4, q6), ``<language>``/``<language/iso639-2b/fre>``
(q4), ``<origin>``/``<info:marcorg/DLC>`` and ``<records>`` (q5, q6),
``<Point>``/``'"end"'`` and ``<Encoding>`` (q7), and the ``<conferences>``
subject sharing objects with other subjects (q8).
"""

from dataclasses import dataclass, field

import numpy as np

from repro.errors import BenchmarkError
from repro.model.graph import RDFGraph
from repro.model.triple import Triple
from repro.data.zipf import apportion, head_tail_weights, zipf_weights

# Well-known property names, in frequency-rank order (rank 1 first).
TYPE = "<type>"
RECORDS = "<records>"
LANGUAGE = "<language>"
ORIGIN = "<origin>"
POINT = "<Point>"
ENCODING = "<Encoding>"
WELL_KNOWN_PROPERTIES = (TYPE, RECORDS, LANGUAGE, ORIGIN, POINT, ENCODING)

# Well-known object constants used by the benchmark queries.
TEXT = "<Text>"
DATE = "<Date>"
FRENCH = "<language/iso639-2b/fre>"
DLC = "<info:marcorg/DLC>"
END = '"end"'
CONFERENCES = "<conferences>"

# The named classes after <Date> and <Text>, mirroring the paper's remark
# that the 9 most frequent objects are all objects of the property #type.
NAMED_CLASSES = (
    "<NotatedMusic>",
    "<Periodical>",
    "<Manuscript>",
    "<Map>",
    "<SoundRecording>",
    "<Software>",
    "<Image>",
    "<Globe>",
)


@dataclass(frozen=True)
class BartonConfig:
    """Parameters of the synthetic Barton-like dataset."""

    n_triples: int = 100_000
    n_properties: int = 222
    n_interesting: int = 28
    n_classes: int = 30
    seed: int = 42
    # Property-frequency shape (see repro.data.zipf.head_tail_weights).
    head_fraction: float = 0.13
    head_mass: float = 0.99
    head_exponent: float = 1.05
    tail_decay: float = 0.97
    # Share of <type> triples among class objects.
    date_share: float = 0.33
    text_share: float = 0.25
    # Every k-th generic property is entity-valued (objects are entities),
    # which produces the large subject/object overlap of the real dataset.
    entity_valued_every: int = 3

    def validate(self):
        if self.n_triples < 1_000:
            raise BenchmarkError("n_triples must be at least 1000")
        if self.n_properties < len(WELL_KNOWN_PROPERTIES) + 1:
            raise BenchmarkError(
                f"n_properties must be at least {len(WELL_KNOWN_PROPERTIES) + 1}"
            )
        if not len(WELL_KNOWN_PROPERTIES) <= self.n_interesting <= self.n_properties:
            raise BenchmarkError(
                "n_interesting must lie between the well-known property count "
                "and n_properties"
            )
        if self.n_classes < len(NAMED_CLASSES) + 2:
            raise BenchmarkError("n_classes too small for the named classes")


@dataclass
class BartonDataset:
    """A generated dataset: the triples plus its ground-truth metadata."""

    triples: list
    properties: list
    interesting_properties: list
    classes: list
    n_entities: int
    config: BartonConfig
    _graph: RDFGraph = field(default=None, repr=False, compare=False)

    def __len__(self):
        return len(self.triples)

    def graph(self):
        """The triples as an :class:`RDFGraph` (built lazily, cached)."""
        if self._graph is None:
            self._graph = RDFGraph(self.triples)
        return self._graph

    def entity_name(self, index):
        return _entity_name(index)


def generate_barton(config=None, **overrides):
    """Generate a Barton-like dataset.

    Accepts either a :class:`BartonConfig` or keyword overrides of its
    fields, e.g. ``generate_barton(n_triples=50_000, seed=7)``.
    """
    if config is None:
        config = BartonConfig(**overrides)
    elif overrides:
        raise BenchmarkError("pass either a config or keyword overrides, not both")
    config.validate()
    rng = np.random.default_rng(config.seed)

    properties = _property_names(config)
    counts = apportion(
        config.n_triples,
        head_tail_weights(
            config.n_properties,
            head_fraction=config.head_fraction,
            head_mass=config.head_mass,
            head_exponent=config.head_exponent,
            tail_decay=config.tail_decay,
        ),
    )
    counts = np.maximum(counts, 1)  # every property appears at least once

    # Every entity carries exactly one <type> triple, so the entity count is
    # the <type> triple count.
    n_entities = int(counts[0])
    classes = _class_names(config)
    class_assignment = _assign_classes(rng, n_entities, classes, config)

    # Name tables computed once: every emitter below indexes into these
    # instead of formatting per-triple f-strings.
    entity_names = [_entity_name(i) for i in range(n_entities)]

    triples = []
    _emit_type_triples(triples, class_assignment, classes, entity_names)
    for rank in range(1, config.n_properties):
        prop = properties[rank]
        count = int(counts[rank])
        if _is_entity_valued(rank, config, properties):
            _emit_entity_valued(triples, rng, prop, count, entity_names)
        else:
            _emit_literal_valued(triples, rng, prop, rank, count, entity_names)
    _emit_hook_triples(triples, n_entities)

    triples = _dedupe(triples)
    return BartonDataset(
        triples=triples,
        properties=properties,
        interesting_properties=properties[: config.n_interesting],
        classes=classes,
        n_entities=n_entities,
        config=config,
    )


# ----------------------------------------------------------------------
# naming
# ----------------------------------------------------------------------

def _entity_name(index):
    return f"<entity/{index}>"


def _property_names(config):
    names = list(WELL_KNOWN_PROPERTIES)
    names.extend(
        f"<prop/{i}>" for i in range(config.n_properties - len(names))
    )
    return names


def _class_names(config):
    names = [DATE, TEXT]
    names.extend(NAMED_CLASSES)
    names.extend(f"<class/{i}>" for i in range(config.n_classes - len(names)))
    return names[: config.n_classes]


# ----------------------------------------------------------------------
# generation steps
# ----------------------------------------------------------------------

def _assign_classes(rng, n_entities, classes, config):
    """Pick one class per entity: Date/Text get fixed shares, rest is Zipf."""
    rest = 1.0 - config.date_share - config.text_share
    tail = zipf_weights(len(classes) - 2, 1.2) * rest
    weights = np.concatenate(([config.date_share, config.text_share], tail))
    assignment = rng.choice(len(classes), size=n_entities, p=weights / weights.sum())
    # Reserved entities with deterministic classes so the query hooks exist
    # at any scale or seed: e0, e2 are <Text>; e1 is <Date>.
    if n_entities > 2:
        assignment[0] = 1
        assignment[1] = 0
        assignment[2] = 1
    return assignment


def _emit_type_triples(triples, class_assignment, classes, entity_names):
    triples.extend(
        Triple(entity_names[entity], TYPE, classes[class_index])
        for entity, class_index in enumerate(class_assignment.tolist())
    )


def _is_entity_valued(rank, config, properties=None):
    """Is the property at *rank* entity-valued (objects are entities)?"""
    prop_names = properties if properties is not None else _property_names(config)
    if prop_names[rank] == RECORDS:
        return True
    if prop_names[rank] in (LANGUAGE, ORIGIN, POINT, ENCODING):
        return False
    return rank % config.entity_valued_every == 0


def _emit_entity_valued(triples, rng, prop, count, entity_names):
    n_entities = len(entity_names)
    subjects = rng.integers(0, n_entities, size=count)
    objects = rng.integers(0, n_entities, size=count)
    triples.extend(
        Triple(entity_names[s], prop, entity_names[o])
        for s, o in zip(subjects.tolist(), objects.tolist())
    )


#: Fixed literal vocabularies for the well-known literal-valued properties.
_FIXED_VOCABULARIES = {
    LANGUAGE: (
        FRENCH,
        "<language/iso639-2b/eng>",
        "<language/iso639-2b/ger>",
        "<language/iso639-2b/spa>",
        "<language/iso639-2b/rus>",
    ),
    ORIGIN: (DLC, "<info:marcorg/OCoLC>", "<info:marcorg/MH>", "<info:marcorg/NIC>"),
    POINT: (END, '"start"'),
    ENCODING: ('"marc"', '"utf8"', '"iso8859-1"'),
}


def _emit_literal_valued(triples, rng, prop, rank, count, entity_names):
    vocabulary = _FIXED_VOCABULARIES.get(prop)
    if vocabulary is None:
        vocab_size = max(2, count // 3)
        # Synthesized literal vocabulary, built once instead of formatting
        # an f-string per triple.
        vocabulary = [f'"p{rank}_{j}"' for j in range(vocab_size)]
    else:
        vocab_size = len(vocabulary)
    weights = zipf_weights(vocab_size, 1.1)
    n_entities = len(entity_names)
    subjects = rng.integers(0, n_entities, size=count)
    object_indices = rng.choice(vocab_size, size=count, p=weights)
    triples.extend(
        Triple(entity_names[s], prop, vocabulary[j])
        for s, j in zip(subjects.tolist(), object_indices.tolist())
    )


def _emit_hook_triples(triples, n_entities):
    """Deterministic triples guaranteeing non-empty results for q1-q8.

    Reserved entities: e0 (Text, French, DLC origin, end-point), e1 (Date,
    pointed at by records), e2 (Text, pointed at by records), e3/e9 record
    holders, e5 sharing an object with <conferences>.
    """
    if n_entities < 10:
        raise BenchmarkError("dataset too small to host the benchmark hooks")
    e = _entity_name
    triples.extend(
        [
            # q4: a <Text> subject with French language and extra properties.
            Triple(e(0), LANGUAGE, FRENCH),
            Triple(e(0), ORIGIN, DLC),
            # q7: an "end" point with an encoding (and e0 has a <type>).
            Triple(e(0), POINT, END),
            Triple(e(0), ENCODING, '"marc"'),
            # q6 second branch: e3 records a <Text> entity.
            Triple(e(3), RECORDS, e(2)),
            # q5: e9 has origin DLC and records e1 whose type is not <Text>.
            Triple(e(9), ORIGIN, DLC),
            Triple(e(9), RECORDS, e(1)),
            # q8: <conferences> shares object e7 with subject e5, and like
            # any real catalog subject it carries a <type> triple — whose
            # popular class object gives the object-object join of q8 a
            # realistically sized result.
            Triple(CONFERENCES, RECORDS, e(7)),
            Triple(e(5), RECORDS, e(7)),
            Triple(CONFERENCES, TYPE, NAMED_CLASSES[0]),
        ]
    )


def _dedupe(triples):
    seen = set()
    add = seen.add
    unique = []
    keep = unique.append
    n_seen = 0
    for t in triples:
        add((t.s, t.p, t.o))
        if len(seen) != n_seen:
            n_seen += 1
            keep(t)
    return unique
