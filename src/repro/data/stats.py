"""Dataset statistics: the paper's Table 1 and Figure 1.

Table 1 reports counts over the Barton data set (total triples, distinct
properties/subjects/objects, subject-object overlap, dictionary size, data
set size); Figure 1 plots the cumulative frequency distribution of
properties, subjects and objects over the total triple population.  Both are
computed here for any list of triples.
"""

from dataclasses import dataclass

import numpy as np

from repro.dictionary import Dictionary


@dataclass(frozen=True)
class DatasetStatistics:
    """The counters of the paper's Table 1."""

    total_triples: int
    distinct_properties: int
    distinct_subjects: int
    distinct_objects: int
    subject_object_overlap: int
    strings_in_dictionary: int
    data_set_bytes: int

    def rows(self):
        """(label, value) rows in the order of the paper's Table 1."""
        return [
            ("total triples", self.total_triples),
            ("distinct properties", self.distinct_properties),
            ("distinct subjects", self.distinct_subjects),
            ("distinct objects", self.distinct_objects),
            (
                "distinct subjects that appear also as objects (and vice versa)",
                self.subject_object_overlap,
            ),
            ("strings in dictionary", self.strings_in_dictionary),
            ("data set size (bytes)", self.data_set_bytes),
        ]


def compute_statistics(triples):
    """Compute :class:`DatasetStatistics` over an iterable of triples."""
    subjects = set()
    properties = set()
    objects = set()
    dictionary = Dictionary()
    count = 0
    for t in triples:
        count += 1
        subjects.add(t.s)
        properties.add(t.p)
        objects.add(t.o)
        dictionary.encode(t.s)
        dictionary.encode(t.p)
        dictionary.encode(t.o)
    # The raw data set size: each triple is three dictionary oids (8 bytes
    # each) plus the string heap itself — the same accounting the simulated
    # disk layer uses.
    data_set_bytes = count * 3 * 8 + dictionary.byte_size()
    return DatasetStatistics(
        total_triples=count,
        distinct_properties=len(properties),
        distinct_subjects=len(subjects),
        distinct_objects=len(objects),
        subject_object_overlap=len(subjects & objects),
        strings_in_dictionary=len(dictionary),
        data_set_bytes=data_set_bytes,
    )


def cumulative_distribution(counts):
    """Cumulative frequency distribution of a ``{value: count}`` mapping.

    Returns ``(x, y)`` arrays: ``x[i]`` is the percentage of distinct values
    considered (most frequent first) and ``y[i]`` the percentage of the total
    triple population they account for — exactly the axes of the paper's
    Figure 1.
    """
    values = np.sort(np.fromiter(counts.values(), dtype=np.int64))[::-1]
    if len(values) == 0:
        return np.array([]), np.array([])
    total = values.sum()
    x = np.arange(1, len(values) + 1, dtype=np.float64) / len(values) * 100.0
    y = np.cumsum(values) / total * 100.0
    return x, y


def frequency_table(triples, component):
    """Frequency of each distinct value of *component* ('s', 'p' or 'o')."""
    index = {"s": 0, "p": 1, "o": 2}[component]
    counts = {}
    for t in triples:
        value = t[index]
        counts[value] = counts.get(value, 0) + 1
    return counts


def top_share(counts, top_fraction):
    """Share of the total carried by the most frequent *top_fraction* values.

    ``top_share(property_counts, 0.13)`` reproduces the paper's "top 13% of
    the total properties account for the 99% of all triples" check.
    """
    values = sorted(counts.values(), reverse=True)
    if not values:
        return 0.0
    k = max(1, int(round(top_fraction * len(values))))
    return sum(values[:k]) / sum(values)
