"""Zipfian and head/tail weight construction plus categorical sampling.

The paper's Figure 1 shows a *very* steep property distribution: the top 13%
of the 222 properties account for 99% of all triples, while the long tail has
properties with "hardly any data associated" (many vertically-partitioned
tables with fewer than 10 rows).  A pure Zipf law is not steep enough in the
tail to reproduce this, so :func:`head_tail_weights` builds the distribution
the way the paper describes it: a Zipfian head carrying a fixed mass and a
geometrically decaying tail carrying the remainder.
"""

import numpy as np

from repro.errors import BenchmarkError


def zipf_weights(n, exponent=1.0):
    """Normalized Zipf weights ``w_k ~ 1/k^exponent`` for ranks 1..n."""
    if n <= 0:
        raise BenchmarkError("zipf_weights requires n >= 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-float(exponent)
    return weights / weights.sum()

def head_tail_weights(n, head_fraction=0.13, head_mass=0.99, head_exponent=1.05,
                      tail_decay=0.97):
    """Weights with a Zipfian head and a geometric tail.

    * the first ``ceil(head_fraction * n)`` ranks follow a Zipf law with
      ``head_exponent`` and jointly carry ``head_mass`` of the probability,
    * the remaining ranks decay geometrically (ratio ``tail_decay``) and
      carry ``1 - head_mass``.

    With the defaults and n=222 this reproduces the paper's "top 13% of the
    total properties account for the 99% of all triples".
    """
    if n <= 0:
        raise BenchmarkError("head_tail_weights requires n >= 1")
    if not 0 < head_fraction <= 1:
        raise BenchmarkError("head_fraction must be in (0, 1]")
    if not 0 < head_mass <= 1:
        raise BenchmarkError("head_mass must be in (0, 1]")
    n_head = max(1, int(np.ceil(head_fraction * n)))
    n_head = min(n_head, n)
    n_tail = n - n_head

    head = zipf_weights(n_head, head_exponent)
    if n_tail == 0:
        return head

    tail = tail_decay ** np.arange(n_tail, dtype=np.float64)
    tail /= tail.sum()
    return np.concatenate((head * head_mass, tail * (1.0 - head_mass)))


def sample_by_weights(rng, weights, size):
    """Draw ``size`` category indices according to *weights*.

    A thin wrapper over :meth:`numpy.random.Generator.choice` that validates
    its inputs and always returns an ``int64`` array.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or len(weights) == 0:
        raise BenchmarkError("weights must be a non-empty 1-d array")
    if np.any(weights < 0):
        raise BenchmarkError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise BenchmarkError("weights must not all be zero")
    return rng.choice(len(weights), size=size, p=weights / total).astype(np.int64)


def apportion(total, weights):
    """Split integer *total* into per-category counts proportional to weights.

    Uses largest-remainder rounding so the counts sum exactly to *total* and
    every category with positive weight gets at least the floor of its share.
    """
    weights = np.asarray(weights, dtype=np.float64)
    shares = weights / weights.sum() * total
    counts = np.floor(shares).astype(np.int64)
    remainder = int(total - counts.sum())
    if remainder > 0:
        fractional = shares - counts
        top_up = np.argsort(-fractional)[:remainder]
        counts[top_up] += 1
    return counts
