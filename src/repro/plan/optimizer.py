"""EXTENSION — greedy cost-based join-order optimization.

The benchmark plans are hand-ordered the way the paper's SQL implies, and
the calibrated Tables 6/7 run them as-is.  This optimizer exists as an
opt-in extension (``RDFStore.sql(..., optimize=True)`` or
:func:`optimize_joins` directly): it flattens each join tree, estimates
cardinalities with System-R-style statistics, and rebuilds a left-deep
join order greedily — start from the smallest relation, repeatedly join
the connected relation with the smallest estimated intermediate result.

Only join *order* changes; selections, projections, grouping and everything
above/below the join tree stay where they were, so the optimized plan is
result-equivalent by construction (asserted by differential tests).
"""

from repro.plan import logical as L
from repro.plan.stats import Estimator, TableStats


def engine_stats_provider(engine):
    """A stats provider over an engine's stored tables (computed lazily)."""
    cache = {}

    def provider(table_name):
        if table_name not in cache:
            cache[table_name] = _table_stats(engine, table_name)
        return cache[table_name]

    return provider


def _table_stats(engine, table_name):
    table = engine.table(table_name)
    if hasattr(table, "array"):  # column table
        distinct = {
            column: int(len(_unique(table.array(column))))
            for column in table.column_names()
        }
        return TableStats(n_rows=table.n_rows, distinct=distinct)
    # row table
    distinct = {}
    for index, column in enumerate(table.columns):
        distinct[column] = len({row[index] for row in table.rows})
    return TableStats(n_rows=table.n_rows, distinct=distinct)


def _unique(array):
    import numpy as np

    return np.unique(array)


def optimize_joins(plan, stats_provider):
    """Rewrite every maximal join tree in *plan* into a greedy order.

    The rewrite must be result-equivalent *and* lint-equivalent: the
    output plan is asserted to carry no more warning-or-worse static
    diagnostics than the input (``repro.analysis``), so join reordering
    can never introduce a cartesian product or a domain-mismatched key.
    """
    from repro.analysis import plan_lint

    estimator = Estimator(stats_provider)
    optimized = _rewrite(plan, estimator)
    plan_lint.assert_no_regression(plan, optimized, where="optimize_joins")
    return optimized


def annotate_cardinalities(plan, stats_provider):
    """Estimated output cardinality for every node of *plan*.

    Returns ``{id(node): estimated_rows}`` — the estimates the greedy
    optimizer would work from.  The EXPLAIN ANALYZE profiler joins this
    against actual per-operator row counts, which is what makes the
    estimator testable against reality (``misestimate_ratio`` per node).
    """
    estimator = Estimator(stats_provider)
    estimates = {}

    def walk(node):
        estimates[id(node)] = float(estimator.cardinality(node))
        for child in node.children():
            walk(child)

    walk(plan)
    return estimates


def _rewrite(node, estimator):
    if isinstance(node, L.Join):
        relations, conditions = _flatten(node)
        relations = [_rewrite_children(r, estimator) for r in relations]
        return _greedy_join(relations, conditions, estimator)
    return _rewrite_children(node, estimator)


def _rewrite_children(node, estimator):
    children = node.children()
    if not children:
        return node
    new_children = [_rewrite(child, estimator) for child in children]
    if all(a is b for a, b in zip(children, new_children)):
        return node
    return _clone_with_children(node, new_children)


def _clone_with_children(node, children):
    if isinstance(node, L.Select):
        return L.Select(children[0], node.predicates)
    if isinstance(node, L.Project):
        return L.Project(children[0], node.mapping)
    if isinstance(node, L.GroupBy):
        return L.GroupBy(children[0], node.keys, node.count_column)
    if isinstance(node, L.Having):
        return L.Having(children[0], node.predicate)
    if isinstance(node, L.Union):
        return L.Union(children, distinct=node.distinct)
    if isinstance(node, L.Distinct):
        return L.Distinct(children[0])
    if isinstance(node, L.Extend):
        return L.Extend(children[0], node.column, node.value)
    if isinstance(node, L.Sort):
        return L.Sort(children[0], node.keys)
    if isinstance(node, L.Limit):
        return L.Limit(children[0], node.n)
    if isinstance(node, L.Join):
        return L.Join(children[0], children[1], on=node.on)
    return node


def _flatten(node):
    """Flatten a nested single-condition join tree into relations + edges."""
    if isinstance(node, L.Join):
        left_rels, left_conds = _flatten(node.left)
        right_rels, right_conds = _flatten(node.right)
        return (
            left_rels + right_rels,
            left_conds + right_conds + list(node.on),
        )
    return [node], []


def _greedy_join(relations, conditions, estimator):
    available = list(relations)
    remaining = list(conditions)

    def owner(column):
        for relation in available:
            if column in relation.output_columns():
                return relation
        return None

    # Start from the relation with the smallest estimated cardinality that
    # participates in some condition.
    def participates(relation):
        columns = set(relation.output_columns())
        return any(
            l in columns or r in columns for l, r in remaining
        ) or not remaining

    candidates = [r for r in available if participates(r)]
    current = min(candidates, key=estimator.cardinality)
    available.remove(current)
    joined_columns = set(current.output_columns())

    while available:
        best = None
        for l, r in remaining:
            if l in joined_columns and r not in joined_columns:
                other = owner(r)
                on = (l, r)
            elif r in joined_columns and l not in joined_columns:
                other = owner(l)
                on = (r, l)
            else:
                continue
            if other is None:
                continue
            candidate = L.Join(current, other, on=[on])
            cost = estimator.cardinality(candidate)
            if best is None or cost < best[0]:
                best = (cost, candidate, other, (l, r))
        if best is None:
            # No connecting condition (shouldn't happen for plans produced
            # by our planners); keep the original order for the rest.
            raise_unconnected(available)
        _, current, other, used = best
        available.remove(other)
        joined_columns |= set(other.output_columns())
        remaining.remove(used)

    # Any remaining conditions connect already-joined relations: filters.
    if remaining:
        from repro.plan.predicates import ColumnComparison

        current = L.Select(
            current,
            [ColumnComparison(l, "=", r) for l, r in remaining],
        )
    return current


def raise_unconnected(available):
    from repro.errors import PlanError

    raise PlanError(
        "optimizer: join graph is not connected; relations "
        f"{[repr(r) for r in available]}"
    )
