"""Scalar comparison predicates used in selections and HAVING clauses."""

from repro.errors import PlanError

EQ = "="
NE = "!="
LT = "<"
LE = "<="
GT = ">"
GE = ">="

_OPERATORS = {EQ, NE, LT, LE, GT, GE}

_PYTHON_OPS = {
    EQ: lambda a, b: a == b,
    NE: lambda a, b: a != b,
    LT: lambda a, b: a < b,
    LE: lambda a, b: a <= b,
    GT: lambda a, b: a > b,
    GE: lambda a, b: a >= b,
}


class Comparison:
    """``column <op> value`` where *value* is an integer constant.

    Constants are dictionary oids for data columns, or plain integers for
    aggregate outputs (``HAVING count(*) > 1``).  A ``value`` of ``None``
    marks a constant that did not resolve in the dictionary: the predicate
    is unsatisfiable for ``=`` and always true for ``!=``.
    """

    __slots__ = ("column", "op", "value")

    def __init__(self, column, op, value):
        if op not in _OPERATORS:
            raise PlanError(f"unsupported comparison operator: {op!r}")
        if value is not None:
            value = int(value)
        self.column = column
        self.op = op
        self.value = value

    def __repr__(self):
        return f"Comparison({self.column!r} {self.op} {self.value!r})"

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and (self.column, self.op, self.value)
            == (other.column, other.op, other.value)
        )

    def __hash__(self):
        return hash((self.column, self.op, self.value))

    def is_equality(self):
        return self.op == EQ

    def evaluate(self, scalar):
        """Apply the predicate to a single integer value."""
        if self.value is None:
            return self.op == NE
        return _PYTHON_OPS[self.op](scalar, self.value)

    def mask(self, array):
        """Apply the predicate to a numpy array, returning a boolean mask."""
        import numpy as np

        if self.value is None:
            fill = self.op == NE
            return np.full(len(array), fill, dtype=bool)
        return _PYTHON_OPS[self.op](array, self.value)


class ColumnComparison:
    """``left_column <op> right_column`` — compares two columns of the same
    relation.

    Needed for cyclic graph patterns (a pattern sharing more than one
    variable with already-joined patterns) and for redundant SQL join
    conditions between already-joined relations.
    """

    __slots__ = ("left", "op", "right")

    def __init__(self, left, op, right):
        if op not in _OPERATORS:
            raise PlanError(f"unsupported comparison operator: {op!r}")
        self.left = left
        self.op = op
        self.right = right

    def __repr__(self):
        return f"ColumnComparison({self.left!r} {self.op} {self.right!r})"

    def __eq__(self, other):
        return (
            isinstance(other, ColumnComparison)
            and (self.left, self.op, self.right)
            == (other.left, other.op, other.right)
        )

    def __hash__(self):
        return hash((self.left, self.op, self.right))

    def columns(self):
        return (self.left, self.right)

    def evaluate(self, left_value, right_value):
        return _PYTHON_OPS[self.op](left_value, right_value)

    def mask(self, left_array, right_array):
        return _PYTHON_OPS[self.op](left_array, right_array)


def is_column_comparison(predicate):
    return isinstance(predicate, ColumnComparison)
