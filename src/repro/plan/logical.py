"""Logical plan nodes.

Plans are immutable trees — and this module *enforces* it: every node is
sealed when its constructor returns, so later attribute assignment raises
:class:`PlanError` (the optimizer, the profiler and the engines share node
objects freely, which is only sound because nothing can mutate them; see
also the ``plan-mutation`` rule of ``repro lint``).  Column naming
discipline: a :class:`Scan` with alias ``A`` over a table with columns
``subj, prop, obj`` emits columns ``A.subj, A.prop, A.obj``; joins
concatenate the (disjoint) column sets of their inputs; :class:`Project`
renames/narrows.  Every node can report its output column names, which
lets plans be validated once at construction time instead of failing deep
inside an engine.
"""

import functools

from repro.errors import PlanError
from repro.plan.predicates import ColumnComparison, Comparison


class LogicalPlan:
    """Base class; subclasses are the algebra operators.

    Instances freeze when construction completes: ``__init_subclass__``
    wraps each subclass ``__init__`` to seal the node, and ``__setattr__``
    rejects writes to sealed nodes.  Rewrites build new nodes (see
    ``repro.plan.optimizer._clone_with_children``).
    """

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        init = cls.__dict__.get("__init__")
        if init is None or getattr(init, "_seals_plan_node", False):
            return

        @functools.wraps(init)
        def sealing_init(self, *args, **kw):
            init(self, *args, **kw)
            # Only the outermost constructor seals, so a subclass __init__
            # chaining through super().__init__() still works.
            if type(self).__init__ is sealing_init:
                object.__setattr__(self, "_sealed", True)

        sealing_init._seals_plan_node = True
        cls.__init__ = sealing_init

    def __setattr__(self, name, value):
        if getattr(self, "_sealed", False):
            raise PlanError(
                f"{type(self).__name__} is immutable after construction; "
                f"cannot set {name!r} — build a new node instead"
            )
        object.__setattr__(self, name, value)

    def __delattr__(self, name):
        if getattr(self, "_sealed", False):
            raise PlanError(
                f"{type(self).__name__} is immutable after construction; "
                f"cannot delete {name!r}"
            )
        object.__delattr__(self, name)

    def output_columns(self):
        raise NotImplementedError

    def children(self):
        return ()

    def _require_columns(self, needed, where):
        available = set(self.output_columns())
        missing = [c for c in needed if c not in available]
        if missing:
            raise PlanError(
                f"{where}: unknown column(s) {missing}; available: "
                f"{sorted(available)}"
            )


class Scan(LogicalPlan):
    """Scan a stored table, optionally under an alias."""

    def __init__(self, table, columns, alias=None):
        if not columns:
            raise PlanError("Scan needs at least one column")
        self.table = table
        self.base_columns = list(columns)
        self.alias = alias

    def children(self):
        return ()

    def qualified(self, column):
        return f"{self.alias}.{column}" if self.alias else column

    def output_columns(self):
        return [self.qualified(c) for c in self.base_columns]

    def __repr__(self):
        alias = f" AS {self.alias}" if self.alias else ""
        return f"Scan({self.table}{alias})"


class Select(LogicalPlan):
    """Filter rows by a conjunction of comparisons.

    Predicates are :class:`Comparison` (column vs constant) or
    :class:`ColumnComparison` (column vs column within the relation).
    """

    def __init__(self, child, predicates):
        predicates = list(predicates)
        if not predicates:
            raise PlanError("Select needs at least one predicate")
        needed = []
        for p in predicates:
            if isinstance(p, Comparison):
                needed.append(p.column)
            elif isinstance(p, ColumnComparison):
                needed.extend(p.columns())
            else:
                raise PlanError(f"not a predicate: {p!r}")
        self.child = child
        self.predicates = predicates
        self.child._require_columns(needed, "Select")

    def children(self):
        return (self.child,)

    def output_columns(self):
        return self.child.output_columns()

    def __repr__(self):
        return f"Select({self.predicates})"


class Project(LogicalPlan):
    """Narrow and/or rename columns.

    *mapping* is a list of ``(output_name, input_name)`` pairs.
    """

    def __init__(self, child, mapping):
        mapping = list(mapping)
        if not mapping:
            raise PlanError("Project needs at least one output column")
        out_names = [o for o, _ in mapping]
        if len(set(out_names)) != len(out_names):
            raise PlanError(f"duplicate output columns: {out_names}")
        self.child = child
        self.mapping = mapping
        self.child._require_columns([i for _, i in mapping], "Project")

    def children(self):
        return (self.child,)

    def output_columns(self):
        return [o for o, _ in self.mapping]

    def __repr__(self):
        return f"Project({self.mapping})"


class Join(LogicalPlan):
    """Inner equi-join on one or more column pairs."""

    def __init__(self, left, right, on):
        on = list(on)
        if not on:
            raise PlanError("Join needs at least one column pair")
        self.left = left
        self.right = right
        self.on = on
        left._require_columns([l for l, _ in on], "Join(left)")
        right._require_columns([r for _, r in on], "Join(right)")
        overlap = set(left.output_columns()) & set(right.output_columns())
        if overlap:
            raise PlanError(
                "Join inputs must emit disjoint column names "
                f"(plan invariant): {left!r} and {right!r} both emit "
                f"{sorted(overlap)}; use scan aliases or Project renames"
            )

    def children(self):
        return (self.left, self.right)

    def output_columns(self):
        return self.left.output_columns() + self.right.output_columns()

    def __repr__(self):
        return f"Join(on={self.on})"


class GroupBy(LogicalPlan):
    """Group on key columns; compute ``count(*)`` and optional aggregates.

    The benchmark's only aggregate is ``count(*)``; *count_column* names its
    output.  With no keys the node computes global aggregates (one row).

    *aggregates* extends the output with ``("min"|"max", input_column,
    output_name)`` entries.  With the order-preserving dictionary encoding
    the storage builders produce, integer min/max realizes lexicographic
    string min/max.
    """

    AGGREGATE_FUNCTIONS = ("min", "max")

    def __init__(self, child, keys, count_column="count", aggregates=()):
        self.child = child
        self.keys = list(keys)
        self.count_column = count_column
        self.aggregates = [tuple(a) for a in aggregates]
        needed = list(self.keys)
        out_names = set(self.keys) | {count_column}
        for func, input_column, output_name in self.aggregates:
            if func not in self.AGGREGATE_FUNCTIONS:
                raise PlanError(f"unsupported aggregate {func!r}")
            if output_name in out_names:
                raise PlanError(
                    f"duplicate aggregate output {output_name!r}"
                )
            out_names.add(output_name)
            needed.append(input_column)
        child._require_columns(needed, "GroupBy")
        if count_column in self.keys:
            raise PlanError("count column collides with a group key")

    def children(self):
        return (self.child,)

    def output_columns(self):
        return (
            self.keys
            + [self.count_column]
            + [name for _, _, name in self.aggregates]
        )

    def __repr__(self):
        return f"GroupBy(keys={self.keys}, aggregates={self.aggregates})"


class Having(LogicalPlan):
    """Filter groups produced by a GroupBy (predicate on any output col)."""

    def __init__(self, child, predicate):
        if not isinstance(child, GroupBy):
            raise PlanError("Having must sit directly on a GroupBy")
        if not isinstance(predicate, Comparison):
            raise PlanError(f"not a predicate: {predicate!r}")
        self.child = child
        self.predicate = predicate
        child._require_columns([predicate.column], "Having")

    def children(self):
        return (self.child,)

    def output_columns(self):
        return self.child.output_columns()

    def __repr__(self):
        return f"Having({self.predicate})"


class Union(LogicalPlan):
    """Concatenate inputs; SQL UNION (distinct=True) or UNION ALL."""

    def __init__(self, inputs, distinct=True):
        inputs = list(inputs)
        if not inputs:
            raise PlanError("Union needs at least one input")
        arity = len(inputs[0].output_columns())
        for node in inputs[1:]:
            if len(node.output_columns()) != arity:
                raise PlanError("Union inputs must have the same arity")
        self.inputs = inputs
        self.distinct = distinct

    def children(self):
        return tuple(self.inputs)

    def output_columns(self):
        return self.inputs[0].output_columns()

    def __repr__(self):
        kind = "UNION" if self.distinct else "UNION ALL"
        return f"Union({kind}, {len(self.inputs)} inputs)"


class Extend(LogicalPlan):
    """Append a constant integer column.

    The vertically-partitioned plans need this: a property table carries its
    property implicitly (in its name), so reconstructing a triples-shaped
    relation tags each table's rows with the property oid —
    ``SELECT subj, <oid> AS prop, obj FROM vp_table``.
    """

    def __init__(self, child, column, value):
        if column in child.output_columns():
            raise PlanError(f"Extend: column {column!r} already exists")
        self.child = child
        self.column = column
        self.value = None if value is None else int(value)

    def children(self):
        return (self.child,)

    def output_columns(self):
        return self.child.output_columns() + [self.column]

    def __repr__(self):
        return f"Extend({self.column!r} = {self.value!r})"


class Distinct(LogicalPlan):
    """Remove duplicate rows."""

    def __init__(self, child):
        self.child = child

    def children(self):
        return (self.child,)

    def output_columns(self):
        return self.child.output_columns()

    def __repr__(self):
        return "Distinct()"


class Sort(LogicalPlan):
    """Order rows by key columns.

    *keys* is a list of ``(column, direction)`` pairs with direction
    ``"asc"`` or ``"desc"``.
    """

    def __init__(self, child, keys):
        keys = [(c, d) for c, d in keys]
        if not keys:
            raise PlanError("Sort needs at least one key")
        for _, direction in keys:
            if direction not in ("asc", "desc"):
                raise PlanError(
                    f"sort direction must be 'asc' or 'desc', not {direction!r}"
                )
        self.child = child
        self.keys = keys
        child._require_columns([c for c, _ in keys], "Sort")

    def children(self):
        return (self.child,)

    def output_columns(self):
        return self.child.output_columns()

    def __repr__(self):
        return f"Sort({self.keys})"


class Limit(LogicalPlan):
    """Keep the first *n* rows."""

    def __init__(self, child, n):
        n = int(n)
        if n < 0:
            raise PlanError("Limit must be non-negative")
        self.child = child
        self.n = n

    def children(self):
        return (self.child,)

    def output_columns(self):
        return self.child.output_columns()

    def __repr__(self):
        return f"Limit({self.n})"


def walk(plan):
    """Yield every node of the plan tree, pre-order."""
    yield plan
    for child in plan.children():
        yield from walk(child)


def count_operators(plan):
    """Number of operators in the plan.

    This is the size measure behind the paper's observation that full-scale
    vertically-partitioned queries "contain more than two hundred unions and
    joins" and "seriously challenge the optimizer" — engines charge a fixed
    per-operator cost proportional to this count.
    """
    return sum(1 for _ in walk(plan))
