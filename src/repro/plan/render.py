"""Pretty-printers for logical and physical plans.

:func:`render_plan` draws a logical tree (RDFStore.explain);
:func:`render_physical_plan` draws the engine-lowered physical tree the
unified execution layer runs (``repro profile``, ``repro analyze``).
"""

from repro.plan import logical as L


def render_plan(plan, max_union_branches=4, annotate=None):
    """Render a plan tree as indented text.

    Unions over hundreds of property tables (the vertically-partitioned
    full-scale queries) are elided after *max_union_branches* branches so
    the output stays readable; the elision line reports how many branches
    were hidden — which is itself the paper's point about those plans.

    *annotate*, when given, maps a node to extra text appended to its line
    (the EXPLAIN ANALYZE profiler attaches actual rows and I/O this way).
    """
    lines = []
    _render(plan, 0, lines, max_union_branches, annotate)
    return "\n".join(lines)


def describe_node(node):
    """One-line description of a plan node (public alias)."""
    return _describe(node)


def render_physical_plan(physical, max_union_branches=4, annotate=None):
    """Render a lowered physical tree as indented text.

    Each line shows the physical operator, its engine, and the logical
    node(s) it implements (fused nodes inline, e.g. the access paths that
    absorb a Select into their Scan).  Union elision follows
    :func:`render_plan`.  *annotate*, when given, maps a *physical* node
    to extra text (the profiler attaches est/actual rows this way).
    """
    lines = []
    _render_physical(physical, 0, lines, max_union_branches, annotate)
    return "\n".join(lines)


def describe_physical_node(pnode):
    """One-line description of a physical node."""
    described = " + ".join(_describe(n) for n in pnode.logical_nodes())
    return f"{pnode.name} [{pnode.engine}] :: {described}"


def _render_physical(pnode, depth, lines, max_union_branches, annotate=None):
    indent = "  " * depth
    suffix = annotate(pnode) if annotate else ""
    lines.append(f"{indent}{describe_physical_node(pnode)}{suffix}")
    children = pnode.children
    if (
        isinstance(pnode.logical, L.Union)
        and len(children) > max_union_branches
    ):
        shown = children[:max_union_branches]
        for child in shown:
            _render_physical(
                child, depth + 1, lines, max_union_branches, annotate
            )
        lines.append(
            f"{indent}  ... {len(children) - len(shown)} more union branches"
        )
        return
    for child in children:
        _render_physical(
            child, depth + 1, lines, max_union_branches, annotate
        )


def _render(node, depth, lines, max_union_branches, annotate=None):
    indent = "  " * depth
    suffix = annotate(node) if annotate else ""
    lines.append(f"{indent}{_describe(node)}{suffix}")
    children = node.children()
    if isinstance(node, L.Union) and len(children) > max_union_branches:
        shown = children[:max_union_branches]
        for child in shown:
            _render(child, depth + 1, lines, max_union_branches, annotate)
        lines.append(
            f"{indent}  ... {len(children) - len(shown)} more union branches"
        )
        return
    for child in children:
        _render(child, depth + 1, lines, max_union_branches, annotate)


def _describe(node):
    if isinstance(node, L.Scan):
        alias = f" AS {node.alias}" if node.alias else ""
        return f"Scan {node.table}{alias} [{', '.join(node.base_columns)}]"
    if isinstance(node, L.Select):
        from repro.plan.predicates import is_column_comparison

        parts = []
        for p in node.predicates:
            if is_column_comparison(p):
                parts.append(f"{p.left} {p.op} {p.right}")
            else:
                parts.append(f"{p.column} {p.op} {p.value}")
        return f"Select {' AND '.join(parts)}"
    if isinstance(node, L.Project):
        cols = ", ".join(
            o if o == i else f"{i} AS {o}" for o, i in node.mapping
        )
        return f"Project {cols}"
    if isinstance(node, L.Join):
        on = " AND ".join(f"{l} = {r}" for l, r in node.on)
        return f"Join {on}"
    if isinstance(node, L.GroupBy):
        keys = ", ".join(node.keys) or "()"
        return f"GroupBy {keys} -> count(*) AS {node.count_column}"
    if isinstance(node, L.Having):
        p = node.predicate
        return f"Having {p.column} {p.op} {p.value}"
    if isinstance(node, L.Union):
        kind = "Union" if node.distinct else "UnionAll"
        return f"{kind} ({len(node.inputs)} branches)"
    if isinstance(node, L.Distinct):
        return "Distinct"
    if isinstance(node, L.Extend):
        return f"Extend {node.column} = {node.value}"
    return type(node).__name__
