"""Table statistics and cardinality estimation for the join optimizer.

Classic System-R-style estimation over the statistics the engines can
provide (row counts and per-column distinct counts):

* equality against a constant: selectivity ``1 / V(col)``,
* inequality: ``1 - 1/V(col)``; range predicates: ``1/3``,
* equi-join: ``|L| * |R| / max(V(L.key), V(R.key))``.
"""

from dataclasses import dataclass

from repro.plan import logical as L
from repro.plan.predicates import is_column_comparison

RANGE_SELECTIVITY = 1 / 3


@dataclass(frozen=True)
class TableStats:
    """Row count and per-column distinct counts of one stored table."""

    n_rows: int
    distinct: dict  # column name -> distinct count

    def distinct_of(self, column):
        return max(1, self.distinct.get(column, max(1, self.n_rows)))


class Estimator:
    """Estimates output cardinalities of logical plans.

    *stats_provider* maps a table name to :class:`TableStats`.
    """

    def __init__(self, stats_provider):
        self.stats_provider = stats_provider

    def cardinality(self, node):
        if isinstance(node, L.Scan):
            return max(1, self.stats_provider(node.table).n_rows)
        if isinstance(node, L.Select):
            base = self.cardinality(node.child)
            selectivity = 1.0
            for p in node.predicates:
                selectivity *= self._predicate_selectivity(node.child, p)
            return max(1.0, base * selectivity)
        if isinstance(node, L.Project) or isinstance(node, L.Extend):
            return self.cardinality(node.children()[0])
        if isinstance(node, L.Join):
            return self._join_cardinality(node)
        if isinstance(node, L.GroupBy):
            child = self.cardinality(node.child)
            if not node.keys:
                return 1.0
            groups = 1.0
            for key in node.keys:
                groups *= self._distinct_of(node.child, key)
            return max(1.0, min(child, groups))
        if isinstance(node, L.Having):
            return max(1.0, self.cardinality(node.child) / 2)
        if isinstance(node, L.Union):
            return sum(self.cardinality(child) for child in node.inputs)
        if isinstance(node, L.Distinct):
            return max(1.0, self.cardinality(node.child) / 2)
        if isinstance(node, L.Sort):
            return self.cardinality(node.child)
        if isinstance(node, L.Limit):
            return min(node.n, self.cardinality(node.child))
        return 1000.0  # unknown node kinds: a neutral guess

    # ------------------------------------------------------------------

    def _predicate_selectivity(self, child, predicate):
        if is_column_comparison(predicate):
            if predicate.op == "=":
                return 1.0 / max(
                    self._distinct_of(child, predicate.left),
                    1.0,
                )
            return 1.0 - 1.0 / max(
                self._distinct_of(child, predicate.left), 1.0
            )
        if predicate.op == "=":
            if predicate.value is None:
                return 0.0
            return 1.0 / self._distinct_of(child, predicate.column)
        if predicate.op == "!=":
            return 1.0 - 1.0 / self._distinct_of(child, predicate.column)
        return RANGE_SELECTIVITY

    def _join_cardinality(self, node):
        left = self.cardinality(node.left)
        right = self.cardinality(node.right)
        denominator = 1.0
        for lcol, rcol in node.on:
            denominator *= max(
                self._distinct_of(node.left, lcol),
                self._distinct_of(node.right, rcol),
            )
        return max(1.0, left * right / max(denominator, 1.0))

    def _distinct_of(self, node, column):
        """Distinct-count estimate for *column* of *node*'s output."""
        if isinstance(node, L.Scan):
            base = self._base_column(node, column)
            stats = self.stats_provider(node.table)
            return float(
                min(stats.distinct_of(base), max(1, stats.n_rows))
            )
        if isinstance(node, L.Project):
            for out, inp in node.mapping:
                if out == column:
                    return self._distinct_of(node.child, inp)
            return 100.0
        if isinstance(node, L.Extend) and column == node.column:
            return 1.0
        children = node.children()
        if isinstance(node, L.Union):
            # Positional semantics: map the column through each branch's
            # name at the same index; approximate with the branch sum.
            try:
                index = node.output_columns().index(column)
            except ValueError:
                return 100.0
            total = 0.0
            for child in children:
                child_column = child.output_columns()[index]
                total += self._distinct_of(child, child_column)
            return max(1.0, total)
        for child in children:
            if column in child.output_columns():
                distinct = self._distinct_of(child, column)
                # Filters below can only reduce distinct counts; cap by the
                # node's own cardinality.
                return max(1.0, min(distinct, self.cardinality(node)))
        return 100.0

    def _base_column(self, scan, qualified):
        if scan.alias and qualified.startswith(scan.alias + "."):
            return qualified[len(scan.alias) + 1 :]
        return qualified
