"""Engine-neutral logical query plans.

The benchmark queries are expressed once as logical plans (either built
programmatically by :mod:`repro.queries` or lowered from SQL text by
:mod:`repro.sql`) and executed by any engine.  The algebra is the fragment
the paper's appendix SQL needs: scans with aliases, conjunctive
selections, equi-joins, projection, grouping with ``count(*)``, ``HAVING``,
``UNION [ALL]`` and ``DISTINCT``.
"""

from repro.plan.predicates import ColumnComparison, Comparison, EQ, NE
from repro.plan.logical import (
    Distinct,
    Extend,
    GroupBy,
    Having,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Select,
    Sort,
    Union,
    walk,
    count_operators,
)

__all__ = [
    "ColumnComparison",
    "Comparison",
    "EQ",
    "NE",
    "LogicalPlan",
    "Scan",
    "Select",
    "Project",
    "Join",
    "GroupBy",
    "Having",
    "Union",
    "Distinct",
    "Extend",
    "Sort",
    "Limit",
    "walk",
    "count_operators",
]
