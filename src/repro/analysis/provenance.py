"""Column provenance facts the plan-linter rules share.

One bottom-up / top-down sweep over a :class:`LogicalPlan` tree computes,
per node:

* **paths** — a ``$.child.left``-style locator for diagnostics,
* **constants** — columns pinned to a single value (by an ``Extend`` or an
  equality selection); a join whose every key pair is constant on both
  sides does not relate its inputs,
* **domains** — which dictionary domain a column carries
  (``subject`` / ``property`` / ``object`` / ``count``); joining a
  property-coded column against an entity-coded one compares oids from
  different vocabularies,
* **consumed** — which of a node's output columns any ancestor actually
  reads, mirroring the executors' needed-column propagation; a scan column
  nobody consumes is a projection-pushdown opportunity.

Subject- and object-coded columns share the entity value space (the
paper's q8 joins object against object, q5 walks object into subject), so
``subject`` vs ``object`` is *not* a domain mismatch; ``property`` and
``count`` columns live in their own domains.
"""

from repro.plan import logical as L
from repro.plan.predicates import ColumnComparison, Comparison

#: Dictionary domains a column can carry.
SUBJECT = "subject"
PROPERTY = "property"
OBJECT = "object"
COUNT = "count"
UNKNOWN = "unknown"

#: Domains that share the entity value space: joins between them are fine.
ENTITY_DOMAINS = frozenset({SUBJECT, OBJECT})

_BASE_DOMAINS = {"subj": SUBJECT, "prop": PROPERTY, "obj": OBJECT}


def child_edges(node):
    """``(edge_label, child)`` pairs, labelling each child slot."""
    if isinstance(node, L.Join):
        return (("left", node.left), ("right", node.right))
    if isinstance(node, L.Union):
        return tuple(
            (f"inputs[{i}]", child) for i, child in enumerate(node.inputs)
        )
    children = node.children()
    if not children:
        return ()
    return (("child", children[0]),)


class PlanFacts:
    """Shared per-node facts for one plan tree."""

    def __init__(self, plan):
        self.plan = plan
        self.paths = {}      # id(node) -> "$.child.left"
        self.parents = {}    # id(node) -> parent node (root absent)
        self.constants = {}  # id(node) -> {column: pinned value (may be None)}
        self.domains = {}    # id(node) -> {column: domain}
        self.consumed = {}   # id(node) -> set of consumed output columns
        self._index(plan, "$")
        self._consume(plan, set(plan.output_columns()))

    # ------------------------------------------------------------------
    # bottom-up: paths, parents, constants, domains
    # ------------------------------------------------------------------

    def _index(self, node, path):
        self.paths[id(node)] = path
        for label, child in child_edges(node):
            self.parents[id(child)] = node
            self._index(child, f"{path}.{label}")
        self.constants[id(node)] = self._node_constants(node)
        self.domains[id(node)] = self._node_domains(node)

    def _node_constants(self, node):
        if isinstance(node, L.Scan):
            return {}
        if isinstance(node, L.Select):
            pinned = dict(self.constants[id(node.child)])
            for p in node.predicates:
                if isinstance(p, Comparison) and p.is_equality():
                    pinned[p.column] = p.value
            return pinned
        if isinstance(node, L.Extend):
            pinned = dict(self.constants[id(node.child)])
            pinned[node.column] = node.value
            return pinned
        if isinstance(node, L.Project):
            child = self.constants[id(node.child)]
            return {
                out: child[src]
                for out, src in node.mapping
                if src in child
            }
        if isinstance(node, L.Join):
            pinned = dict(self.constants[id(node.left)])
            pinned.update(self.constants[id(node.right)])
            return pinned
        if isinstance(node, L.GroupBy):
            child = self.constants[id(node.child)]
            return {k: child[k] for k in node.keys if k in child}
        if isinstance(node, L.Union):
            branches = [self.constants[id(b)] for b in node.inputs]
            names = node.output_columns()
            pinned = {}
            for position, name in enumerate(names):
                values = set()
                for branch, branch_constants in zip(node.inputs, branches):
                    branch_name = branch.output_columns()[position]
                    if branch_name not in branch_constants:
                        break
                    values.add(branch_constants[branch_name])
                else:
                    if len(values) == 1:
                        pinned[name] = values.pop()
            return pinned
        # Having / Distinct / Sort / Limit: pass through.
        children = node.children()
        return dict(self.constants[id(children[0])]) if children else {}

    def _node_domains(self, node):
        if isinstance(node, L.Scan):
            return {
                node.qualified(c): _BASE_DOMAINS.get(c, UNKNOWN)
                for c in node.base_columns
            }
        if isinstance(node, L.Project):
            child = self.domains[id(node.child)]
            return {
                out: child.get(src, UNKNOWN) for out, src in node.mapping
            }
        if isinstance(node, L.Extend):
            domains = dict(self.domains[id(node.child)])
            # Extend's value is an opaque constant oid (a property tag in
            # the vertical plans, a literal in SQL): leave it undomained.
            domains[node.column] = UNKNOWN
            return domains
        if isinstance(node, L.Join):
            domains = dict(self.domains[id(node.left)])
            domains.update(self.domains[id(node.right)])
            return domains
        if isinstance(node, L.GroupBy):
            child = self.domains[id(node.child)]
            domains = {k: child.get(k, UNKNOWN) for k in node.keys}
            domains[node.count_column] = COUNT
            for _func, src, out in node.aggregates:
                domains[out] = child.get(src, UNKNOWN)
            return domains
        if isinstance(node, L.Union):
            names = node.output_columns()
            domains = {}
            for position, name in enumerate(names):
                seen = set()
                for branch in node.inputs:
                    branch_name = branch.output_columns()[position]
                    seen.add(
                        self.domains[id(branch)].get(branch_name, UNKNOWN)
                    )
                seen.discard(UNKNOWN)
                if len(seen) == 1:
                    domains[name] = seen.pop()
                elif seen <= ENTITY_DOMAINS and seen:
                    # Mixed subject/object branches: still entity-coded.
                    domains[name] = OBJECT
                else:
                    domains[name] = UNKNOWN
            return domains
        children = node.children()
        return dict(self.domains[id(children[0])]) if children else {}

    # ------------------------------------------------------------------
    # top-down: consumed columns (mirrors the executors' pruning)
    # ------------------------------------------------------------------

    def _consume(self, node, needed):
        mine = self.consumed.setdefault(id(node), set())
        mine |= set(needed) & set(node.output_columns())
        if isinstance(node, L.Scan):
            return
        if isinstance(node, L.Select):
            child_needed = set(needed)
            for p in node.predicates:
                if isinstance(p, ColumnComparison):
                    child_needed.update(p.columns())
                else:
                    child_needed.add(p.column)
            self._consume(node.child, child_needed)
        elif isinstance(node, L.Project):
            kept = [(o, i) for o, i in node.mapping if o in needed]
            if not kept:
                kept = node.mapping[:1]
            self._consume(node.child, {i for _, i in kept})
        elif isinstance(node, L.Join):
            left_cols = set(node.left.output_columns())
            right_cols = set(node.right.output_columns())
            self._consume(
                node.left, (needed & left_cols) | {l for l, _ in node.on}
            )
            self._consume(
                node.right, (needed & right_cols) | {r for _, r in node.on}
            )
        elif isinstance(node, L.GroupBy):
            child_needed = set(node.keys) | {
                src for _, src, _ in node.aggregates
            }
            if not child_needed:
                # A bare count(*) pulls one arbitrary column, like the
                # executors do; nothing is semantically consumed.
                child_needed = set(node.child.output_columns()[:1])
            self._consume(node.child, child_needed)
        elif isinstance(node, L.Having):
            self._consume(node.child, set(needed) | {node.predicate.column})
        elif isinstance(node, L.Union):
            names = node.output_columns()
            keep = [i for i, name in enumerate(names) if name in needed]
            if not keep:
                keep = [0]
            for branch in node.inputs:
                branch_names = branch.output_columns()
                self._consume(branch, {branch_names[i] for i in keep})
        elif isinstance(node, L.Distinct):
            # Duplicate elimination compares whole rows: every column counts.
            self._consume(node.child, set(node.child.output_columns()))
        elif isinstance(node, L.Extend):
            child_needed = set(needed) - {node.column}
            if not child_needed:
                child_needed = set(node.child.output_columns()[:1])
            self._consume(node.child, child_needed)
        elif isinstance(node, L.Sort):
            self._consume(
                node.child, set(needed) | {c for c, _ in node.keys}
            )
        elif isinstance(node, L.Limit):
            self._consume(node.child, set(needed))
        else:  # future operators: assume everything is consumed
            for child in node.children():
                self._consume(child, set(child.output_columns()))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def path(self, node):
        return self.paths[id(node)]

    def constants_of(self, node):
        return self.constants[id(node)]

    def domain(self, node, column):
        return self.domains[id(node)].get(column, UNKNOWN)

    def consumed_of(self, node):
        return self.consumed.get(id(node), set())

    def parent(self, node):
        return self.parents.get(id(node))

    def nodes(self):
        """Every node, pre-order."""
        return L.walk(self.plan)
