"""The diagnostic model shared by both analysis heads.

A diagnostic is one finding: which rule fired, how bad it is, where in the
plan tree it points (a ``$.child.left``-style node path), what is wrong,
and — when the rule knows — how to fix it.
"""

from dataclasses import dataclass

#: Severity levels, least to most severe.
INFO = "info"
WARNING = "warning"
ERROR = "error"
SEVERITIES = (INFO, WARNING, ERROR)

_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


def severity_rank(severity):
    try:
        return _RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


def max_severity(diagnostics):
    """The worst severity present, or ``None`` for an empty list."""
    worst_seen = None
    for d in diagnostics:
        if worst_seen is None or severity_rank(d.severity) > severity_rank(
            worst_seen
        ):
            worst_seen = d.severity
    return worst_seen


def worst(diagnostics, at_least=WARNING):
    """Diagnostics at or above the *at_least* severity."""
    floor = severity_rank(at_least)
    return [d for d in diagnostics if severity_rank(d.severity) >= floor]


@dataclass(frozen=True)
class Diagnostic:
    """One plan-linter finding."""

    rule: str        # rule id, e.g. "cartesian-product"
    severity: str    # "info" | "warning" | "error"
    path: str        # node path from the plan root, e.g. "$.child.left"
    node: str        # short repr of the offending node
    message: str
    hint: str = ""   # fix hint; empty when the rule has none

    def __post_init__(self):
        severity_rank(self.severity)  # validate

    def render(self):
        text = (
            f"{self.severity:<7} {self.rule:<22} at {self.path} "
            f"[{self.node}]: {self.message}"
        )
        if self.hint:
            text += f"\n        hint: {self.hint}"
        return text

    def to_dict(self):
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "node": self.node,
            "message": self.message,
            "hint": self.hint,
        }


def sort_diagnostics(diagnostics):
    """Deterministic report order: most severe first, then path, then rule."""
    return sorted(
        diagnostics,
        key=lambda d: (-severity_rank(d.severity), d.path, d.rule, d.message),
    )
