"""Head 1: the plan linter.

A rule registry over :class:`~repro.analysis.provenance.PlanFacts`.  Each
rule is a generator of :class:`~repro.analysis.diagnostics.Diagnostic`
objects; :func:`lint_plan` runs the registry over one plan and returns the
findings most-severe first.

Severity policy
---------------
``error``    the plan is malformed and an engine will misbehave on it.
``warning``  the plan will run but is almost certainly not what was meant
             (cartesian product, unsatisfiable conjunction, mismatched
             dictionary domains, a selection left above a join).
``info``     true but harmless observations — e.g. a scan column nothing
             consumes.  The paper-shaped benchmark plans scan tables with
             their full physical schema (the SQL appendix's ``FROM triples
             AS A`` brings all columns into scope) and the executors prune
             unconsumed columns for free, so dead scan columns are notes,
             not warnings.

Frontend wiring
---------------
:func:`check_plan` is called by the SQL planner, the SPARQL executor and
the benchmark query builders.  Its behaviour is mode-gated:

* ``"off"``    — no linting (zero overhead),
* ``"warn"``   — lint and log findings at warning+ (the default),
* ``"strict"`` — raise :class:`~repro.errors.PlanError` on warning+.

The mode comes from :func:`set_lint_mode` or the ``REPRO_LINT``
environment variable.
"""

import os

from repro.analysis.diagnostics import (
    Diagnostic,
    ERROR,
    INFO,
    WARNING,
    sort_diagnostics,
    worst,
)
from repro.analysis.provenance import (
    COUNT,
    ENTITY_DOMAINS,
    PlanFacts,
    UNKNOWN,
)
from repro.errors import PlanError
from repro.observe.log import get_logger
from repro.plan import logical as L
from repro.plan.predicates import ColumnComparison, Comparison

log = get_logger("analysis")

#: rule id -> (function, one-line description).  Ordered: report order for
#: equal severities follows node paths, not registry order, so this is
#: purely the catalog.
PLAN_RULES = {}

#: Physical-plan rules: run over a lowered
#: :class:`~repro.exec.physical.PhysicalPlan` tree (with the logical
#: root's :class:`PlanFacts` available for paths and provenance).
PHYSICAL_RULES = {}


def plan_rule(rule_id, description):
    def register(fn):
        # unguarded-ok: decorator registration runs at import time, before
        # any query thread exists
        PLAN_RULES[rule_id] = (fn, description)
        return fn

    return register


def physical_rule(rule_id, description):
    def register(fn):
        # unguarded-ok: decorator registration runs at import time, before
        # any query thread exists
        PHYSICAL_RULES[rule_id] = (fn, description)
        return fn

    return register


def lint_plan(plan, rules=None):
    """Run the plan linter; returns diagnostics most-severe first.

    *rules* optionally restricts to an iterable of rule ids.
    """
    facts = PlanFacts(plan)
    selected = PLAN_RULES if rules is None else {
        rule_id: PLAN_RULES[rule_id] for rule_id in rules
    }
    findings = []
    seen = set()
    for rule_id, (fn, _description) in selected.items():
        for diagnostic in fn(facts):
            key = (
                diagnostic.rule, diagnostic.path, diagnostic.message
            )
            if key not in seen:
                seen.add(key)
                findings.append(diagnostic)
    return sort_diagnostics(findings)


def lint_physical_plan(physical, rules=None):
    """Lint a lowered physical tree; returns diagnostics most-severe first.

    Runs the logical rule registry over the bound logical root (the same
    :class:`PlanFacts` the logical linter uses — lowering never changes
    what the plan computes, so every logical finding still applies) plus
    the physical registry over the operator tree itself.  *rules*
    optionally restricts to an iterable of rule ids from either registry.
    """
    facts = PlanFacts(physical.logical)
    if rules is None:
        logical_rules, physical_rules = PLAN_RULES, PHYSICAL_RULES
    else:
        logical_rules = {
            rule_id: PLAN_RULES[rule_id]
            for rule_id in rules if rule_id in PLAN_RULES
        }
        physical_rules = {
            rule_id: PHYSICAL_RULES[rule_id]
            for rule_id in rules if rule_id in PHYSICAL_RULES
        }
    findings = []
    seen = set()
    for fn, _description in logical_rules.values():
        for diagnostic in fn(facts):
            key = (diagnostic.rule, diagnostic.path, diagnostic.message)
            if key not in seen:
                seen.add(key)
                findings.append(diagnostic)
    for fn, _description in physical_rules.values():
        for diagnostic in fn(physical, facts):
            key = (diagnostic.rule, diagnostic.path, diagnostic.message)
            if key not in seen:
                seen.add(key)
                findings.append(diagnostic)
    return sort_diagnostics(findings)


# ---------------------------------------------------------------------------
# frontend wiring
# ---------------------------------------------------------------------------

LINT_MODES = ("off", "warn", "strict")

_lint_mode = None  # resolved lazily so env changes in tests are honoured


def set_lint_mode(mode):
    """Set the frontend lint mode ("off" | "warn" | "strict")."""
    global _lint_mode
    if mode not in LINT_MODES:
        raise ValueError(
            f"unknown lint mode {mode!r}; expected one of {LINT_MODES}"
        )
    # unguarded-ok: frontend config knob, set during setup (CLI, tests)
    # before queries run; an atomic reference store either way
    _lint_mode = mode


def lint_mode():
    if _lint_mode is not None:
        return _lint_mode
    env = os.environ.get("REPRO_LINT", "warn").strip().lower()
    return env if env in LINT_MODES else "warn"


def check_plan(plan, where, mode=None):
    """Frontend hook: lint *plan* according to the current (or given) mode.

    Returns the diagnostics (empty under mode "off").  Under "strict",
    raises :class:`PlanError` when anything at warning+ severity fires.
    """
    if mode is None:
        mode = lint_mode()
    elif mode not in LINT_MODES:
        raise ValueError(
            f"unknown lint mode {mode!r}; expected one of {LINT_MODES}"
        )
    if mode == "off":
        return ()
    diagnostics = lint_plan(plan)
    actionable = worst(diagnostics, at_least=WARNING)
    if actionable and mode == "strict":
        details = "; ".join(
            f"{d.rule} at {d.path}: {d.message}" for d in actionable
        )
        raise PlanError(f"{where}: plan fails lint ({details})")
    for d in actionable:
        log.warning("%s: %s at %s: %s", where, d.rule, d.path, d.message)
    return diagnostics


def assert_no_regression(before, after, where="optimizer"):
    """Raise if *after* lints worse than *before* (at warning+ severity).

    The join-order optimizer must never introduce a problem the input plan
    did not have.
    """
    count_before = len(worst(lint_plan(before), at_least=WARNING))
    count_after = len(worst(lint_plan(after), at_least=WARNING))
    if count_after > count_before:
        raise PlanError(
            f"{where}: rewrite introduced lint regressions "
            f"({count_before} -> {count_after} diagnostics at warning+)"
        )


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------

@plan_rule(
    "cartesian-product",
    "a join whose every key pair is constant on both sides relates nothing",
)
def _rule_cartesian_product(facts):
    for node in facts.nodes():
        if not isinstance(node, L.Join):
            continue
        left_constants = facts.constants_of(node.left)
        right_constants = facts.constants_of(node.right)
        linking = [
            (l, r)
            for l, r in node.on
            if l not in left_constants or r not in right_constants
        ]
        if linking:
            continue
        keys = ", ".join(f"{l} = {r}" for l, r in node.on)
        yield Diagnostic(
            rule="cartesian-product",
            severity=WARNING,
            path=facts.path(node),
            node=repr(node),
            message=(
                f"no join key relates the inputs: every pair ({keys}) "
                "compares constant columns, so the join degenerates to a "
                "cartesian product (or an empty result)"
            ),
            hint="join on a column that varies per row, or drop the join",
        )


def _fold_intervals(predicates):
    """Constant-fold a conjunction of Comparisons on one column.

    Returns a contradiction description string, or None when satisfiable.
    Values are dictionary oids (integers), so strict bounds tighten by 1.
    """
    lo = None  # greatest lower bound (inclusive)
    hi = None  # least upper bound (inclusive)
    pinned = None
    excluded = set()
    for p in predicates:
        v = p.value
        if v is None:
            continue  # missing-constant rule covers these
        if p.op == "=":
            if pinned is not None and pinned != v:
                return f"requires both = {pinned} and = {v}"
            pinned = v
        elif p.op == "!=":
            excluded.add(v)
        elif p.op == "<":
            hi = v - 1 if hi is None else min(hi, v - 1)
        elif p.op == "<=":
            hi = v if hi is None else min(hi, v)
        elif p.op == ">":
            lo = v + 1 if lo is None else max(lo, v + 1)
        elif p.op == ">=":
            lo = v if lo is None else max(lo, v)
    if pinned is not None:
        if pinned in excluded:
            return f"requires both = {pinned} and != {pinned}"
        if lo is not None and pinned < lo:
            return f"requires = {pinned} but also >= {lo}"
        if hi is not None and pinned > hi:
            return f"requires = {pinned} but also <= {hi}"
        return None
    if lo is not None and hi is not None:
        if lo > hi:
            return f"requires >= {lo} and <= {hi} simultaneously"
        if lo == hi and lo in excluded:
            return f"narrows to exactly {lo}, which is excluded by !="
    return None


def _conjunction_roots(facts):
    """Maximal Select chains: (top node, gathered predicates)."""
    for node in facts.nodes():
        if not isinstance(node, L.Select):
            continue
        if isinstance(facts.parent(node), L.Select):
            continue  # covered by the chain's top Select
        predicates = []
        cursor = node
        while isinstance(cursor, L.Select):
            predicates.extend(cursor.predicates)
            cursor = cursor.child
        yield node, predicates


@plan_rule(
    "unsatisfiable-filter",
    "a predicate conjunction no row can satisfy (constant-folded ranges)",
)
def _rule_unsatisfiable_filter(facts):
    for node, predicates in _conjunction_roots(facts):
        by_column = {}
        for p in predicates:
            if isinstance(p, Comparison):
                by_column.setdefault(p.column, []).append(p)
            elif isinstance(p, ColumnComparison):
                if p.left == p.right and p.op in ("<", ">", "!="):
                    yield Diagnostic(
                        rule="unsatisfiable-filter",
                        severity=WARNING,
                        path=facts.path(node),
                        node=repr(node),
                        message=(
                            f"predicate {p.left} {p.op} {p.right} compares "
                            "a column against itself and can never hold"
                        ),
                        hint="remove the predicate or fix the column name",
                    )
        for column, comparisons in sorted(by_column.items()):
            contradiction = _fold_intervals(comparisons)
            if contradiction:
                yield Diagnostic(
                    rule="unsatisfiable-filter",
                    severity=WARNING,
                    path=facts.path(node),
                    node=repr(node),
                    message=(
                        f"conjunction on {column} is unsatisfiable: "
                        f"{contradiction}; the subtree always yields zero "
                        "rows"
                    ),
                    hint="fix the constants or split into a UNION of cases",
                )

    # Having predicates: a count(*) bound below 0 can never fail/hold.
    for node in facts.nodes():
        if isinstance(node, L.Having):
            p = node.predicate
            if p.value is not None and p.value < 0 and p.op in ("<", "<="):
                yield Diagnostic(
                    rule="unsatisfiable-filter",
                    severity=WARNING,
                    path=facts.path(node),
                    node=repr(node),
                    message=(
                        f"HAVING {p.column} {p.op} {p.value} can never hold "
                        "(counts are non-negative)"
                    ),
                    hint="fix the HAVING bound",
                )


@plan_rule(
    "dead-column",
    "a scan or extend output no operator consumes (pushdown opportunity)",
)
def _rule_dead_column(facts):
    for node in facts.nodes():
        if isinstance(node, L.Scan):
            consumed = facts.consumed_of(node)
            for column in node.output_columns():
                if column not in consumed:
                    yield Diagnostic(
                        rule="dead-column",
                        severity=INFO,
                        path=facts.path(node),
                        node=repr(node),
                        message=(
                            f"scan column {column} is never consumed "
                            "downstream; engines prune it, but narrowing "
                            "the scan would make the plan self-documenting"
                        ),
                        hint=f"drop {column} from the Scan column list",
                    )
        elif isinstance(node, L.Extend):
            if node.column not in facts.consumed_of(node):
                yield Diagnostic(
                    rule="dead-column",
                    severity=INFO,
                    path=facts.path(node),
                    node=repr(node),
                    message=(
                        f"extended column {node.column} is never consumed "
                        "downstream"
                    ),
                    hint="drop the Extend node",
                )


@plan_rule(
    "domain-mismatch",
    "join keys drawn from different dictionary domains",
)
def _rule_domain_mismatch(facts):
    known = ENTITY_DOMAINS | {COUNT, "property"}
    for node in facts.nodes():
        if isinstance(node, L.Join):
            for l, r in node.on:
                dl = facts.domain(node.left, l)
                dr = facts.domain(node.right, r)
                if dl == UNKNOWN or dr == UNKNOWN:
                    continue
                if dl == dr:
                    continue
                if {dl, dr} <= ENTITY_DOMAINS:
                    # subject/object share the entity value space (the
                    # paper's q8 object-object join; q5's object->subject
                    # hop).
                    continue
                if not {dl, dr} <= known:
                    continue
                yield Diagnostic(
                    rule="domain-mismatch",
                    severity=WARNING,
                    path=facts.path(node),
                    node=repr(node),
                    message=(
                        f"join key {l} is {dl}-coded but {r} is "
                        f"{dr}-coded; oids from different dictionary "
                        "domains only match by coincidence"
                    ),
                    hint="join columns of the same domain (subject/object "
                         "are interchangeable entity domains)",
                )
        elif isinstance(node, L.Union):
            names = node.output_columns()
            for position, name in enumerate(names):
                seen = {}
                for i, branch in enumerate(node.inputs):
                    branch_name = branch.output_columns()[position]
                    d = facts.domains[id(branch)].get(branch_name, UNKNOWN)
                    if d != UNKNOWN:
                        seen.setdefault(d, i)
                domains = set(seen)
                if len(domains) > 1 and not domains <= ENTITY_DOMAINS \
                        and domains <= known:
                    listed = ", ".join(
                        f"{d} (input {i})" for d, i in sorted(seen.items())
                    )
                    yield Diagnostic(
                        rule="domain-mismatch",
                        severity=WARNING,
                        path=facts.path(node),
                        node=repr(node),
                        message=(
                            f"Union column {name} mixes dictionary "
                            f"domains across inputs: {listed}"
                        ),
                        hint="align the branch projections",
                    )


@plan_rule(
    "duplicate-columns",
    "duplicate or shadowed qualified column names",
)
def _rule_duplicate_columns(facts):
    for node in facts.nodes():
        names = node.output_columns()
        duplicated = sorted(
            {name for name in names if names.count(name) > 1}
        )
        if duplicated:
            yield Diagnostic(
                rule="duplicate-columns",
                severity=ERROR,
                path=facts.path(node),
                node=repr(node),
                message=(
                    f"output columns {duplicated} appear more than once; "
                    "downstream references are ambiguous"
                ),
                hint="rename via Project or use distinct scan aliases",
            )
        if isinstance(node, L.Union):
            first = node.inputs[0].output_columns()
            for i, branch in enumerate(node.inputs[1:], start=1):
                branch_names = branch.output_columns()
                if branch_names != first:
                    yield Diagnostic(
                        rule="duplicate-columns",
                        severity=INFO,
                        path=facts.path(node),
                        node=repr(node),
                        message=(
                            f"Union input {i} columns {branch_names} are "
                            f"shadowed by input 0's names {first} "
                            "(positional, SQL semantics)"
                        ),
                        hint="project branches onto one shared name set",
                    )


@plan_rule(
    "pushdown-select",
    "a constant selection left above a join the optimizer should push down",
)
def _rule_pushdown_select(facts):
    for node in facts.nodes():
        if not (isinstance(node, L.Select) and isinstance(node.child, L.Join)):
            continue
        join = node.child
        left_cols = set(join.left.output_columns())
        right_cols = set(join.right.output_columns())
        for p in node.predicates:
            if not isinstance(p, Comparison):
                continue  # column-column leftovers of cyclic joins belong here
            side = (
                "left" if p.column in left_cols
                else "right" if p.column in right_cols
                else None
            )
            if side is None:
                continue
            yield Diagnostic(
                rule="pushdown-select",
                severity=WARNING,
                path=facts.path(node),
                node=repr(node),
                message=(
                    f"selection {p.column} {p.op} {p.value} sits above a "
                    f"join but only references the {side} input; pushing "
                    "it below the join shrinks the join input"
                ),
                hint=f"apply the selection to the join's {side} input",
            )


@physical_rule(
    "wrong-engine-operator",
    "a physical operator bound from another engine's registry",
)
def _rule_wrong_engine_operator(physical, facts):
    from repro.exec.physical import walk_physical

    root_engine = physical.engine
    for pnode in walk_physical(physical):
        bound_to = pnode.op.engine
        if bound_to != pnode.engine:
            yield Diagnostic(
                rule="wrong-engine-operator",
                severity=ERROR,
                path=facts.path(pnode.logical) or "$",
                node=repr(pnode),
                message=(
                    f"operator {pnode.name!r} is registered for engine "
                    f"{bound_to!r} but the node was lowered for "
                    f"{pnode.engine!r}; its cost charges follow the wrong "
                    "cost model"
                ),
                hint="register the operator in the executing engine's "
                     "EngineOperatorSet",
            )
        elif pnode.engine != root_engine:
            yield Diagnostic(
                rule="wrong-engine-operator",
                severity=ERROR,
                path=facts.path(pnode.logical) or "$",
                node=repr(pnode),
                message=(
                    f"physical tree mixes engines: node is lowered for "
                    f"{pnode.engine!r} inside a {root_engine!r} plan"
                ),
                hint="lower the whole plan through one engine's registry",
            )


@plan_rule(
    "missing-constant",
    "a query constant that did not resolve in the dictionary",
)
def _rule_missing_constant(facts):
    for node in facts.nodes():
        if not isinstance(node, L.Select):
            continue
        for p in node.predicates:
            if isinstance(p, Comparison) and p.value is None:
                if p.op == "!=":
                    meaning = "always true (the predicate is redundant)"
                else:
                    meaning = (
                        "never satisfied (the subtree yields zero rows)"
                    )
                yield Diagnostic(
                    rule="missing-constant",
                    severity=INFO,
                    path=facts.path(node),
                    node=repr(node),
                    message=(
                        f"constant in {p.column} {p.op} ? is absent from "
                        f"the dictionary: {meaning}"
                    ),
                    hint="expected when a query constant does not occur "
                         "in the loaded data",
                )
