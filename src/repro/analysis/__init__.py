"""Static analysis: plan linting and codebase invariant checking.

Two heads, one subsystem:

* **Plan linter** (:mod:`repro.analysis.plan_lint`) — walks
  :class:`~repro.plan.logical.LogicalPlan` trees before execution and
  reports shape problems the engines would otherwise burn time on:
  cartesian products, unsatisfiable predicate conjunctions, dead scan
  columns, dictionary-domain mismatches in join keys, duplicate output
  columns, and selections the planner should have pushed below a join.
  Exposed as ``repro analyze <query>`` and wired (mode-gated) into the SQL
  planner, the SPARQL executor, the benchmark query builders and the
  join-order optimizer.

* **Codebase invariant checker** (:mod:`repro.analysis.code_lint`) — an
  :mod:`ast`-based linter with repo-specific rules generic tools cannot
  express: no wall clock or unseeded randomness reachable from
  simulated-cost paths, no bare-``set`` iteration feeding benchmark or
  report output, join kernels must thread their sort-order hint, and no
  mutation of logical-plan nodes after construction.  Exposed as
  ``repro lint`` with a checked-in ratchet baseline
  (:mod:`repro.analysis.baseline`).

* **Concurrency-safety analyzer** (:mod:`repro.analysis.concurrency`) —
  three checks over the process-wide mutable state the query server
  shares between sessions: a *guarded-by* discipline checker (every
  mutation of an annotated structure must sit inside ``with <lock>:``),
  a static *lock-order* graph with cycle (deadlock) detection, and a
  runtime *race harness* (``REPRO_RACE_CHECK=1``) that records accessor
  threads on annotated structures and cross-checks that N-thread replay
  produces byte-identical simulated costs to serial.  Exposed as
  ``repro analyze --concurrency``; the static heads ride the same
  ratchet-baseline machinery as the code linter
  (``concurrency-baseline.json``).

Rule catalog and workflow: ``docs/static-analysis.md``.
"""

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Diagnostic,
    max_severity,
    worst,
)
from repro.analysis.plan_lint import (
    PHYSICAL_RULES,
    PLAN_RULES,
    check_plan,
    lint_mode,
    lint_physical_plan,
    lint_plan,
    set_lint_mode,
)
from repro.analysis.code_lint import (
    CODE_RULES,
    Violation,
    lint_package,
    lint_paths,
    lint_source,
)
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.concurrency import (
    CONCURRENCY_BASELINE_NAME,
    CONCURRENCY_RULES,
    build_lock_graph,
    check_package,
    check_paths,
    check_source,
    lock_graph_document,
    lockorder_package,
    lockorder_paths,
    lockorder_source,
)

__all__ = [
    "Diagnostic",
    "Violation",
    "SEVERITIES",
    "ERROR",
    "WARNING",
    "INFO",
    "max_severity",
    "worst",
    "PLAN_RULES",
    "PHYSICAL_RULES",
    "CODE_RULES",
    "lint_plan",
    "lint_physical_plan",
    "check_plan",
    "lint_mode",
    "set_lint_mode",
    "lint_source",
    "lint_paths",
    "lint_package",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "CONCURRENCY_BASELINE_NAME",
    "CONCURRENCY_RULES",
    "check_source",
    "check_paths",
    "check_package",
    "build_lock_graph",
    "lock_graph_document",
    "lockorder_source",
    "lockorder_paths",
    "lockorder_package",
]
