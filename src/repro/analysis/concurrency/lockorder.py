"""The lock-order (deadlock) analyzer.

Builds the static lock-acquisition graph of the package: nodes are locks
(module-level ``threading.Lock()`` / ``guard_lock()`` definitions and
``self.x = threading.Lock()`` class attributes), and an edge ``A -> B``
means some code path acquires ``B`` while already holding ``A`` — either
lexically (nested ``with`` blocks) or through a resolvable call made
inside a ``with`` block (same-module functions, ``self.`` methods, and
``from x import f`` imports; anything else is conservatively ignored).

A cycle in this graph is the classic deadlock precondition: two threads
taking the same locks in opposite orders can block forever.  The analyzer
reports every strongly-connected component with more than one lock — and
every self-edge on a non-reentrant lock, which needs only a single thread
to deadlock.

Instance locks are modeled one-per-class-attribute; that is conservative
(two instances of the same class are distinct locks at runtime) but the
codebase never nests same-class instances, so no false cycles arise.
"""

import ast
import os

from repro.analysis.code_lint import Violation

#: rule id -> one-line description (merged into the concurrency catalog).
LOCKORDER_RULES = {
    "lock-order-cycle":
        "the static lock-acquisition graph must be acyclic",
}

_LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "guard_lock", "InstrumentedLock",
})
_REENTRANT_FACTORIES = frozenset({"RLock"})


def _module_name(relpath):
    """Dotted module for a package-relative path."""
    parts = relpath.replace(os.sep, "/").split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    return ".".join(parts)


def _lock_factory(value):
    """(is_lock, reentrant) for an assignment's value expression."""
    if not isinstance(value, ast.Call):
        return False, False
    func = value.func
    name = (
        func.id if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute)
        else None
    )
    if name not in _LOCK_FACTORIES:
        return False, False
    reentrant = name in _REENTRANT_FACTORIES
    for keyword in value.keywords:
        if keyword.arg == "reentrant":
            reentrant = not (
                isinstance(keyword.value, ast.Constant)
                and not keyword.value.value
            )
    return True, reentrant


class _ModuleScan(ast.NodeVisitor):
    """One module's locks, imports, and per-function acquisition events."""

    def __init__(self, relpath):
        self.module = _module_name(relpath)
        self.relpath = relpath.replace(os.sep, "/")
        self.module_locks = {}   # local name -> (lock_id, reentrant)
        self.class_locks = {}    # (class, attr) -> (lock_id, reentrant)
        self.imports = {}        # local name -> (module, member)
        self.functions = {}      # qualname -> _FunctionScan
        self._class_stack = []
        self._function_stack = []

    # -- imports --------------------------------------------------------

    def visit_ImportFrom(self, node):
        if node.module:
            for alias in node.names:
                self.imports[alias.asname or alias.name] = (
                    node.module, alias.name
                )
        self.generic_visit(node)

    # -- definitions ----------------------------------------------------

    def visit_ClassDef(self, node):
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_Assign(self, node):
        is_lock, reentrant = _lock_factory(node.value)
        if is_lock:
            for target in node.targets:
                if isinstance(target, ast.Name) and not self._function_stack:
                    lock_id = f"{self.module}.{target.id}"
                    self.module_locks[target.id] = (lock_id, reentrant)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and self._class_stack
                ):
                    cls = self._class_stack[-1]
                    lock_id = f"{self.module}.{cls}.{target.attr}"
                    self.class_locks[(cls, target.attr)] = (
                        lock_id, reentrant
                    )
        self.generic_visit(node)

    # -- function bodies ------------------------------------------------

    def _qualname(self, name):
        parts = list(self._class_stack) + [name]
        return ".".join(parts)

    def _visit_function(self, node):
        qualname = self._qualname(node.name)
        scan = _FunctionScan(
            qualname, self._class_stack[-1] if self._class_stack else None
        )
        self.functions.setdefault(qualname, scan)
        self._function_stack.append(scan)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node):
        scan = self._function_stack[-1] if self._function_stack else None
        if scan is None:
            self.generic_visit(node)
            return
        items = []
        for item in node.items:
            ref = self._lock_ref(item.context_expr)
            if ref is not None:
                items.append(ref)
                scan.acquisitions.append(
                    (tuple(scan.held), ref, node.lineno)
                )
        scan.held.extend(items)
        self.generic_visit(node)
        del scan.held[len(scan.held) - len(items):]

    visit_AsyncWith = visit_With

    def visit_Call(self, node):
        # Record every resolvable call, held or not: unheld calls carry
        # an empty held-tuple (they produce no edges directly) but feed
        # the transitive lockset so A -> middle() -> inner() -> B still
        # yields the A -> B edge.
        scan = self._function_stack[-1] if self._function_stack else None
        if scan is not None:
            callee = self._call_ref(node.func)
            if callee is not None:
                scan.calls.append((tuple(scan.held), callee, node.lineno))
        self.generic_visit(node)

    # -- reference descriptors ------------------------------------------

    def _lock_ref(self, expr):
        """A lock reference descriptor for a ``with`` item, or None."""
        if isinstance(expr, ast.Name):
            return ("name", self.module, expr.id)
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self._class_stack
            ):
                return (
                    "self", self.module, self._class_stack[-1], expr.attr
                )
            return ("attr", expr.attr)
        return None

    def _call_ref(self, func):
        """A callee descriptor for call-graph edges, or None."""
        if isinstance(func, ast.Name):
            return ("func", self.module, func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self._class_stack
        ):
            return (
                "method", self.module, self._class_stack[-1], func.attr
            )
        return None


class _FunctionScan:
    __slots__ = ("qualname", "cls", "held", "acquisitions", "calls")

    def __init__(self, qualname, cls):
        self.qualname = qualname
        self.cls = cls
        self.held = []          # parse-time with-stack (descriptors)
        self.acquisitions = []  # (held descriptors, descriptor, lineno)
        self.calls = []         # (held descriptors, callee, lineno)


class LockGraph:
    """The resolved lock-acquisition graph."""

    def __init__(self):
        self.locks = {}  # lock_id -> {"reentrant": bool}
        self.edges = {}  # (from, to) -> (path, line)

    def add_edge(self, source, target, path, line):
        self.edges.setdefault((source, target), (path, line))

    def cycles(self):
        """Strongly-connected components with >1 lock, plus self-edges on
        non-reentrant locks; each cycle is a sorted list of lock ids."""
        adjacency = {}
        for (source, target) in self.edges:
            adjacency.setdefault(source, set()).add(target)
            adjacency.setdefault(target, set())
        found = []
        for component in _tarjan(adjacency):
            if len(component) > 1:
                found.append(sorted(component))
        for (source, target) in self.edges:
            if source == target and not self.locks.get(
                source, {}
            ).get("reentrant"):
                found.append([source])
        return sorted(found)

    def to_document(self):
        return {
            "locks": {
                lock_id: dict(info)
                for lock_id, info in sorted(self.locks.items())
            },
            "edges": [
                {"from": source, "to": target, "path": path, "line": line}
                for (source, target), (path, line)
                in sorted(self.edges.items())
            ],
            "cycles": self.cycles(),
        }


def _tarjan(adjacency):
    """Strongly-connected components (iterative Tarjan)."""
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    components = []
    counter = [0]

    for root in sorted(adjacency):
        if root in index:
            continue
        work = [(root, iter(sorted(adjacency[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(adjacency[successor])))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


class _Resolver:
    """Global resolution of lock/callee descriptors across modules."""

    def __init__(self, scans):
        self.scans = {scan.module: scan for scan in scans}
        self.attr_index = {}  # attr -> set of lock ids
        for scan in scans:
            for (_cls, attr), (lock_id, _re) in scan.class_locks.items():
                self.attr_index.setdefault(attr, set()).add(lock_id)

    def lock(self, ref):
        kind = ref[0]
        if kind == "name":
            _, module, name = ref
            scan = self.scans.get(module)
            if scan is None:
                return None
            entry = scan.module_locks.get(name)
            if entry is not None:
                return entry
            imported = scan.imports.get(name)
            if imported is not None:
                target = self.scans.get(imported[0])
                if target is not None:
                    return target.module_locks.get(imported[1])
            return None
        if kind == "self":
            _, module, cls, attr = ref
            scan = self.scans.get(module)
            if scan is not None:
                entry = scan.class_locks.get((cls, attr))
                if entry is not None:
                    return entry
            return self._by_attr(attr)
        if kind == "attr":
            return self._by_attr(ref[1])
        return None

    def _by_attr(self, attr):
        candidates = self.attr_index.get(attr, ())
        if len(candidates) == 1:
            (lock_id,) = candidates
            return (lock_id, False)
        return None

    def callee(self, ref):
        kind = ref[0]
        if kind == "func":
            _, module, name = ref
            scan = self.scans.get(module)
            if scan is None:
                return None
            if name in scan.functions:
                return (module, name)
            imported = scan.imports.get(name)
            if imported is not None:
                target = self.scans.get(imported[0])
                if target is not None and imported[1] in target.functions:
                    return imported
            return None
        if kind == "method":
            _, module, cls, attr = ref
            scan = self.scans.get(module)
            qualname = f"{cls}.{attr}"
            if scan is not None and qualname in scan.functions:
                return (module, qualname)
        return None


def _scan_paths(paths):
    scans = []
    for argument in paths:
        argument = os.path.abspath(argument)
        base = os.path.dirname(argument)
        if os.path.isdir(argument):
            for dirpath, dirnames, filenames in os.walk(argument):
                dirnames.sort()
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    full = os.path.join(dirpath, filename)
                    scans.append(_scan_file(full, base))
        else:
            scans.append(_scan_file(argument, base))
    return scans


def _scan_file(full_path, base):
    relpath = os.path.relpath(full_path, base).replace(os.sep, "/")
    with open(full_path, encoding="utf-8") as handle:
        source = handle.read()
    return _scan_source(source, relpath)


def _scan_source(source, relpath):
    scan = _ModuleScan(relpath)
    scan.visit(ast.parse(source, filename=relpath))
    return scan


def _build_graph(scans):
    resolver = _Resolver(scans)
    graph = LockGraph()
    for scan in scans:
        for name, (lock_id, reentrant) in scan.module_locks.items():
            graph.locks[lock_id] = {"reentrant": reentrant}
        for key, (lock_id, reentrant) in scan.class_locks.items():
            graph.locks[lock_id] = {"reentrant": reentrant}

    # Transitive locksets per function (own acquisitions + callees').
    locksets = {}
    for scan in scans:
        for qualname, function in scan.functions.items():
            own = set()
            for _held, ref, _line in function.acquisitions:
                entry = resolver.lock(ref)
                if entry is not None:
                    own.add(entry[0])
            locksets[(scan.module, qualname)] = own
    call_edges = {}
    for scan in scans:
        for qualname, function in scan.functions.items():
            callees = set()
            for _held, callee, _line in function.calls:
                resolved = resolver.callee(callee)
                if resolved is not None:
                    callees.add(resolved)
            call_edges[(scan.module, qualname)] = callees
    changed = True
    while changed:
        changed = False
        for key, callees in call_edges.items():
            lockset = locksets[key]
            before = len(lockset)
            for callee in callees:
                lockset |= locksets.get(callee, set())
            if len(lockset) != before:
                changed = True

    # Edges: lexical nesting plus call sites made while holding locks.
    for scan in scans:
        for function in scan.functions.values():
            for held, ref, line in function.acquisitions:
                target = resolver.lock(ref)
                if target is None:
                    continue
                for held_ref in held:
                    source_lock = resolver.lock(held_ref)
                    if source_lock is None:
                        continue
                    if (
                        source_lock[0] == target[0]
                        and target[1]  # reentrant self-nesting is fine
                    ):
                        continue
                    graph.add_edge(
                        source_lock[0], target[0], scan.relpath, line
                    )
            for held, callee, line in function.calls:
                resolved = resolver.callee(callee)
                if resolved is None:
                    continue
                callee_locks = locksets.get(resolved, set())
                for held_ref in held:
                    source_lock = resolver.lock(held_ref)
                    if source_lock is None:
                        continue
                    for target_id in callee_locks:
                        if source_lock[0] == target_id and (
                            source_lock[1]
                            or graph.locks.get(target_id, {}).get(
                                "reentrant"
                            )
                        ):
                            continue
                        graph.add_edge(
                            source_lock[0], target_id, scan.relpath, line
                        )
    return graph


def build_lock_graph(paths):
    """The resolved :class:`LockGraph` of files / directory trees."""
    return _build_graph(_scan_paths(paths))


def _cycle_violations(graph):
    violations = []
    for cycle in graph.cycles():
        members = set(cycle)
        path, line = "", 0
        for (source, target), site in sorted(graph.edges.items()):
            if source in members and target in members:
                path, line = site
                break
        chain = " -> ".join(cycle + [cycle[0]])
        violations.append(Violation(
            rule="lock-order-cycle",
            severity="error",
            path=path,
            line=line,
            scope="<lock-graph>",
            symbol=" -> ".join(cycle),
            message=(
                f"potential deadlock: lock acquisition cycle {chain} — "
                "establish a single acquisition order (or make the inner "
                "acquisition lock-free) and re-run repro analyze "
                "--concurrency"
            ),
        ))
    return sorted(
        violations, key=lambda v: (v.path, v.line, v.rule, v.symbol)
    )


def lockorder_source(source, relpath):
    """Lock-order check of one module's source text (tests, fixtures)."""
    return _cycle_violations(_build_graph([_scan_source(source, relpath)]))


def lockorder_paths(paths):
    """Lock-order check of files and directory trees."""
    return _cycle_violations(build_lock_graph(paths))


def lockorder_package():
    """Lock-order check of the installed :mod:`repro` package tree."""
    import repro

    return lockorder_paths(
        [os.path.dirname(os.path.abspath(repro.__file__))]
    )


def lock_graph_document(paths=None):
    """JSON document of the lock graph (``repro analyze --json``)."""
    if paths is None:
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    return build_lock_graph(paths).to_document()
