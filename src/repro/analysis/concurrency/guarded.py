"""The guarded-by static checker.

An :mod:`ast` pass that inventories every module-level mutable object
(dicts, lists, sets, registries built via ``shared_state``) and verifies
that every mutation reachable from function scope happens lexically
inside a ``with <lock>:`` block on the lock named by the structure's
``# guarded-by: <LockName>`` annotation.

The convention (see ``docs/static-analysis.md``):

* A module-level structure is annotated with a ``# guarded-by:`` comment
  on its assignment line (or the line directly above)::

      _FOO_LOCK = guard_lock("pkg.module.FOO")
      FOO = shared_state(  # guarded-by: _FOO_LOCK
          "pkg.module.FOO", {"hits": 0}, _FOO_LOCK,
      )

* Module-top-level writes (the initial literal, import-time setup) are
  init-time and always allowed.
* A deliberate unguarded mutation site carries an
  ``# unguarded-ok: <reason>`` comment on the mutating line (or the line
  directly above); the reason is mandatory and shows up in reviews.
* Everything else is a violation, ratcheted through
  ``concurrency-baseline.json`` exactly like the code lint's baseline.

Rules:

* ``unannotated-shared-state`` — a module-level mutable object is mutated
  from function scope but carries no ``# guarded-by:`` annotation.
* ``unguarded-mutation`` — a mutation of an annotated structure outside a
  ``with`` block on its guard lock.
* ``unknown-guard-lock`` — a ``# guarded-by:`` annotation names a lock the
  module never defines.
* ``unsynchronized-global-rebind`` — a ``global NAME`` rebind from
  function scope with neither a guard lock held nor an ``# unguarded-ok:``
  allowlist comment (lazy singletons and config knobs must choose one).
"""

import ast
import os
import re

from repro.analysis.code_lint import Violation

#: rule id -> one-line description (the catalog).
CONCURRENCY_RULES = {
    "unannotated-shared-state":
        "module-level mutable state mutated from function scope needs a "
        "# guarded-by: annotation",
    "unguarded-mutation":
        "annotated shared state is only mutated under its guard lock",
    "unknown-guard-lock":
        "# guarded-by: must name a lock defined in the same module",
    "unsynchronized-global-rebind":
        "global rebinds from function scope need a guard lock or an "
        "# unguarded-ok: reason",
}

GUARD_COMMENT_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
ALLOW_COMMENT_RE = re.compile(r"#\s*unguarded-ok:\s*(\S.*)$")

#: Callables whose result is a lock object.
_LOCK_FACTORIES = frozenset({
    "Lock", "RLock", "guard_lock", "InstrumentedLock",
})

#: Callables whose result is a mutable container.
_CONTAINER_FACTORIES = frozenset({
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque",
    "Counter", "shared_state",
})

#: Method names that mutate their receiver (dict / list / set / deque).
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end", "sort",
    "reverse", "appendleft", "popleft",
})


def _call_name(func):
    """The trailing name of a call target (``threading.Lock`` -> "Lock")."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _classify_value(value):
    """"lock" / "container" / None for a module-level assignment value."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return "container"
    if isinstance(value, ast.Call):
        name = _call_name(value.func)
        if name in _LOCK_FACTORIES:
            return "lock"
        if name in _CONTAINER_FACTORIES:
            return "container"
    return None


def _base_name(expr):
    """The root ``Name`` of a subscript/attribute chain, if any."""
    while isinstance(expr, (ast.Subscript, ast.Attribute)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _lock_name(expr):
    """The lock a ``with`` item acquires, by local or attribute name."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _comment_maps(source):
    """Per-line ``guarded-by`` / ``unguarded-ok`` comments.

    An ``# unguarded-ok:`` comment covers its own line and — when it
    opens a block of comment-only lines — the first code line after the
    block, so multi-line justifications work.
    """
    guards, allows = {}, {}
    pending_allow = None
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = GUARD_COMMENT_RE.search(line)
        if match:
            guards[lineno] = match.group(1)
        match = ALLOW_COMMENT_RE.search(line)
        if match:
            allows[lineno] = match.group(1)
        stripped = line.strip()
        if stripped.startswith("#"):
            if match:
                pending_allow = match.group(1)
        elif stripped:
            if pending_allow is not None:
                allows.setdefault(lineno, pending_allow)
            pending_allow = None
    return guards, allows


class ModuleInventory:
    """Module-level locks, annotated names, and mutable containers."""

    def __init__(self):
        self.locks = {}       # lock name -> def lineno
        self.annotated = {}   # name -> (guard lock name, def lineno)
        self.containers = {}  # name -> def lineno

    @classmethod
    def collect(cls, tree, guards):
        inventory = cls()
        for node in tree.body:
            for name, value, lineno in _module_assignments(node):
                kind = _classify_value(value)
                if kind == "lock":
                    inventory.locks.setdefault(name, lineno)
                    continue
                guard = guards.get(lineno) or guards.get(lineno - 1)
                if guard is not None:
                    inventory.annotated.setdefault(name, (guard, lineno))
                if kind == "container":
                    inventory.containers.setdefault(name, lineno)
        return inventory


def _module_assignments(node):
    """``(name, value, lineno)`` for simple module-level assignments."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id, node.value, node.lineno
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        if isinstance(node.target, ast.Name):
            yield node.target.id, node.value, node.lineno


class _GuardChecker(ast.NodeVisitor):
    def __init__(self, relpath, inventory, allows):
        self.relpath = relpath
        self.inventory = inventory
        self.allows = allows
        self.violations = []
        self.scope = []        # dotted scope names (classes + functions)
        self.functions = []    # per-function {"globals", "locals"}
        self.held = []         # stack of lock-name sets from with blocks

    # -- plumbing -------------------------------------------------------

    def _scope_name(self):
        return ".".join(self.scope) if self.scope else "<module>"

    def _emit(self, rule, node, symbol, message):
        self.violations.append(Violation(
            rule=rule,
            severity="error",
            path=self.relpath,
            line=getattr(node, "lineno", 0),
            scope=self._scope_name(),
            symbol=symbol,
            message=message,
        ))

    def _allowed(self, lineno):
        return lineno in self.allows or (lineno - 1) in self.allows

    def _holding(self, lock):
        return any(lock in frame for frame in self.held)

    def _in_function(self):
        return bool(self.functions)

    def _is_module_name(self, name):
        """Does *name* refer to module scope inside the current function?"""
        for frame in reversed(self.functions):
            if name in frame["globals"]:
                return True
            if name in frame["locals"]:
                return False
        return True

    # -- scope tracking -------------------------------------------------

    def visit_ClassDef(self, node):
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def _visit_function(self, node):
        self.scope.append(node.name)
        self.functions.append({
            "globals": _global_decls(node),
            "locals": _local_bindings(node),
        })
        self.generic_visit(node)
        self.functions.pop()
        self.scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node):
        names = set()
        for item in node.items:
            lock = _lock_name(item.context_expr)
            if lock is not None:
                names.add(lock)
        self.held.append(names)
        self.generic_visit(node)
        self.held.pop()

    visit_AsyncWith = visit_With

    # -- mutation sites -------------------------------------------------

    def _check_mutation(self, name, node, op):
        """A container mutation (subscript store, mutating method)."""
        if name is None or not self._in_function():
            return
        if not self._is_module_name(name):
            return
        annotated = self.inventory.annotated.get(name)
        if annotated is not None:
            guard = annotated[0]
            if self._holding(guard) or self._allowed(node.lineno):
                return
            self._emit(
                "unguarded-mutation", node, name,
                f"{op} on {name} outside `with {guard}:` — the structure "
                f"is annotated guarded-by {guard}; take the lock or mark "
                "the site # unguarded-ok: <reason>",
            )
        elif name in self.inventory.containers:
            if self._allowed(node.lineno):
                return
            self._emit(
                "unannotated-shared-state", node, name,
                f"{op} on module-level {name} from function scope, but "
                f"{name} has no # guarded-by: annotation — wrap it with "
                "repro.observe.race.shared_state and annotate its guard "
                "lock (see docs/static-analysis.md)",
            )

    def _check_rebind(self, name, node):
        """A ``global NAME`` rebind from function scope."""
        annotated = self.inventory.annotated.get(name)
        if annotated is not None:
            guard = annotated[0]
            if self._holding(guard) or self._allowed(node.lineno):
                return
            self._emit(
                "unguarded-mutation", node, name,
                f"rebind of {name} outside `with {guard}:` — the name is "
                f"annotated guarded-by {guard}",
            )
        elif name in self.inventory.containers:
            self._check_mutation(name, node, "rebind")
        else:
            if self._allowed(node.lineno) or self.held:
                return
            self._emit(
                "unsynchronized-global-rebind", node, name,
                f"global rebind of {name} from function scope without a "
                "lock: guard it (annotate the definition # guarded-by:) "
                "or mark the site # unguarded-ok: <reason>",
            )

    def _check_target(self, target, node):
        if isinstance(target, ast.Subscript):
            self._check_mutation(_base_name(target), node, "item write")
        elif isinstance(target, ast.Name) and self._in_function():
            if any(target.id in f["globals"] for f in self.functions):
                self._check_rebind(target.id, node)

    def visit_Assign(self, node):
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._check_target(element, node)
            else:
                self._check_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if node.value is not None:
            self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._check_mutation(_base_name(target), node, "item delete")
        self.generic_visit(node)

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            self._check_mutation(
                _base_name(func.value), node, f".{func.attr}()"
            )
        self.generic_visit(node)


def _global_decls(func_node):
    """Names declared ``global`` directly inside *func_node*."""
    names = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


def _local_bindings(func_node):
    """Names bound locally in *func_node* (params + simple assignments)."""
    names = set()
    args = func_node.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    declared_global = _global_decls(func_node)

    def bind(target):
        if isinstance(target, ast.Name):
            if target.id not in declared_global:
                names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element)

    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bind(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars)
    return names


def check_source(source, relpath):
    """Guarded-by check of one module's source text.

    *relpath* is package-relative (e.g. ``"repro/engine/buffer.py"``).
    Returns :class:`~repro.analysis.code_lint.Violation` in line order.
    """
    tree = ast.parse(source, filename=relpath)
    relpath = relpath.replace(os.sep, "/")
    guards, allows = _comment_maps(source)
    inventory = ModuleInventory.collect(tree, guards)
    checker = _GuardChecker(relpath, inventory, allows)
    checker.visit(tree)
    for name, (guard, lineno) in sorted(inventory.annotated.items()):
        if guard not in inventory.locks:
            checker.violations.append(Violation(
                rule="unknown-guard-lock",
                severity="error",
                path=relpath,
                line=lineno,
                scope="<module>",
                symbol=name,
                message=(
                    f"{name} is annotated guarded-by {guard}, but the "
                    f"module defines no lock named {guard}"
                ),
            ))
    return sorted(
        checker.violations,
        key=lambda v: (v.path, v.line, v.rule, v.symbol),
    )


def check_paths(paths):
    """Guarded-by check of files and directory trees (see
    :func:`repro.analysis.code_lint.lint_paths` for path keying)."""
    violations = []
    for argument in paths:
        argument = os.path.abspath(argument)
        base = os.path.dirname(argument)
        if os.path.isdir(argument):
            for dirpath, dirnames, filenames in os.walk(argument):
                dirnames.sort()
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    violations.extend(
                        _check_file(os.path.join(dirpath, filename), base)
                    )
        else:
            violations.extend(_check_file(argument, base))
    return sorted(
        violations, key=lambda v: (v.path, v.line, v.rule, v.symbol)
    )


def _check_file(full_path, base):
    relpath = os.path.relpath(full_path, base).replace(os.sep, "/")
    with open(full_path, encoding="utf-8") as handle:
        source = handle.read()
    return check_source(source, relpath)


def check_package():
    """Guarded-by check of the installed :mod:`repro` package tree."""
    import repro

    return check_paths([os.path.dirname(os.path.abspath(repro.__file__))])
