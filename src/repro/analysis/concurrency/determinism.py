"""The runtime phase of ``repro analyze --concurrency``.

Two dynamic checks over a real (small) store deployment, run with the
write barrier of :mod:`repro.observe.race` enabled:

* **race harness** — a threaded replay of the Zipf workload mix drives
  concurrent sessions through the shared connection; every annotated
  structure records accessor thread ids, and any mutation made without
  its guard lock held lands in :func:`repro.observe.race.race_report`.
* **determinism cross-check** — the same query sequence runs serially
  and again fanned across N threads, each query under the ``"cold"``
  buffer-pool protocol (the pool clears under the connection's execution
  lock, so per-query simulated costs are interleaving-independent).  The
  two runs' per-query cost documents must be **byte-identical**; any
  divergence means shared engine state leaked between queries.

The paper's tables are built from those simulated costs — this check is
the machine-verifiable statement that concurrency does not perturb them.
"""

import json
import threading

#: Defaults sized for CI: a few seconds end to end.
DEFAULT_TRIPLES = 3_000
DEFAULT_QUERIES = 32
DEFAULT_THREADS = 8
DEFAULT_SEED = 7
DEFAULT_WORKLOAD_SEED = 17


def _build_connection(triples, seed):
    import repro.api as api
    from repro.data import generate_barton

    dataset = generate_barton(
        n_triples=triples, n_properties=30, seed=seed
    )
    return api.connect(
        triples=dataset.triples,
        interesting_properties=dataset.interesting_properties,
    )


def _run_workload(connection, sequence, threads):
    """Per-query cost documents for *sequence*, in sequence order.

    Every query runs ``mode="cold"``: the buffer pool is cleared under
    the connection's execution lock immediately before the query, so its
    simulated cost depends only on the query itself — the property that
    makes serial and threaded runs comparable byte for byte.
    """
    costs = [None] * len(sequence)

    def run_range(indices):
        with connection.session() as session:
            for index in indices:
                result = session.query(sequence[index], mode="cold")
                costs[index] = json.dumps(
                    result.cost_dict(), sort_keys=True
                )

    if threads <= 1:
        run_range(range(len(sequence)))
        return costs
    workers = [
        threading.Thread(
            target=run_range,
            args=(range(worker, len(sequence), threads),),
            name=f"race-check-{worker}",
            daemon=True,
        )
        for worker in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    return costs


def run_concurrency_harness(triples=DEFAULT_TRIPLES,
                            queries=DEFAULT_QUERIES,
                            threads=DEFAULT_THREADS,
                            seed=DEFAULT_SEED,
                            workload_seed=DEFAULT_WORKLOAD_SEED,
                            connection=None):
    """Run both dynamic checks; returns a JSON-ready document.

    The document carries ``determinism`` (per-query serial-vs-threaded
    comparison) and ``race`` (the write-barrier report).  ``ok`` is True
    when the costs matched byte for byte *and* no unguarded mutation was
    recorded.  The write barrier is enabled for the duration and restored
    afterwards; recorded race state is reset on entry so the report only
    covers this harness run.
    """
    from repro.observe.race import (
        enable_race_check,
        race_check_enabled,
        race_report,
        reset_race_state,
    )
    from repro.server.replay import WorkloadMix

    was_enabled = race_check_enabled()
    enable_race_check(True)
    reset_race_state()
    try:
        if connection is None:
            connection = _build_connection(triples, seed)
        sequence = WorkloadMix(seed=workload_seed).sample(queries)
        serial = _run_workload(connection, sequence, threads=1)
        threaded = _run_workload(connection, sequence, threads=threads)
        mismatches = [
            {
                "index": index,
                "query": sequence[index],
                "serial": serial[index],
                "threaded": threaded[index],
            }
            for index in range(len(sequence))
            if serial[index] != threaded[index]
        ]
        race = race_report()
    finally:
        enable_race_check(was_enabled)
    determinism = {
        "queries": len(sequence),
        "threads": threads,
        "identical": not mismatches,
        "mismatches": mismatches[:10],
    }
    return {
        "determinism": determinism,
        "race": race,
        "ok": determinism["identical"] and race["violation_count"] == 0,
    }
