"""Head 3: concurrency-safety analysis.

Three cooperating layers, all zero-dependency:

* :mod:`repro.analysis.concurrency.guarded` — the **guarded-by static
  checker**: every module-level mutable object must be mutated under the
  lock its ``# guarded-by: <LockName>`` annotation names (ratcheted via
  ``concurrency-baseline.json``).
* :mod:`repro.analysis.concurrency.lockorder` — the **lock-order
  analyzer**: builds the static lock-acquisition graph from nested
  ``with`` blocks (plus same-module call edges) and fails on cycles —
  the classic deadlock precondition.
* :mod:`repro.observe.race` — the **runtime race harness** (re-exported
  here): ``REPRO_RACE_CHECK=1`` turns annotated structures into write
  barriers that record accessor thread ids and report mutations made
  without their guard lock held.  The harness lives under
  :mod:`repro.observe` so the engine substrate can import it without
  pulling in the analysis stack.

:mod:`repro.analysis.concurrency.determinism` drives the runtime phase of
``repro analyze --concurrency``: a serial-vs-threaded replay whose
per-query simulated costs must be byte-identical.
"""

from repro.analysis.concurrency.guarded import (
    CONCURRENCY_RULES,
    check_package,
    check_paths,
    check_source,
)
from repro.analysis.concurrency.lockorder import (
    build_lock_graph,
    lock_graph_document,
    lockorder_package,
    lockorder_paths,
    lockorder_source,
)
from repro.observe.race import (
    InstrumentedLock,
    enable_race_check,
    guard_lock,
    race_check_enabled,
    race_report,
    reset_race_state,
    shared_state,
)

#: Baseline file for the ratchet (repo root, next to lint-baseline.json).
CONCURRENCY_BASELINE_NAME = "concurrency-baseline.json"

__all__ = [
    "CONCURRENCY_RULES",
    "CONCURRENCY_BASELINE_NAME",
    "check_source",
    "check_paths",
    "check_package",
    "build_lock_graph",
    "lock_graph_document",
    "lockorder_source",
    "lockorder_paths",
    "lockorder_package",
    "InstrumentedLock",
    "guard_lock",
    "shared_state",
    "enable_race_check",
    "race_check_enabled",
    "race_report",
    "reset_race_state",
]
