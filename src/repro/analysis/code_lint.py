"""Head 2: the :mod:`ast`-based codebase invariant checker.

Repo-specific rules generic linters cannot express, keyed to the
guarantees the reproduction depends on:

* ``wall-clock-in-engine`` — the engines report *simulated* time; a
  ``time.time()`` / ``perf_counter()`` reachable from a simulated-cost
  path (``repro/engine/``, ``repro/exec/``, ``repro/cstore/``,
  ``repro/colstore/``, ``repro/rowstore/``) silently contaminates
  Tables 6/7.
* ``unseeded-random-in-engine`` — same paths: module-global ``random.*``
  or legacy ``numpy.random.*`` calls break run-to-run determinism; only
  explicitly seeded generators (``random.Random(seed)``,
  ``np.random.default_rng(seed)``) are allowed.
* ``set-iteration-in-report`` — benchmark/report output must be
  byte-identical between serial and parallel runs (PR 3's guarantee);
  iterating a bare ``set`` feeds hash order into output.  Applies to
  ``repro/bench/``, ``repro/observe/``, ``repro/analysis/``,
  ``repro/verify.py`` and ``repro/cli.py``.  ``sorted({...})`` is fine —
  the rule only fires when the set itself is the iterable.
* ``join-sort-hint`` — every call of the ``join_indices`` kernel must
  thread the ``assume_sorted`` sort-order hint explicitly; forgetting it
  silently degrades merge joins to re-sorting hash joins.
* ``plan-mutation`` — ``LogicalPlan`` nodes are immutable after
  construction (documented in :mod:`repro.plan.logical`); assigning to a
  plan-node field outside an ``__init__`` breaks plan sharing between the
  optimizer, the profiler and the engines.
* ``engine-internal-import`` — the per-engine executor modules
  (``repro.colstore.executor``, ``repro.rowstore.executor``) are
  compatibility shims over the unified runtime; new code must import
  execution machinery from :mod:`repro.exec` (or go through the
  :mod:`repro.api` facade), so cancellation, lowering-cache and stats
  behaviour stays in one place.

Run as ``repro lint``; existing violations are *ratcheted* via a
checked-in baseline (:mod:`repro.analysis.baseline`), never ignored.
"""

import ast
import os
from dataclasses import dataclass

#: rule id -> one-line description (the catalog).
CODE_RULES = {
    "wall-clock-in-engine":
        "no wall clock reachable from simulated-cost paths",
    "unseeded-random-in-engine":
        "no unseeded randomness reachable from simulated-cost paths",
    "set-iteration-in-report":
        "no bare-set iteration feeding benchmark/report output",
    "join-sort-hint":
        "join kernels must thread the assume_sorted hint explicitly",
    "plan-mutation":
        "LogicalPlan nodes are immutable after construction",
    "engine-internal-import":
        "engine executor shims are imported only via repro.exec/repro.api",
}

#: Package-relative path prefixes whose costs are simulated.
SIMULATED_COST_PREFIXES = (
    "repro/engine/",
    "repro/exec/",
    "repro/cstore/",
    "repro/colstore/",
    "repro/rowstore/",
)

#: Paths whose iteration order reaches benchmark/report output.
REPORT_PREFIXES = (
    "repro/bench/", "repro/observe/", "repro/analysis/",
    "repro/api/", "repro/server/",
)
REPORT_FILES = ("repro/verify.py", "repro/cli.py")

#: Engine executor modules that are compatibility shims over the unified
#: runtime (:mod:`repro.exec`); importing them anywhere else forks the
#: execution path.
ENGINE_INTERNAL_MODULES = (
    "repro.colstore.executor",
    "repro.rowstore.executor",
)
#: Where those imports remain legitimate: the unified runtime itself, the
#: public facade, and the shim modules' own packages re-exporting them.
ENGINE_INTERNAL_ALLOWED_PREFIXES = ("repro/exec/", "repro/api/")
ENGINE_INTERNAL_ALLOWED_FILES = (
    "repro/colstore/__init__.py",
    "repro/colstore/executor.py",
    "repro/rowstore/__init__.py",
    "repro/rowstore/executor.py",
)

_WALL_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    "clock",
})
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: numpy.random members that build explicitly seeded generators.
_SEEDED_CONSTRUCTORS = frozenset({"default_rng", "SeedSequence"})

#: Distinctive LogicalPlan field names (generic ones like ``value`` or
#: ``keys`` would drown the rule in false positives).
_PLAN_FIELDS = frozenset({
    "left", "right", "child", "on", "predicates", "mapping",
    "base_columns", "count_column", "aggregates", "inputs",
})


@dataclass(frozen=True)
class Violation:
    """One codebase-checker finding."""

    rule: str
    severity: str
    path: str    # package-relative posix path, e.g. "repro/engine/clock.py"
    line: int
    scope: str   # dotted enclosing defs, "<module>" at top level
    symbol: str  # the offending symbol, e.g. "time.perf_counter"
    message: str

    @property
    def fingerprint(self):
        """Line-number-free identity used by the ratchet baseline."""
        return f"{self.rule}::{self.path}::{self.scope}::{self.symbol}"

    def render(self):
        return (
            f"{self.path}:{self.line}: {self.severity} "
            f"[{self.rule}] {self.message}"
        )

    def to_dict(self):
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "scope": self.scope,
            "symbol": self.symbol,
            "message": self.message,
        }


def _in_simulated_cost_path(relpath):
    return relpath.startswith(SIMULATED_COST_PREFIXES)


def _in_report_path(relpath):
    return relpath.startswith(REPORT_PREFIXES) or relpath in REPORT_FILES


class _Checker(ast.NodeVisitor):
    def __init__(self, relpath):
        self.relpath = relpath
        self.violations = []
        self.scope = []
        # local alias -> canonical module ("time", "random", ...)
        self.module_aliases = {}
        # local name -> (module, member) for from-imports
        self.member_aliases = {}

    # -- helpers --------------------------------------------------------

    def _scope_name(self):
        return ".".join(self.scope) if self.scope else "<module>"

    def _emit(self, rule, severity, node, symbol, message):
        self.violations.append(Violation(
            rule=rule,
            severity=severity,
            path=self.relpath,
            line=getattr(node, "lineno", 0),
            scope=self._scope_name(),
            symbol=symbol,
            message=message,
        ))

    # -- imports --------------------------------------------------------

    _TRACKED_MODULES = ("time", "random", "datetime", "numpy")

    def visit_Import(self, node):
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in self._TRACKED_MODULES:
                self.module_aliases[alias.asname or root] = root
            if alias.name == "numpy.random":
                self.member_aliases[alias.asname or "numpy"] = (
                    "numpy", "random"
                )
            self._check_engine_internal(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        module = (node.module or "").split(".")[0]
        if module in self._TRACKED_MODULES:
            for alias in node.names:
                self.member_aliases[alias.asname or alias.name] = (
                    node.module, alias.name
                )
        if node.module:
            self._check_engine_internal(node, node.module)
            for alias in node.names:
                self._check_engine_internal(
                    node, f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def _check_engine_internal(self, node, module_name):
        if module_name not in ENGINE_INTERNAL_MODULES:
            return
        if self.relpath.startswith(ENGINE_INTERNAL_ALLOWED_PREFIXES):
            return
        if self.relpath in ENGINE_INTERNAL_ALLOWED_FILES:
            return
        self._emit(
            "engine-internal-import", "error", node, module_name,
            f"import of {module_name} (a compatibility shim) outside "
            "repro.exec/repro.api: import execution machinery from "
            "repro.exec, or query through the repro.api facade",
        )

    # -- scope tracking -------------------------------------------------

    def _visit_scoped(self, node):
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    visit_FunctionDef = _visit_scoped
    visit_AsyncFunctionDef = _visit_scoped
    visit_ClassDef = _visit_scoped

    # -- calls: wall clock, randomness, join hint -----------------------

    def visit_Call(self, node):
        self._check_wall_clock(node)
        self._check_random(node)
        self._check_join_hint(node)
        self.generic_visit(node)

    def _call_target(self, node):
        """Resolve ``module.member(...)`` / bare ``member(...)`` calls.

        Returns ``(module, member)`` with *module* canonicalized through
        the alias maps, or ``(None, None)``.
        """
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            module = self.module_aliases.get(func.value.id)
            if module is not None:
                return module, func.attr
            member = self.member_aliases.get(func.value.id)
            if member is not None:  # e.g. "from datetime import datetime"
                return ".".join(member), func.attr
        elif isinstance(func, ast.Name):
            member = self.member_aliases.get(func.id)
            if member is not None:
                return member
        return None, None

    def _check_wall_clock(self, node):
        if not _in_simulated_cost_path(self.relpath):
            return
        module, member = self._call_target(node)
        if module == "time" and member in _WALL_CLOCK_FUNCS:
            symbol = f"time.{member}"
        elif module in ("datetime.datetime", "datetime.date") \
                and member in _DATETIME_FUNCS:
            symbol = f"{module}.{member}"
        elif module == "datetime" and member in _DATETIME_FUNCS:
            symbol = f"datetime.{member}"
        else:
            return
        self._emit(
            "wall-clock-in-engine", "error", node, symbol,
            f"{symbol}() in a simulated-cost path: engine timings must "
            "come from the simulated query clock (repro.engine.clock), "
            "never the wall clock",
        )

    def _check_random(self, node):
        if not _in_simulated_cost_path(self.relpath):
            return
        module, member = self._call_target(node)
        if module == "random":
            if member in ("Random", "SystemRandom") and node.args:
                return  # explicitly seeded generator
            symbol = f"random.{member}"
        elif module in ("numpy", "numpy.random"):
            if module == "numpy":
                return  # plain numpy call; numpy.random handled below
            if member in _SEEDED_CONSTRUCTORS and node.args:
                return
            symbol = f"numpy.random.{member}"
        else:
            # np.random.<fn>(...) — an attribute chain through numpy.
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and self.module_aliases.get(func.value.value.id) == "numpy"
            ):
                return
            if func.attr in _SEEDED_CONSTRUCTORS and node.args:
                return
            symbol = f"numpy.random.{func.attr}"
        self._emit(
            "unseeded-random-in-engine", "error", node, symbol,
            f"{symbol}() in a simulated-cost path: only explicitly seeded "
            "generators (random.Random(seed), np.random.default_rng(seed)) "
            "keep runs deterministic",
        )

    def _check_join_hint(self, node):
        func = node.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if name != "join_indices":
            return
        if any(kw.arg == "assume_sorted" for kw in node.keywords):
            return
        self._emit(
            "join-sort-hint", "error", node, "join_indices",
            "join_indices(...) without an explicit assume_sorted= hint: "
            "every executor join entry point must thread the plan's "
            "sort-order metadata to the kernel",
        )

    # -- bare-set iteration ---------------------------------------------

    @staticmethod
    def _is_set_expr(node):
        return isinstance(node, (ast.Set, ast.SetComp)) or (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _check_set_iteration(self, iter_node, at):
        if not _in_report_path(self.relpath):
            return
        if self._is_set_expr(iter_node):
            self._emit(
                "set-iteration-in-report", "warning", at, "set",
                "iterating a bare set in a report/benchmark path: set "
                "order is hash order, which breaks byte-identical "
                "serial/parallel output; sort it or use a dict/list",
            )

    def visit_For(self, node):
        self._check_set_iteration(node.iter, node)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def _visit_comprehension(self, node):
        for generator in node.generators:
            self._check_set_iteration(generator.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node):
        # Building a set from a set is order-free; only *iteration into
        # ordered output* is hazardous — but a SetComp over a set feeds a
        # set, so skip the check on its own generators' set-ness result
        # while still recursing for nested constructs.
        self.generic_visit(node)

    # -- plan mutation ---------------------------------------------------

    def _check_plan_mutation(self, target, node):
        if not isinstance(target, ast.Attribute):
            return
        if target.attr not in _PLAN_FIELDS:
            return
        inside_init = (
            self.scope
            and self.scope[-1] == "__init__"
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )
        if inside_init:
            return
        self._emit(
            "plan-mutation", "error", node, target.attr,
            f"assignment to .{target.attr} outside __init__: LogicalPlan "
            "nodes are immutable after construction — build a new node "
            "(see plan/optimizer.py's _clone_with_children)",
        )

    def visit_Assign(self, node):
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._check_plan_mutation(element, node)
            else:
                self._check_plan_mutation(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        self._check_plan_mutation(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        self._check_plan_mutation(node.target, node)
        self.generic_visit(node)


def lint_source(source, relpath):
    """Check one module's source text; *relpath* is package-relative
    (e.g. ``"repro/engine/clock.py"``) and selects the path-scoped rules.
    Returns a list of :class:`Violation` in line order.
    """
    tree = ast.parse(source, filename=relpath)
    checker = _Checker(relpath.replace(os.sep, "/"))
    checker.visit(tree)
    return sorted(
        checker.violations,
        key=lambda v: (v.path, v.line, v.rule, v.symbol),
    )


def lint_paths(paths):
    """Check files and directory trees.

    Directory arguments are walked for ``*.py``; each file's
    package-relative path is computed against the *parent* of the argument
    (so passing ``.../src/repro`` keys files as ``repro/...``).  Returns
    violations sorted by path, line, rule.
    """
    violations = []
    for argument in paths:
        argument = os.path.abspath(argument)
        base = os.path.dirname(argument)
        if os.path.isdir(argument):
            for dirpath, dirnames, filenames in os.walk(argument):
                dirnames.sort()
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    full = os.path.join(dirpath, filename)
                    violations.extend(_lint_file(full, base))
        else:
            violations.extend(_lint_file(argument, base))
    return sorted(
        violations, key=lambda v: (v.path, v.line, v.rule, v.symbol)
    )


def _lint_file(full_path, base):
    relpath = os.path.relpath(full_path, base).replace(os.sep, "/")
    with open(full_path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, relpath)


def lint_package():
    """Check the installed :mod:`repro` package source tree."""
    import repro

    return lint_paths([os.path.dirname(os.path.abspath(repro.__file__))])
