"""Ratchet baseline for the codebase invariant checker.

Existing violations are recorded — not ignored — in a checked-in JSON
file keyed by line-number-free fingerprints with per-fingerprint counts.
``repro lint`` fails on any violation *beyond* its baselined count, so the
count can only go down ("ratchet"): fixing a violation and refreshing the
baseline tightens the gate permanently.

File format (sorted keys, trailing newline, so diffs are reviewable)::

    {
      "version": 1,
      "entries": {
        "<rule>::<path>::<scope>::<symbol>": <count>,
        ...
      }
    }
"""

import json

from repro.errors import ReproError

BASELINE_VERSION = 1

#: Conventional baseline file name at the repository root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def load_baseline(path):
    """Read a baseline file; returns ``{fingerprint: allowed_count}``."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "entries" not in document:
        raise ReproError(f"{path}: not a lint baseline file")
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise ReproError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = document["entries"]
    if not all(
        isinstance(k, str) and isinstance(v, int) and v > 0
        for k, v in entries.items()
    ):
        raise ReproError(f"{path}: malformed baseline entries")
    return dict(entries)


def counted(violations):
    """``{fingerprint: count}`` over a violation list."""
    counts = {}
    for v in violations:
        counts[v.fingerprint] = counts.get(v.fingerprint, 0) + 1
    return counts


def apply_baseline(violations, baseline):
    """Split violations into new vs baselined.

    Returns ``(new, suppressed_count, stale_fingerprints)`` where *new*
    are the violations exceeding their baselined count (all occurrences of
    an over-budget fingerprint are reported, so the report is actionable),
    and *stale_fingerprints* are baseline entries that no longer occur —
    the ratchet can be tightened with ``--update-baseline``.  *baseline*
    may be ``None`` (no baseline: every violation is new).
    """
    if baseline is None:
        baseline = {}
    counts = counted(violations)
    over_budget = {
        fp for fp, n in counts.items() if n > baseline.get(fp, 0)
    }
    new = [v for v in violations if v.fingerprint in over_budget]
    suppressed = len(violations) - len(new)
    stale = sorted(
        fp for fp, allowed in baseline.items()
        if counts.get(fp, 0) < allowed
    )
    return new, suppressed, stale


def write_baseline(path, violations):
    """Write the baseline for the given violations (sorted, stable)."""
    document = {
        "version": BASELINE_VERSION,
        "entries": dict(sorted(counted(violations).items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
