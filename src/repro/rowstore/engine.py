"""The row-store engine facade."""

from repro.engine import (
    MACHINE_A,
    ROW_STORE_COSTS,
    BufferPool,
    QueryClock,
    SimulatedDisk,
)
from repro.errors import StorageError
from repro.observe import NULL_OBSERVATION
from repro.plan.logical import count_operators
from repro.exec.runtime import Runtime
from repro.rowstore.table import RowTable


class RowStoreEngine:
    """DBX-like engine: clustered heaps, B+tree indexes, iterator executor.

    Usage::

        engine = RowStoreEngine()
        engine.create_table(
            "triples", {"subj": ..., "prop": ..., "obj": ...},
            sort_by=["prop", "subj", "obj"],          # clustering key
            indexes=[{"name": "idx_pos", "columns": ["prop", "obj", "subj"]}],
        )
        relation, timing = engine.run(plan)
    """

    kind = "row-store"

    #: Sequential heap scans stream in 512 KB requests.
    DEFAULT_MAX_RUN_BYTES = 512 * 1024

    #: Default page size: small, to keep per-table page floors proportionate
    #: in the 1:N scale model (see ColumnStoreEngine.DEFAULT_PAGE_SIZE).
    DEFAULT_PAGE_SIZE = 2048

    def __init__(self, machine=MACHINE_A, costs=ROW_STORE_COSTS,
                 page_size=DEFAULT_PAGE_SIZE, buffer_bytes=None,
                 max_run_bytes=DEFAULT_MAX_RUN_BYTES, btree_order=64,
                 observe=None):
        self.machine = machine
        self.costs = costs
        self.observe = observe if observe is not None else NULL_OBSERVATION
        self.disk = SimulatedDisk(page_size=page_size)
        self.clock = QueryClock(machine)
        if buffer_bytes is None:
            buffer_bytes = int(machine.ram_bytes * 0.8)
        self.pool = BufferPool(
            self.disk, self.clock, buffer_bytes, max_run_bytes=max_run_bytes,
            observe=self.observe,
        )
        self.btree_order = btree_order
        self._tables = {}
        self._executor = Runtime(self)

    def executor(self):
        """The engine's execution runtime (unified layer)."""
        return self._executor

    def lower(self, plan):
        """Physical plan for *plan* under this engine's operator set."""
        return self._executor.lower(plan)

    def install_observation(self, observe):
        """Install (or, with ``None``, remove) an Observation bundle."""
        self.observe = observe if observe is not None else NULL_OBSERVATION
        self.pool.observe = self.observe
        return self.observe

    # ------------------------------------------------------------------
    # DDL / catalog
    # ------------------------------------------------------------------

    def create_table(self, name, columns, sort_by=None, indexes=None,
                     presorted=False):
        """Create a table clustered on *sort_by* with secondary *indexes*.

        *indexes* is a list of ``{"name": ..., "columns": [...]}`` dicts
        (or None/empty for none).  *presorted* asserts the columns already
        arrive in clustering order (e.g. restored from the artifact cache),
        skipping the load sort.
        """
        if name in self._tables:
            raise StorageError(f"table already exists: {name!r}")
        table = RowTable(
            name,
            columns,
            self.disk,
            clustering=sort_by,
            indexes=indexes or (),
            btree_order=self.btree_order,
            presorted=presorted,
        )
        for index in table.all_indexes():
            self._wire_index_accounting(index)
        self._tables[name] = table
        return table

    def _wire_index_accounting(self, index):
        """Charge I/O + CPU for every B+tree node the executor touches."""
        pool, clock, segment = self.pool, self.clock, index.segment
        node_cost = self.costs.btree_node
        engine, index_name = self, index.name

        def on_access(page):
            pool.read_pages(segment, [page])
            clock.charge_cpu(node_cost)
            observe = engine.observe
            if observe.enabled:
                observe.metrics.counter(
                    "btree.node_visits", index=index_name
                ).inc()

        index.tree.on_access = on_access

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"no such table: {name!r}") from None

    def drop_table(self, name):
        """Drop a table, its heap, and every index segment."""
        table = self.table(name)
        self.disk.drop_segment(f"{name}.heap")
        for index in table.all_indexes():
            self.disk.drop_segment(f"{name}.{index.name}")
        del self._tables[name]

    def has_table(self, name):
        return name in self._tables

    def table_names(self):
        return list(self._tables)

    def database_bytes(self):
        return self.disk.total_bytes()

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def run(self, plan):
        """Execute a logical plan; returns ``(Relation, QueryTiming)``."""
        self.clock.reset()
        n_operators = count_operators(plan)
        self.clock.charge_cpu(
            self.costs.query_overhead
            + self.costs.plan_operator * n_operators
            + self.costs.plan_quadratic * n_operators * n_operators,
            category="plan",
        )
        relation = self._executor.execute(plan)
        self.clock.charge_cpu(
            self.costs.output_tuple * relation.n_rows, category="output"
        )
        return relation, self.clock.timing()

    def execute(self, plan):
        relation, _ = self.run(plan)
        return relation

    def make_cold(self):
        """Clear every cached page (server restart + cache flush)."""
        self.pool.clear()

    def io_history(self):
        return self.clock.io_history()
