"""Tuple-at-a-time physical operators (pull paradigm).

The row store's operator set for the unified execution layer
(:mod:`repro.exec`).  Physical plan construction follows what the paper
describes observing in DBX's plans:

* selections bind as long an equality prefix of an index as possible; the
  clustered index wins ties (no heap re-fetch),
* joins run as index nested loops when one side is a base table with an
  index leading on the join column, hash joins otherwise,
* everything else (grouping, having, union, distinct) is pipelined/
  materialized tuple-at-a-time with row-store CPU costs.

Operator functions return lazy :class:`~repro.exec.runtime.Stream` trees;
the work happens inside generators while a parent pulls, and the shared
runtime brackets every pull with the bound logical node's trace span.
"""

from repro.exec.common import (
    MISSING_VALUE,
    extend_fill_value,
    group_unit_cost,
    sort_cost,
    update_accumulator,
)
from repro.exec.registry import EngineOperatorSet, Lowered, match_type
from repro.exec.runtime import Stream
from repro.plan import logical as L
from repro.plan.predicates import is_column_comparison

#: Upper bound on outer cardinality for index nested loops.
INL_MAX_OUTER = 20_000

ROW_OPS = EngineOperatorSet("row-store", paradigm="pull")


# ---------------------------------------------------------------------------
# base-table access
# ---------------------------------------------------------------------------

def _base_column(scan, qualified):
    if scan.alias and qualified.startswith(scan.alias + "."):
        return qualified[len(scan.alias) + 1 :]
    return qualified


def _access_path(rt, scan, predicates):
    table = rt.engine.table(scan.table)
    out_columns = scan.output_columns()

    cross_preds = [
        (
            table.column_position(_base_column(scan, p.left)),
            table.column_position(_base_column(scan, p.right)),
            p,
        )
        for p in predicates
        if is_column_comparison(p)
    ]
    predicates = [p for p in predicates if not is_column_comparison(p)]
    base_preds = [(_base_column(scan, p.column), p) for p in predicates]
    # An equality against a constant missing from the dictionary can
    # never match: empty stream, no I/O.
    if any(p.value is None and p.is_equality() for _, p in base_preds):
        return Stream(out_columns, iter(()))

    eq_values = {}
    for col, p in base_preds:
        if p.is_equality() and col not in eq_values:
            eq_values[col] = p.value

    index, prefix_len = _choose_index(table, set(eq_values))
    if index is None:
        return _seq_scan(rt, table, scan, base_preds, cross_preds)
    prefix = tuple(eq_values[c] for c in index.key_columns[:prefix_len])
    # Only the specific predicate instances bound into the prefix are
    # satisfied by the index range; any further equality on the same
    # column (e.g. the contradictory ``x = 0 AND x = 3``) must stay a
    # residual filter.
    consumed_ids = set()
    for key_column in index.key_columns[:prefix_len]:
        for col, p in base_preds:
            if (
                id(p) not in consumed_ids
                and p.is_equality()
                and col == key_column
                and p.value == eq_values[key_column]
            ):
                consumed_ids.add(id(p))
                break
    residual = [
        (col, p) for col, p in base_preds if id(p) not in consumed_ids
    ]
    return _index_scan(rt, table, scan, index, prefix, residual, cross_preds)


def _choose_index(table, eq_columns):
    """Pick an access path: the clustered index whenever it binds any
    equality prefix, else the secondary with the longest prefix.

    Clustered-first mirrors what the paper observed in DBX's plans
    ("the beneficial impact of the PSO clustering; the remaining
    indices have little impact", Section 4.3): a clustered range is a
    sequential heap read, while a secondary pays one scattered heap
    fetch per match.
    """
    best = None
    for index in table.all_indexes():
        k = index.equality_prefix_length(eq_columns)
        if k == 0:
            continue
        rank = (1 if index.clustered else 0, k)
        if best is None or rank > best[0]:
            best = (rank, index)
    if best is None:
        return None, 0
    return best[1], best[0][1]


def _seq_scan(rt, table, scan, base_preds, cross_preds=()):
    out_columns = scan.output_columns()
    # Physical rows carry every table column; the scan may expose a
    # subset (e.g. one property column of the wide property table), so
    # project each emitted tuple to the declared columns.
    emit = [table.column_position(c) for c in scan.base_columns]

    def generate():
        rt.pool.read_segment(table.heap_segment)
        costs, clock = rt.costs, rt.clock
        preds = [(table.column_position(col), p) for col, p in base_preds]
        for row in table.rows:
            clock.charge_cpu(costs.scan_tuple)
            ok = True
            for pos, p in preds:
                clock.charge_cpu(costs.select_tuple)
                if not p.evaluate(row[pos]):
                    ok = False
                    break
            if ok:
                for left, right, p in cross_preds:
                    clock.charge_cpu(costs.select_tuple)
                    if not p.evaluate(row[left], row[right]):
                        ok = False
                        break
            if ok:
                yield tuple(row[i] for i in emit)

    return Stream(out_columns, generate())


def _index_scan(rt, table, scan, index, prefix, residual, cross_preds=()):
    out_columns = scan.output_columns()
    emit = [table.column_position(c) for c in scan.base_columns]

    def generate():
        row_ids = [rid for _, rid in index.tree.prefix_scan(prefix)]
        if not row_ids:
            return
        if index.clustered:
            lo, hi = min(row_ids), max(row_ids) + 1
            first, last = table.heap_pages_of_range(lo, hi)
            rt.pool.read_pages(table.heap_segment, range(first, last))
        else:
            pages = sorted({table.heap_page_of_row(rid) for rid in row_ids})
            rt.pool.read_pages(table.heap_segment, pages, scattered=True)
        costs, clock = rt.costs, rt.clock
        preds = [(table.column_position(col), p) for col, p in residual]
        for rid in row_ids:
            clock.charge_cpu(costs.scan_tuple)
            row = table.rows[rid]
            ok = True
            for pos, p in preds:
                clock.charge_cpu(costs.select_tuple)
                if not p.evaluate(row[pos]):
                    ok = False
                    break
            if ok:
                for left, right, p in cross_preds:
                    clock.charge_cpu(costs.select_tuple)
                    if not p.evaluate(row[left], row[right]):
                        ok = False
                        break
            if ok:
                yield tuple(row[i] for i in emit)

    return Stream(out_columns, generate())


def _match_access_path(node):
    if isinstance(node, L.Select) and isinstance(node.child, L.Scan):
        return Lowered(fused=(node.child,))
    if isinstance(node, L.Scan):
        return Lowered()
    return None


@ROW_OPS.operator(
    "access-path", _match_access_path,
    "heuristic base-table access: longest equality index prefix "
    "(clustered wins ties) with residual filters, else a heap scan",
)
def access_path(rt, pnode):
    node = pnode.logical
    if isinstance(node, L.Select):
        return _access_path(rt, node.child, node.predicates)
    return _access_path(rt, node, [])


# ---------------------------------------------------------------------------
# pipelined operators
# ---------------------------------------------------------------------------

def _filter(rt, stream, predicates):
    compiled = []
    for p in predicates:
        if is_column_comparison(p):
            compiled.append(
                (stream.position(p.left), stream.position(p.right), p)
            )
        else:
            compiled.append((stream.position(p.column), None, p))

    def generate():
        costs, clock = rt.costs, rt.clock
        for row in stream:
            ok = True
            for left, right, p in compiled:
                clock.charge_cpu(costs.select_tuple)
                if right is None:
                    if not p.evaluate(row[left]):
                        ok = False
                        break
                elif not p.evaluate(row[left], row[right]):
                    ok = False
                    break
            if ok:
                yield row

    return Stream(stream.columns, generate())


@ROW_OPS.operator(
    "filter", match_type(L.Select),
    "tuple-at-a-time predicate evaluation over a pipelined input",
)
def filter_(rt, pnode):
    return _filter(rt, rt.build_child(pnode.children[0]),
                   pnode.logical.predicates)


@ROW_OPS.operator(
    "filter", match_type(L.Having),
    "group filter: the Having predicate as a pipelined filter",
)
def having_filter(rt, pnode):
    return _filter(rt, rt.build_child(pnode.children[0]),
                   [pnode.logical.predicate])


@ROW_OPS.operator(
    "project", match_type(L.Project),
    "per-tuple column projection/rename",
)
def project(rt, pnode):
    stream = rt.build_child(pnode.children[0])
    mapping = pnode.logical.mapping
    positions = [stream.position(i) for _, i in mapping]

    def generate():
        for row in stream:
            yield tuple(row[p] for p in positions)

    return Stream([o for o, _ in mapping], generate())


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------

def _inner_candidate(rt, child, join_col):
    """(scan, predicates, table, index) when *child* is a base access
    with an index leading on the join column."""
    if isinstance(child, L.Select) and isinstance(child.child, L.Scan):
        scan, predicates = child.child, child.predicates
        if any(is_column_comparison(p) for p in predicates):
            return None
    elif isinstance(child, L.Scan):
        scan, predicates = child, []
    else:
        return None
    base_col = _base_column(scan, join_col)
    table = rt.engine.table(scan.table)
    best = None
    for index in table.all_indexes():
        if index.key_columns[0] != base_col:
            continue
        if best is None or (index.clustered and not best.clustered):
            best = index
    if best is None:
        return None
    return scan, predicates, table, best


def _index_nested_loop(rt, outer, outer_col, scan, inner_preds,
                       table, index, swap):
    outer_pos = outer.position(outer_col)
    inner_columns = scan.output_columns()
    if swap:
        out_columns = inner_columns + outer.columns
    else:
        out_columns = outer.columns + inner_columns
    base_preds = [
        (table.column_position(_base_column(scan, p.column)), p)
        for p in inner_preds
    ]
    emit = [table.column_position(c) for c in scan.base_columns]

    def generate():
        costs, clock = rt.costs, rt.clock
        for outer_row in outer:
            value = outer_row[outer_pos]
            row_ids = [rid for _, rid in index.tree.prefix_scan((value,))]
            if not row_ids:
                continue
            if index.clustered:
                lo, hi = min(row_ids), max(row_ids) + 1
                first, last = table.heap_pages_of_range(lo, hi)
                rt.pool.read_pages(table.heap_segment, range(first, last))
            else:
                pages = sorted(
                    {table.heap_page_of_row(rid) for rid in row_ids}
                )
                rt.pool.read_pages(
                    table.heap_segment, pages, scattered=True
                )
            for rid in row_ids:
                clock.charge_cpu(costs.scan_tuple)
                row = table.rows[rid]
                ok = True
                for pos, p in base_preds:
                    clock.charge_cpu(costs.select_tuple)
                    if not p.evaluate(row[pos]):
                        ok = False
                        break
                if not ok:
                    continue
                clock.charge_cpu(costs.union_tuple)
                inner_row = tuple(row[i] for i in emit)
                if swap:
                    yield inner_row + outer_row
                else:
                    yield outer_row + inner_row

    return Stream(out_columns, generate())


def _hash_join_streams(rt, left, right, on):
    left_rows = list(left)
    right_rows = list(right)
    lpos = [left.position(l) for l, _ in on]
    rpos = [right.position(r) for _, r in on]
    costs, clock = rt.costs, rt.clock

    if len(left_rows) <= len(right_rows):
        build_rows, build_pos = left_rows, lpos
        probe_rows, probe_pos = right_rows, rpos
        build_is_left = True
    else:
        build_rows, build_pos = right_rows, rpos
        probe_rows, probe_pos = left_rows, lpos
        build_is_left = False

    def generate():
        table = {}
        for row in build_rows:
            clock.charge_cpu(costs.hash_build)
            table.setdefault(
                tuple(row[p] for p in build_pos), []
            ).append(row)
        for row in probe_rows:
            clock.charge_cpu(costs.hash_probe)
            matches = table.get(tuple(row[p] for p in probe_pos), ())
            for match in matches:
                clock.charge_cpu(costs.union_tuple)
                if build_is_left:
                    yield match + row
                else:
                    yield row + match

    return Stream(left.columns + right.columns, generate())


@ROW_OPS.operator(
    "adaptive-join", match_type(L.Join),
    "index nested loops when an inner index leads on the join column and "
    "the materialized outer is small enough, hash join otherwise "
    "(policy via the runtime's join_strategy knob)",
)
def adaptive_join(rt, pnode):
    node = pnode.logical
    left_pnode, right_pnode = pnode.children
    if rt.join_strategy != "hash" and len(node.on) == 1:
        (lcol, rcol), = node.on
        for inner_pnode, inner_col, outer_pnode, outer_col, swap in (
            (right_pnode, rcol, left_pnode, lcol, False),
            (left_pnode, lcol, right_pnode, rcol, True),
        ):
            inner = _inner_candidate(rt, inner_pnode.logical, inner_col)
            if inner is None:
                continue
            scan, inner_preds, table, index = inner
            # Materialize the outer to learn its cardinality: a small
            # outer probes the index; a large one would touch more pages
            # than a scan, so the optimizer falls back to a hash join.
            outer = rt.build_child(outer_pnode)
            rows = list(outer)
            materialized = Stream(outer.columns, iter(rows))
            # Cost rule: each probe touches ~(height + 1) pages cold, so
            # prefer the index only when that upper bound beats a scan.
            probe_pages = 1 + index.tree.height()
            probed_bytes = (
                len(rows) * probe_pages * table.heap_segment.page_size
            )
            if rt.join_strategy == "inl" or (
                len(rows) <= INL_MAX_OUTER
                and probed_bytes < max(table.heap_segment.nbytes, 1)
            ):
                return _index_nested_loop(
                    rt, materialized, outer_col, scan, inner_preds,
                    table, index, swap=swap,
                )
            inner_stream = rt.build_child(inner_pnode)
            if swap:
                return _hash_join_streams(
                    rt, inner_stream, materialized, [(lcol, rcol)]
                )
            return _hash_join_streams(
                rt, materialized, inner_stream, [(lcol, rcol)]
            )
    left = rt.build_child(left_pnode)
    right = rt.build_child(right_pnode)
    return _hash_join_streams(rt, left, right, node.on)


# ---------------------------------------------------------------------------
# grouping, union, distinct
# ---------------------------------------------------------------------------

@ROW_OPS.operator(
    "hash-group", match_type(L.GroupBy),
    "hash aggregation (count/min/max) with sorted group emission",
)
def hash_group(rt, pnode):
    node = pnode.logical
    child = rt.build_child(pnode.children[0])
    positions = [child.position(k) for k in node.keys]
    agg_specs = [
        (func, child.position(input_column))
        for func, input_column, _ in node.aggregates
    ]
    costs, clock = rt.costs, rt.clock
    row_charge = group_unit_cost(costs, len(agg_specs))

    def generate():
        counts = {}
        accumulators = {}
        n_rows = 0
        for row in child:
            n_rows += 1
            clock.charge_cpu(row_charge)
            key = tuple(row[p] for p in positions)
            counts[key] = counts.get(key, 0) + 1
            if agg_specs:
                current = accumulators.get(key)
                if current is None:
                    accumulators[key] = [row[pos] for _, pos in agg_specs]
                else:
                    for i, (func, pos) in enumerate(agg_specs):
                        current[i] = update_accumulator(
                            func, current[i], row[pos]
                        )
        if not node.keys:
            aggregates = tuple(
                accumulators.get((), [MISSING_VALUE] * len(agg_specs))
            ) if agg_specs else ()
            yield (n_rows,) + tuple(aggregates)
            return
        for key in sorted(counts):
            aggregates = tuple(accumulators[key]) if agg_specs else ()
            yield key + (counts[key],) + aggregates

    return Stream(node.output_columns(), generate())


@ROW_OPS.operator(
    "pull-union", match_type(L.Union),
    "concatenate branch streams one at a time (seen-set for distinct)",
)
def pull_union(rt, pnode):
    node = pnode.logical
    out_columns = node.inputs[0].output_columns()
    costs, clock = rt.costs, rt.clock

    def generate():
        seen = set() if node.distinct else None
        for child_pnode in pnode.children:
            stream = rt.build_child(child_pnode)
            for row in stream:
                clock.charge_cpu(costs.union_tuple)
                if seen is None:
                    yield row
                elif row not in seen:
                    seen.add(row)
                    yield row

    return Stream(out_columns, generate())


@ROW_OPS.operator(
    "extend", match_type(L.Extend),
    "append a constant to every tuple",
)
def extend(rt, pnode):
    stream = rt.build_child(pnode.children[0])
    node = pnode.logical
    value = extend_fill_value(node.value)

    def generate():
        for row in stream:
            yield row + (value,)

    return Stream(stream.columns + [node.column], generate())


@ROW_OPS.operator(
    "tuple-sort", match_type(L.Sort),
    "materialize and stable-sort tuples, last key first",
)
def tuple_sort(rt, pnode):
    stream = rt.build_child(pnode.children[0])
    node = pnode.logical
    positions = [(stream.position(c), d == "desc") for c, d in node.keys]
    costs, clock = rt.costs, rt.clock

    def generate():
        rows = list(stream)
        clock.charge_cpu(sort_cost(costs, len(rows)))
        # Stable sorts applied last-key-first realize mixed asc/desc.
        for pos, descending in reversed(positions):
            rows.sort(key=lambda r: r[pos], reverse=descending)
        yield from rows

    return Stream(stream.columns, generate())


@ROW_OPS.operator(
    "limit", match_type(L.Limit),
    "stop pulling after n tuples",
)
def limit(rt, pnode):
    stream = rt.build_child(pnode.children[0])
    node = pnode.logical

    def generate():
        remaining = node.n
        for row in stream:
            if remaining <= 0:
                return
            remaining -= 1
            yield row

    return Stream(stream.columns, generate())


@ROW_OPS.operator(
    "tuple-distinct", match_type(L.Distinct),
    "seen-set deduplication, pipelined",
)
def tuple_distinct(rt, pnode):
    stream = rt.build_child(pnode.children[0])
    costs, clock = rt.costs, rt.clock

    def generate():
        seen = set()
        for row in stream:
            clock.charge_cpu(costs.group_tuple)
            if row not in seen:
                seen.add(row)
                yield row

    return Stream(stream.columns, generate())
