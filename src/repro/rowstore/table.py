"""Row tables: clustered heaps plus B+tree indexes.

A :class:`RowTable` stores tuples in a heap ordered by the clustering key.
The clustered B+tree maps clustering-key tuples to heap positions; reading a
clustered range is one contiguous heap read.  Secondary indexes map their
key columns to heap row ids; reading through one pays a scattered heap-page
fetch per row — the physical difference that makes the paper's SPO-vs-PSO
clustering comparison come out the way it does.
"""

import numpy as np

from repro.errors import StorageError
from repro.rowstore.btree import BPlusTree

ROW_HEADER_BYTES = 8  # per-row tuple header in the heap


class RowIndex:
    """A B+tree index (clustered or secondary) with its disk segment."""

    def __init__(self, name, key_columns, tree, segment, clustered):
        self.name = name
        self.key_columns = list(key_columns)
        self.tree = tree
        self.segment = segment
        self.clustered = clustered

    def equality_prefix_length(self, bound_columns):
        """How many leading key columns appear in *bound_columns*."""
        length = 0
        for col in self.key_columns:
            if col in bound_columns:
                length += 1
            else:
                break
        return length


class RowTable:
    """A heap of tuples clustered on a key, with optional secondaries."""

    def __init__(self, name, columns, disk, clustering, indexes=(),
                 btree_order=64, presorted=False):
        if not columns:
            raise StorageError(f"table {name!r} needs at least one column")
        clustering = list(clustering or [])
        for col in clustering:
            if col not in columns:
                raise StorageError(
                    f"clustering column {col!r} not in table {name!r}"
                )

        names = list(columns)
        arrays = [np.asarray(columns[c], dtype=np.int64) for c in names]
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise StorageError(f"ragged columns in table {name!r}")

        position = {c: i for i, c in enumerate(names)}
        if clustering and arrays[0].size and not presorted:
            # np.lexsort sorts by the last key first; it is stable, so ties
            # keep input order exactly like the sort it replaces.
            order = np.lexsort(
                tuple(arrays[position[c]] for c in reversed(clustering))
            )
            arrays = [a[order] for a in arrays]
        rows = list(zip(*(a.tolist() for a in arrays))) if arrays[0].size else []

        self.name = name
        self.columns = names
        self.clustering = clustering
        self.rows = rows
        self.n_rows = len(rows)
        self.row_bytes = ROW_HEADER_BYTES + 8 * len(names)
        self.heap_segment = disk.create_segment(
            f"{name}.heap", self.n_rows * self.row_bytes
        )
        self._position = position
        self.indexes = {}

        if clustering:
            self._build_index(
                f"{name}_clustered", clustering, disk, clustered=True,
                order=btree_order, arrays=arrays,
            )
        for spec in indexes or ():
            self._build_index(
                spec["name"], spec["columns"], disk, clustered=False,
                order=btree_order, arrays=arrays,
            )

    def _build_index(self, index_name, key_columns, disk, clustered, order,
                     arrays=None):
        for col in key_columns:
            if col not in self._position:
                raise StorageError(
                    f"index {index_name!r}: no column {col!r} in {self.name!r}"
                )
        if index_name in self.indexes:
            raise StorageError(f"duplicate index name {index_name!r}")
        key_pos = [self._position[c] for c in key_columns]
        if arrays is None:
            arrays = [
                np.fromiter(
                    (row[i] for row in self.rows), dtype=np.int64,
                    count=self.n_rows,
                )
                for i in range(len(self.columns))
            ]
        if self.n_rows:
            key_arrays = [arrays[i] for i in key_pos]
            # Stable lexsort == the stable tuple sort it replaces: equal
            # keys keep ascending row-id order.
            row_ids = np.lexsort(tuple(reversed(key_arrays)))
            keys = list(zip(*(a[row_ids].tolist() for a in key_arrays)))
            values = row_ids.tolist()
        else:
            keys, values = [], []
        tree = BPlusTree.from_sorted(keys, values, order=order)
        # One page per node; size the segment accordingly.
        segment = disk.create_segment(
            f"{self.name}.{index_name}",
            max(1, tree.n_nodes()) * disk.page_size,
        )
        self.indexes[index_name] = RowIndex(
            index_name, key_columns, tree, segment, clustered
        )

    # ------------------------------------------------------------------
    # physical access helpers (I/O charging is the executor's job)
    # ------------------------------------------------------------------

    def column_position(self, column):
        try:
            return self._position[column]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def clustered_index(self):
        if not self.clustering:
            return None
        return self.indexes.get(f"{self.name}_clustered")

    def secondary_indexes(self):
        return [i for i in self.indexes.values() if not i.clustered]

    def all_indexes(self):
        return list(self.indexes.values())

    def heap_page_of_row(self, row_id):
        """Segment-relative heap page number holding *row_id*."""
        return row_id * self.row_bytes // self.heap_segment.page_size

    def heap_pages_of_range(self, first_row, last_row):
        """Heap page span (inclusive-exclusive) of a contiguous row range."""
        if first_row >= last_row:
            return (0, 0)
        first = first_row * self.row_bytes // self.heap_segment.page_size
        last = ((last_row * self.row_bytes - 1)
                // self.heap_segment.page_size) + 1
        return (first, last)

    def bytes_on_disk(self):
        return self.heap_segment.nbytes + sum(
            i.segment.nbytes for i in self.indexes.values()
        )
