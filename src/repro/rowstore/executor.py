"""Tuple-at-a-time executor with heuristic access-path selection.

Physical plan construction follows what the paper describes observing in
DBX's plans:

* selections bind as long an equality prefix of an index as possible; the
  clustered index wins ties (no heap re-fetch),
* joins run as index nested loops when one side is a base table with an
  index leading on the join column, hash joins otherwise,
* everything else (grouping, having, union, distinct) is pipelined/
  materialized tuple-at-a-time with row-store CPU costs.
"""

from repro.errors import EngineError
from repro.plan import logical as L
from repro.plan.predicates import is_column_comparison
from repro.relation import Relation


class Stream:
    """A stream of tuples plus its (qualified) column names."""

    __slots__ = ("columns", "_iterator")

    def __init__(self, columns, iterator):
        self.columns = list(columns)
        self._iterator = iterator

    def __iter__(self):
        return iter(self._iterator)

    def position(self, column):
        try:
            return self.columns.index(column)
        except ValueError:
            raise EngineError(
                f"stream has no column {column!r}; has {self.columns}"
            ) from None


class RowExecutor:
    def __init__(self, engine):
        self.engine = engine
        self.costs = engine.costs
        self.clock = engine.clock
        self.pool = engine.pool

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def execute(self, plan):
        stream = self._build(plan)
        out_names = plan.output_columns()
        rows = list(stream)
        oid = set(out_names) - self._count_columns(plan)
        return Relation.from_rows(out_names, rows, oid_columns=oid)

    def _count_columns(self, plan):
        """Names of aggregate-output columns anywhere in the plan."""
        counts = set()
        for node in L.walk(plan):
            if isinstance(node, L.GroupBy):
                counts.add(node.count_column)
        return counts

    # ------------------------------------------------------------------
    # physical plan construction
    # ------------------------------------------------------------------

    def _build(self, node):
        """Build *node*'s stream; when an Observation is installed, wrap it
        so every tuple pull is attributed to the node's trace span.

        The executor is lazy — an operator's work happens inside its
        generator while a parent pulls — so attribution brackets each
        ``next()`` call; pulls from child streams (themselves wrapped)
        subtract automatically.  A Select fused with its Scan reports the
        combined access path under the Select node.
        """
        stream = self._dispatch(node)
        observe = self.engine.observe
        if observe.enabled:
            return self._traced_stream(node, stream, observe.tracer)
        return stream

    def _traced_stream(self, node, stream, tracer):
        def generate():
            iterator = iter(stream)
            span = None
            rows = 0
            while True:
                tracer.enter(node)
                try:
                    try:
                        row = next(iterator)
                    except StopIteration:
                        break
                finally:
                    tracer.exit(node)
                rows += 1
                if span is None:
                    span = tracer.span_for(node)
                if span is not None:
                    span.rows = rows
                yield row
            tracer.set_rows(node, rows)

        return Stream(stream.columns, generate())

    def _dispatch(self, node):
        if isinstance(node, L.Select) and isinstance(node.child, L.Scan):
            return self._access_path(node.child, node.predicates)
        if isinstance(node, L.Scan):
            return self._access_path(node, [])
        if isinstance(node, L.Select):
            return self._filter(self._build(node.child), node.predicates)
        if isinstance(node, L.Project):
            return self._project(self._build(node.child), node.mapping)
        if isinstance(node, L.Join):
            return self._join(node)
        if isinstance(node, L.GroupBy):
            return self._group_by(node)
        if isinstance(node, L.Having):
            return self._filter(self._build(node.child), [node.predicate])
        if isinstance(node, L.Union):
            return self._union(node)
        if isinstance(node, L.Distinct):
            return self._distinct(self._build(node.child))
        if isinstance(node, L.Extend):
            return self._extend(self._build(node.child), node)
        if isinstance(node, L.Sort):
            return self._sort(self._build(node.child), node)
        if isinstance(node, L.Limit):
            return self._limit(self._build(node.child), node)
        raise EngineError(f"row store cannot execute {type(node).__name__}")

    # ------------------------------------------------------------------
    # base-table access
    # ------------------------------------------------------------------

    def _access_path(self, scan, predicates):
        table = self.engine.table(scan.table)
        out_columns = scan.output_columns()

        cross_preds = [
            (
                table.column_position(self._base_column(scan, p.left)),
                table.column_position(self._base_column(scan, p.right)),
                p,
            )
            for p in predicates
            if is_column_comparison(p)
        ]
        predicates = [p for p in predicates if not is_column_comparison(p)]
        base_preds = [
            (self._base_column(scan, p.column), p) for p in predicates
        ]
        # An equality against a constant missing from the dictionary can
        # never match: empty stream, no I/O.
        if any(p.value is None and p.is_equality() for _, p in base_preds):
            return Stream(out_columns, iter(()))

        eq_values = {}
        for col, p in base_preds:
            if p.is_equality() and col not in eq_values:
                eq_values[col] = p.value

        index, prefix_len = self._choose_index(table, set(eq_values))
        if index is None:
            return self._seq_scan(table, scan, base_preds, cross_preds)
        prefix = tuple(eq_values[c] for c in index.key_columns[:prefix_len])
        # Only the specific predicate instances bound into the prefix are
        # satisfied by the index range; any further equality on the same
        # column (e.g. the contradictory ``x = 0 AND x = 3``) must stay a
        # residual filter.
        consumed_ids = set()
        for key_column in index.key_columns[:prefix_len]:
            for col, p in base_preds:
                if (
                    id(p) not in consumed_ids
                    and p.is_equality()
                    and col == key_column
                    and p.value == eq_values[key_column]
                ):
                    consumed_ids.add(id(p))
                    break
        residual = [
            (col, p) for col, p in base_preds if id(p) not in consumed_ids
        ]
        return self._index_scan(
            table, scan, index, prefix, residual, cross_preds
        )

    def _choose_index(self, table, eq_columns):
        """Pick an access path: the clustered index whenever it binds any
        equality prefix, else the secondary with the longest prefix.

        Clustered-first mirrors what the paper observed in DBX's plans
        ("the beneficial impact of the PSO clustering; the remaining
        indices have little impact", Section 4.3): a clustered range is a
        sequential heap read, while a secondary pays one scattered heap
        fetch per match.
        """
        best = None
        for index in table.all_indexes():
            k = index.equality_prefix_length(eq_columns)
            if k == 0:
                continue
            rank = (1 if index.clustered else 0, k)
            if best is None or rank > best[0]:
                best = (rank, index)
        if best is None:
            return None, 0
        return best[1], best[0][1]

    def _base_column(self, scan, qualified):
        if scan.alias and qualified.startswith(scan.alias + "."):
            return qualified[len(scan.alias) + 1 :]
        return qualified

    def _seq_scan(self, table, scan, base_preds, cross_preds=()):
        out_columns = scan.output_columns()
        # Physical rows carry every table column; the scan may expose a
        # subset (e.g. one property column of the wide property table), so
        # project each emitted tuple to the declared columns.
        emit = [table.column_position(c) for c in scan.base_columns]

        def generate():
            self.pool.read_segment(table.heap_segment)
            costs, clock = self.costs, self.clock
            preds = [
                (table.column_position(col), p) for col, p in base_preds
            ]
            for row in table.rows:
                clock.charge_cpu(costs.scan_tuple)
                ok = True
                for pos, p in preds:
                    clock.charge_cpu(costs.select_tuple)
                    if not p.evaluate(row[pos]):
                        ok = False
                        break
                if ok:
                    for left, right, p in cross_preds:
                        clock.charge_cpu(costs.select_tuple)
                        if not p.evaluate(row[left], row[right]):
                            ok = False
                            break
                if ok:
                    yield tuple(row[i] for i in emit)

        return Stream(out_columns, generate())

    def _index_scan(self, table, scan, index, prefix, residual,
                    cross_preds=()):
        out_columns = scan.output_columns()
        emit = [table.column_position(c) for c in scan.base_columns]

        def generate():
            row_ids = [rid for _, rid in index.tree.prefix_scan(prefix)]
            if not row_ids:
                return
            if index.clustered:
                lo, hi = min(row_ids), max(row_ids) + 1
                first, last = table.heap_pages_of_range(lo, hi)
                self.pool.read_pages(table.heap_segment, range(first, last))
            else:
                pages = sorted(
                    {table.heap_page_of_row(rid) for rid in row_ids}
                )
                self.pool.read_pages(
                    table.heap_segment, pages, scattered=True
                )
            costs, clock = self.costs, self.clock
            preds = [(table.column_position(col), p) for col, p in residual]
            for rid in row_ids:
                clock.charge_cpu(costs.scan_tuple)
                row = table.rows[rid]
                ok = True
                for pos, p in preds:
                    clock.charge_cpu(costs.select_tuple)
                    if not p.evaluate(row[pos]):
                        ok = False
                        break
                if ok:
                    for left, right, p in cross_preds:
                        clock.charge_cpu(costs.select_tuple)
                        if not p.evaluate(row[left], row[right]):
                            ok = False
                            break
                if ok:
                    yield tuple(row[i] for i in emit)

        return Stream(out_columns, generate())

    # ------------------------------------------------------------------
    # pipelined operators
    # ------------------------------------------------------------------

    def _filter(self, stream, predicates):
        compiled = []
        for p in predicates:
            if is_column_comparison(p):
                compiled.append(
                    (stream.position(p.left), stream.position(p.right), p)
                )
            else:
                compiled.append((stream.position(p.column), None, p))

        def generate():
            costs, clock = self.costs, self.clock
            for row in stream:
                ok = True
                for left, right, p in compiled:
                    clock.charge_cpu(costs.select_tuple)
                    if right is None:
                        if not p.evaluate(row[left]):
                            ok = False
                            break
                    elif not p.evaluate(row[left], row[right]):
                        ok = False
                        break
                if ok:
                    yield row

        return Stream(stream.columns, generate())

    def _project(self, stream, mapping):
        positions = [stream.position(i) for _, i in mapping]

        def generate():
            for row in stream:
                yield tuple(row[p] for p in positions)

        return Stream([o for o, _ in mapping], generate())

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    #: Upper bound on outer cardinality for index nested loops.
    INL_MAX_OUTER = 20_000

    #: Join-method policy: "auto" (cost rule), "hash" (never probe), or
    #: "inl" (always probe when an index exists).  The non-auto settings
    #: exist for the join-strategy ablation bench.
    join_strategy = "auto"

    def _join(self, node):
        if self.join_strategy != "hash" and len(node.on) == 1:
            (lcol, rcol), = node.on
            for inner_node, inner_col, outer_node, outer_col, swap in (
                (node.right, rcol, node.left, lcol, False),
                (node.left, lcol, node.right, rcol, True),
            ):
                inner = self._inner_candidate(inner_node, inner_col)
                if inner is None:
                    continue
                scan, inner_preds, table, index = inner
                # Materialize the outer to learn its cardinality: a small
                # outer probes the index; a large one would touch more pages
                # than a scan, so the optimizer falls back to a hash join.
                outer = self._build(outer_node)
                rows = list(outer)
                materialized = Stream(outer.columns, iter(rows))
                # Cost rule: each probe touches ~(height + 1) pages cold, so
                # prefer the index only when that upper bound beats a scan.
                probe_pages = 1 + index.tree.height()
                probed_bytes = len(rows) * probe_pages * table.heap_segment.page_size
                if self.join_strategy == "inl" or (
                    len(rows) <= self.INL_MAX_OUTER
                    and probed_bytes < max(table.heap_segment.nbytes, 1)
                ):
                    return self._index_nested_loop(
                        materialized, outer_col, scan, inner_preds,
                        table, index, swap=swap,
                    )
                inner_stream = self._build(inner_node)
                if swap:
                    return self._hash_join_streams(
                        inner_stream, materialized, [(lcol, rcol)]
                    )
                return self._hash_join_streams(
                    materialized, inner_stream, [(lcol, rcol)]
                )
        left = self._build(node.left)
        right = self._build(node.right)
        return self._hash_join_streams(left, right, node.on)

    def _inner_candidate(self, child, join_col):
        """(scan, predicates, table, index) when *child* is a base access
        with an index leading on the join column."""
        if isinstance(child, L.Select) and isinstance(child.child, L.Scan):
            scan, predicates = child.child, child.predicates
            if any(is_column_comparison(p) for p in predicates):
                return None
        elif isinstance(child, L.Scan):
            scan, predicates = child, []
        else:
            return None
        base_col = self._base_column(scan, join_col)
        table = self.engine.table(scan.table)
        best = None
        for index in table.all_indexes():
            if index.key_columns[0] != base_col:
                continue
            if best is None or (index.clustered and not best.clustered):
                best = index
        if best is None:
            return None
        return scan, predicates, table, best

    def _index_nested_loop(self, outer, outer_col, scan, inner_preds,
                           table, index, swap):
        outer_pos = outer.position(outer_col)
        inner_columns = scan.output_columns()
        if swap:
            out_columns = inner_columns + outer.columns
        else:
            out_columns = outer.columns + inner_columns
        base_preds = [
            (table.column_position(self._base_column(scan, p.column)), p)
            for p in inner_preds
        ]
        emit = [table.column_position(c) for c in scan.base_columns]

        def generate():
            costs, clock = self.costs, self.clock
            for outer_row in outer:
                value = outer_row[outer_pos]
                row_ids = [
                    rid for _, rid in index.tree.prefix_scan((value,))
                ]
                if not row_ids:
                    continue
                if index.clustered:
                    lo, hi = min(row_ids), max(row_ids) + 1
                    first, last = table.heap_pages_of_range(lo, hi)
                    self.pool.read_pages(
                        table.heap_segment, range(first, last)
                    )
                else:
                    pages = sorted(
                        {table.heap_page_of_row(rid) for rid in row_ids}
                    )
                    self.pool.read_pages(
                        table.heap_segment, pages, scattered=True
                    )
                for rid in row_ids:
                    clock.charge_cpu(costs.scan_tuple)
                    row = table.rows[rid]
                    ok = True
                    for pos, p in base_preds:
                        clock.charge_cpu(costs.select_tuple)
                        if not p.evaluate(row[pos]):
                            ok = False
                            break
                    if not ok:
                        continue
                    clock.charge_cpu(costs.union_tuple)
                    inner_row = tuple(row[i] for i in emit)
                    if swap:
                        yield inner_row + outer_row
                    else:
                        yield outer_row + inner_row

        return Stream(out_columns, generate())

    def _hash_join_streams(self, left, right, on):
        left_rows = list(left)
        right_rows = list(right)
        lpos = [left.position(l) for l, _ in on]
        rpos = [right.position(r) for _, r in on]
        costs, clock = self.costs, self.clock

        if len(left_rows) <= len(right_rows):
            build_rows, build_pos = left_rows, lpos
            probe_rows, probe_pos = right_rows, rpos
            build_is_left = True
        else:
            build_rows, build_pos = right_rows, rpos
            probe_rows, probe_pos = left_rows, lpos
            build_is_left = False

        def generate():
            table = {}
            for row in build_rows:
                clock.charge_cpu(costs.hash_build)
                table.setdefault(
                    tuple(row[p] for p in build_pos), []
                ).append(row)
            for row in probe_rows:
                clock.charge_cpu(costs.hash_probe)
                matches = table.get(tuple(row[p] for p in probe_pos), ())
                for match in matches:
                    clock.charge_cpu(costs.union_tuple)
                    if build_is_left:
                        yield match + row
                    else:
                        yield row + match

        return Stream(left.columns + right.columns, generate())

    # ------------------------------------------------------------------
    # grouping, union, distinct
    # ------------------------------------------------------------------

    def _group_by(self, node):
        child = self._build(node.child)
        positions = [child.position(k) for k in node.keys]
        agg_specs = [
            (func, child.position(input_column))
            for func, input_column, _ in node.aggregates
        ]
        costs, clock = self.costs, self.clock

        def generate():
            counts = {}
            accumulators = {}
            n_rows = 0
            for row in child:
                n_rows += 1
                clock.charge_cpu(costs.group_tuple * (1 + len(agg_specs)))
                key = tuple(row[p] for p in positions)
                counts[key] = counts.get(key, 0) + 1
                if agg_specs:
                    current = accumulators.get(key)
                    if current is None:
                        accumulators[key] = [
                            row[pos] for _, pos in agg_specs
                        ]
                    else:
                        for i, (func, pos) in enumerate(agg_specs):
                            value = row[pos]
                            if func == "min":
                                if value < current[i]:
                                    current[i] = value
                            elif value > current[i]:
                                current[i] = value
            if not node.keys:
                aggregates = tuple(
                    accumulators.get((), [-1] * len(agg_specs))
                ) if agg_specs else ()
                yield (n_rows,) + tuple(aggregates)
                return
            for key in sorted(counts):
                aggregates = (
                    tuple(accumulators[key]) if agg_specs else ()
                )
                yield key + (counts[key],) + aggregates

        return Stream(node.output_columns(), generate())

    def _union(self, node):
        out_columns = node.inputs[0].output_columns()
        costs, clock = self.costs, self.clock

        def generate():
            seen = set() if node.distinct else None
            for child in node.inputs:
                stream = self._build(child)
                for row in stream:
                    clock.charge_cpu(costs.union_tuple)
                    if seen is None:
                        yield row
                    elif row not in seen:
                        seen.add(row)
                        yield row

        return Stream(out_columns, generate())

    def _extend(self, stream, node):
        value = -1 if node.value is None else node.value

        def generate():
            for row in stream:
                yield row + (value,)

        return Stream(stream.columns + [node.column], generate())

    def _sort(self, stream, node):
        import math

        positions = [
            (stream.position(c), d == "desc") for c, d in node.keys
        ]
        costs, clock = self.costs, self.clock

        def generate():
            rows = list(stream)
            n = len(rows)
            clock.charge_cpu(
                costs.sort_item * n * max(1, math.log2(max(n, 2)))
            )
            # Stable sorts applied last-key-first realize mixed asc/desc.
            for pos, descending in reversed(positions):
                rows.sort(key=lambda r: r[pos], reverse=descending)
            yield from rows

        return Stream(stream.columns, generate())

    def _limit(self, stream, node):
        def generate():
            remaining = node.n
            for row in stream:
                if remaining <= 0:
                    return
                remaining -= 1
                yield row

        return Stream(stream.columns, generate())

    def _distinct(self, stream):
        costs, clock = self.costs, self.clock

        def generate():
            seen = set()
            for row in stream:
                clock.charge_cpu(costs.group_tuple)
                if row not in seen:
                    seen.add(row)
                    yield row

        return Stream(stream.columns, generate())
