"""Compatibility shim for the legacy row executor entry points.

The tuple-at-a-time interpretation loop that used to live here moved into
the unified execution layer: the operator bodies are registered in
:mod:`repro.rowstore.operators` and driven by
:class:`repro.exec.runtime.Runtime`.  ``RowExecutor`` is now an alias of
the shared runtime (same ``execute(plan)`` surface and ``join_strategy``
knob the ablation bench pokes), kept so existing imports and
``engine._executor`` users keep working.
"""

from repro.exec.runtime import Runtime as RowExecutor
from repro.exec.runtime import Stream
from repro.rowstore.operators import INL_MAX_OUTER

__all__ = ["RowExecutor", "Stream", "INL_MAX_OUTER"]
