"""A B+tree over integer-tuple keys.

Keys are tuples of ints (composite index keys); values are integer row ids.
Duplicate keys are allowed.  The tree supports bulk loading from sorted
pairs, point/prefix/range scans, and single-pair insertion (used by tests
and by incremental loads).

Each node corresponds to one simulated disk page.  The tree itself is a
pure data structure; callers that want I/O and CPU accounting set
``on_access`` to a callback invoked with the node's page number on every
node visit (descent steps and leaf hops alike).
"""

import bisect

from repro.errors import StorageError


class _Node:
    __slots__ = ("page", "keys")


class _Leaf(_Node):
    __slots__ = ("values", "next_leaf")

    def __init__(self, page):
        self.page = page
        self.keys = []
        self.values = []
        self.next_leaf = None

    is_leaf = True


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self, page):
        self.page = page
        self.keys = []      # separator keys; len(children) == len(keys) + 1
        self.children = []  # node page numbers

    is_leaf = False


class BPlusTree:
    """B+tree with configurable fan-out (max keys per node)."""

    def __init__(self, order=64, on_access=None):
        if order < 3:
            raise StorageError("B+tree order must be at least 3")
        self.order = order
        self.on_access = on_access
        #: Lifetime count of node visits (descent steps and leaf hops) by
        #: queries — the row store's per-probe work, surfaced in profiles.
        self.node_visits = 0
        self._nodes = []
        root = self._new_leaf()
        self._root_page = root.page
        self._n_entries = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(cls, pairs, order=64, fill_factor=0.7, on_access=None):
        """Build a tree from ``(key, value)`` pairs sorted by key."""
        pairs = list(pairs)
        keys = [tuple(k) for k, _ in pairs]
        if any(b < a for a, b in zip(keys, keys[1:])):
            raise StorageError("bulk_load requires key-sorted input")
        return cls.from_sorted(
            keys,
            [v for _, v in pairs],
            order=order,
            fill_factor=fill_factor,
            on_access=on_access,
        )

    @classmethod
    def from_sorted(cls, keys, values, order=64, fill_factor=0.7,
                    on_access=None):
        """Bottom-up constructor from pre-sorted parallel sequences.

        *keys* must be a sequence of key tuples already in ascending order
        (not re-verified) and *values* the parallel value sequence.  Leaves
        are packed directly from slices and each internal level is assembled
        from the level below with its separator keys taken from the tracked
        subtree minima — no per-pair inserts, no descent walks.  This is the
        fast path the storage builders use: loading a table's indexes this
        way is O(n) after the caller's sort instead of O(n log n) tree
        inserts with node splits.
        """
        tree = cls(order=order, on_access=on_access)
        n = len(keys)
        if n == 0:
            return tree
        if len(values) != n:
            raise StorageError("from_sorted needs parallel keys and values")

        tree._nodes = []
        per_node = max(2, int(order * fill_factor))
        leaves = []
        for start in range(0, n, per_node):
            leaf = tree._new_leaf()
            leaf.keys = list(keys[start : start + per_node])
            leaf.values = list(values[start : start + per_node])
            leaves.append(leaf)
        for a, b in zip(leaves, leaves[1:]):
            a.next_leaf = b.page

        level = leaves
        minima = [leaf.keys[0] for leaf in leaves]
        while len(level) > 1:
            parents = []
            parent_minima = []
            for start in range(0, len(level), per_node):
                chunk = level[start : start + per_node]
                node = tree._new_internal()
                node.children = [c.page for c in chunk]
                node.keys = minima[start + 1 : start + len(chunk)]
                parents.append(node)
                parent_minima.append(minima[start])
            level = parents
            minima = parent_minima
        tree._root_page = level[0].page
        tree._n_entries = n
        return tree

    def insert(self, key, value):
        """Insert one pair (duplicates allowed)."""
        key = tuple(key)
        path = []
        node = self._node(self._root_page)
        while not node.is_leaf:
            path.append(node)
            index = bisect.bisect_right(node.keys, key)
            node = self._node(node.children[index])
        index = bisect.bisect_right(node.keys, key)
        node.keys.insert(index, key)
        node.values.insert(index, value)
        self._n_entries += 1
        if len(node.keys) > self.order:
            self._split(node, path)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self):
        return self._n_entries

    def height(self):
        """Number of levels (1 for a lone leaf)."""
        levels = 1
        node = self._node(self._root_page)
        while not node.is_leaf:
            levels += 1
            node = self._node(node.children[0])
        return levels

    def n_nodes(self):
        return len(self._nodes)

    def search(self, key):
        """All values stored under exactly *key*."""
        key = tuple(key)
        return [v for _, v in self.range_scan(key, _upper_bound(key))]

    def prefix_scan(self, prefix):
        """Yield ``(key, value)`` for every key starting with *prefix*."""
        prefix = tuple(prefix)
        return self.range_scan(prefix, _upper_bound(prefix))

    def range_scan(self, lo, hi):
        """Yield ``(key, value)`` pairs with ``lo <= key < hi``.

        *lo* of ``None`` means unbounded below, *hi* of ``None`` unbounded
        above.  Key comparison is tuple comparison, so a short *lo* tuple
        acts as an inclusive prefix bound.
        """
        leaf, index = self._descend(lo)
        while leaf is not None:
            keys = leaf.keys
            while index < len(keys):
                key = keys[index]
                if hi is not None and not key < hi:
                    return
                yield key, leaf.values[index]
                index += 1
            if leaf.next_leaf is None:
                return
            leaf = self._node(leaf.next_leaf)
            self._touch(leaf)
            index = 0

    def items(self):
        """Every pair in key order."""
        return self.range_scan(None, None)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _descend(self, key):
        """Leaf and in-leaf position of the first key >= *key*."""
        node = self._node(self._root_page)
        self._touch(node)
        while not node.is_leaf:
            if key is None:
                index = 0
            else:
                # bisect_left: duplicates equal to a separator may live at
                # the end of the left sibling (bulk load packs contiguously),
                # so descend left and let the leaf hop move forward if empty.
                index = bisect.bisect_left(node.keys, tuple(key))
            node = self._node(node.children[index])
            self._touch(node)
        if key is None:
            return node, 0
        index = bisect.bisect_left(node.keys, tuple(key))
        if index == len(node.keys) and node.next_leaf is not None:
            nxt = self._node(node.next_leaf)
            self._touch(nxt)
            return nxt, 0
        return node, index

    def _touch(self, node):
        self.node_visits += 1
        if self.on_access is not None:
            self.on_access(node.page)

    def _node(self, page):
        return self._nodes[page]

    def _new_leaf(self):
        leaf = _Leaf(len(self._nodes))
        self._nodes.append(leaf)
        return leaf

    def _new_internal(self):
        node = _Internal(len(self._nodes))
        self._nodes.append(node)
        return node

    def _subtree_min(self, node):
        while not node.is_leaf:
            node = self._node(node.children[0])
        return node.keys[0]

    def _split(self, node, path):
        mid = len(node.keys) // 2
        if node.is_leaf:
            sibling = self._new_leaf()
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling.page
            separator = sibling.keys[0]
        else:
            sibling = self._new_internal()
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]

        if not path:
            root = self._new_internal()
            root.keys = [separator]
            root.children = [node.page, sibling.page]
            self._root_page = root.page
            return
        parent = path[-1]
        index = bisect.bisect_right(parent.keys, separator)
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, sibling.page)
        if len(parent.keys) > self.order:
            self._split(parent, path[:-1])


def _upper_bound(prefix):
    """Smallest tuple greater than every tuple starting with *prefix*."""
    prefix = tuple(prefix)
    if not prefix:
        return None
    return prefix[:-1] + (prefix[-1] + 1,)
