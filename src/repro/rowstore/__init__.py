"""DBX-like row-store engine.

A from-scratch relational row engine standing in for the "well-known — for
its performance — commercial row-store DBMS" the paper calls DBX:

* tables are heaps of tuples clustered by a B+tree key (a real B+tree,
  bulk-loaded, with range and prefix scans),
* secondary (unclustered) B+tree indexes map keys to row ids; reading
  through them pays scattered heap-page fetches,
* queries run tuple-at-a-time through iterator operators with row-store CPU
  costs, after a heuristic access-path/join-method selection that mirrors
  what the paper observed DBX's optimizer doing (index prefix matching,
  index nested-loop joins, hash fallback),
* every plan operator carries a fixed optimizer/instantiation charge — the
  term that blows up on the "more than two hundred unions and joins" of
  full-scale vertically-partitioned queries (Section 4.2).
"""

from repro.rowstore.engine import RowStoreEngine
from repro.rowstore.btree import BPlusTree

__all__ = ["RowStoreEngine", "BPlusTree"]
