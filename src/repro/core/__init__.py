"""Public high-level API.

:class:`RDFStore` wraps the whole stack — engine, storage scheme, dictionary,
query builders, SQL front-end — behind one object::

    from repro.core import RDFStore

    store = RDFStore.from_triples(triples, engine="column", scheme="vertical")
    rows = store.sql("SELECT A.obj, count(*) FROM triples AS A "
                     "WHERE A.prop = '<type>' GROUP BY A.obj")
    bindings = store.solve([(Var("s"), "<type>", "<Text>"),
                            (Var("s"), "<language>", Var("lang"))])
"""

from repro.core.store import RDFStore, Var
from repro.core.bgp import bgp_plan

__all__ = ["RDFStore", "Var", "bgp_plan"]
