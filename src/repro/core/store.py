"""The RDFStore facade.

Construction and deployment (engine × scheme × clustering) live here; the
*query* entry points (:meth:`RDFStore.sql`, :meth:`RDFStore.sparql`,
:meth:`RDFStore.solve`) are thin deprecation shims over the stable public
API in :mod:`repro.api` — new code should use
``repro.api.connect(...).session().query(...)``, which adds sessions,
timeouts, result objects carrying simulated costs, and a prepared-plan
cache.  The shims delegate to an internal
:class:`~repro.api.Connection`, so results and simulated costs are
identical to the new surface by construction.
"""

import warnings

from repro.bench.runner import BenchmarkRunner
from repro.colstore import ColumnStoreEngine
from repro.core.bgp import bgp_plan
from repro.errors import StorageError
from repro.model.parser import parse_ntriples_text
from repro.model.triple import Variable
from repro.plan.render import render_physical_plan, render_plan
from repro.queries import ALL_QUERY_NAMES, build_query
from repro.rowstore import RowStoreEngine
from repro.sql.planner import plan_sql
from repro.storage import build_triple_store, build_vertical_store

#: Convenience alias so user code reads ``Var("s")``.
Var = Variable

_ENGINES = {
    "column": ColumnStoreEngine,
    "row": RowStoreEngine,
}

_SCHEMES = ("triple", "vertical")


class RDFStore:
    """An RDF database: one engine hosting one storage scheme.

    Parameters
    ----------
    triples:
        Iterable of :class:`~repro.model.triple.Triple` (or 3-tuples of
        strings).
    engine:
        ``"column"`` (MonetDB-like, the default) or ``"row"`` (DBX-like).
    scheme:
        ``"vertical"`` (one table per property, the proposal evaluated by
        the paper) or ``"triple"`` (single triples table).
    clustering:
        Triple-store clustering order (default ``"PSO"``, the paper's
        recommendation); ignored for the vertical scheme.
    interesting_properties:
        The property subset used by the benchmark's restricted queries;
        default: the 28 most frequent properties in the data.
    """

    def __init__(self, triples, engine="column", scheme="vertical",
                 clustering="PSO", interesting_properties=None,
                 engine_options=None):
        if engine not in _ENGINES:
            raise StorageError(
                f"unknown engine {engine!r}; expected one of {sorted(_ENGINES)}"
            )
        if scheme not in _SCHEMES:
            raise StorageError(
                f"unknown scheme {scheme!r}; expected one of {_SCHEMES}"
            )
        triples = [t if hasattr(t, "s") else _as_triple(t) for t in triples]
        # RDF graphs are sets of statements: duplicate inputs are one triple.
        seen = set()
        unique = []
        for t in triples:
            key = (t.s, t.p, t.o)
            if key not in seen:
                seen.add(key)
                unique.append(t)
        triples = unique
        if interesting_properties is None:
            interesting_properties = _top_properties(triples, 28)

        self.engine_kind = engine
        self.scheme = scheme
        self.engine = _ENGINES[engine](**(engine_options or {}))
        if scheme == "triple":
            self.catalog = build_triple_store(
                self.engine, triples, interesting_properties,
                clustering=clustering,
            )
        else:
            self.catalog = build_vertical_store(
                self.engine, triples, interesting_properties,
            )
        self.n_triples = len(triples)
        self._runner = BenchmarkRunner(self.engine)
        self._api_connection = None  # lazy repro.api.Connection

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_triples(cls, triples, **options):
        """Build a store from an iterable of triples (or 3-tuples)."""
        return cls(triples, **options)

    @classmethod
    def from_ntriples(cls, text, **options):
        """Build a store from N-Triples text."""
        return cls(parse_ntriples_text(text), **options)

    @classmethod
    def from_file(cls, path, **options):
        """Build a store from an N-Triples file (``.gz`` supported)."""
        from repro.model.parser import parse_ntriples_file

        return cls(parse_ntriples_file(path), **options)

    # ------------------------------------------------------------------
    # querying — deprecation shims over repro.api
    # ------------------------------------------------------------------

    def connection(self):
        """The store's :class:`repro.api.Connection` (created lazily).

        The stable query surface: ``store.connection().session().query(...)``.
        All sessions share this store's engine and buffer pool.
        """
        if self._api_connection is None:
            from repro.api import Connection

            self._api_connection = Connection(self)
        return self._api_connection

    @staticmethod
    def _deprecated(old, new):
        warnings.warn(
            f"{old} is deprecated; use {new} (see docs/api.md)",
            DeprecationWarning, stacklevel=3,
        )

    def sql(self, sql_text, optimize=False):
        """Run SQL against the store; returns decoded row tuples.

        .. deprecated:: 1.1
           Thin shim over :meth:`repro.api.Session.query`; use
           ``store.connection().session().query(sql)`` (or
           :func:`repro.api.connect`) to also get simulated costs,
           timeouts and profiles on the result.

        Against a vertical store, write SQL in triple-store terms and pass
        it through :func:`repro.sql.generate_vertical_sql` first, or query
        the per-property tables (``vp_<oid>``) directly.

        With ``optimize=True`` the cost-based join-order optimizer rewrites
        the join trees before execution (an extension; the benchmark tables
        always run the paper-shaped plans).
        """
        self._deprecated("RDFStore.sql()", "repro.api Session.query()")
        return self.connection().session().query(
            sql_text, optimize=optimize
        ).rows

    def solve(self, patterns, projection=None):
        """Evaluate a basic graph pattern; returns a list of binding dicts.

        .. deprecated:: 1.1
           Thin shim over :meth:`repro.api.Session.solve`.

        Patterns are ``(s, p, o)`` triples of constants and :class:`Var`
        terms, e.g.::

            store.solve([(Var("s"), "<type>", "<Text>"),
                         (Var("s"), "<language>", Var("lang"))])
        """
        return self.connection().session().solve(patterns, projection)

    def sparql(self, text):
        """Run a SPARQL SELECT over the store; returns binding dicts.

        .. deprecated:: 1.1
           Thin shim over :meth:`repro.api.Session.query`; use
           ``store.connection().session().query(sparql).bindings()``.

        Supports the basic-graph-pattern fragment: ``SELECT [DISTINCT]
        ?vars|* WHERE { patterns . FILTER(...) } [LIMIT n]``.
        """
        self._deprecated("RDFStore.sparql()", "repro.api Session.query()")
        return self.connection().session().query(text).bindings()

    def match(self, s=None, p=None, o=None):
        """All triples matching the given constants (None = wildcard)."""
        pattern = (
            s if s is not None else Var("s"),
            p if p is not None else Var("p"),
            o if o is not None else Var("o"),
        )
        bindings = self.solve([pattern])
        result = []
        for binding in bindings:
            result.append(
                (
                    binding.get("s", s),
                    binding.get("p", p),
                    binding.get("o", o),
                )
            )
        return result

    # ------------------------------------------------------------------
    # the benchmark
    # ------------------------------------------------------------------

    def benchmark_query(self, name, mode="hot", scope=None):
        """Run benchmark query *name* (q1..q8, q2*..q6*) under the paper's
        cold/hot protocol; returns ``(decoded_rows, QueryTiming)``."""
        plan = build_query(self.catalog, name, scope=scope)
        captured = {}

        def execute():
            relation, timing = self.engine.run(plan)
            captured["relation"] = relation
            return relation, timing

        result = self._runner.run(name, execute, mode)
        relation = captured["relation"]
        rows = relation.decoded_tuples(
            self.catalog.dictionary, order=plan.output_columns()
        )
        return rows, result.timing

    def benchmark_queries(self):
        """The benchmark query names this store can run."""
        return list(ALL_QUERY_NAMES)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def explain(self, sql_or_patterns, physical=False):
        """Render the logical plan for SQL text or a BGP pattern list.

        With ``physical=True``, additionally render the engine-lowered
        physical operator tree the unified execution layer will run.
        """
        if isinstance(sql_or_patterns, str):
            plan = plan_sql(sql_or_patterns, self.catalog)
        else:
            plan, _ = bgp_plan(self.catalog, sql_or_patterns)
        rendered = render_plan(plan)
        if physical:
            rendered += "\n\nphysical plan:\n" + render_physical_plan(
                self.engine.lower(plan)
            )
        return rendered

    def profile(self, query, mode="cold", scope=None):
        """EXPLAIN ANALYZE: run *query* with full observability and return
        a :class:`~repro.observe.profiler.QueryProfile`.

        *query* is a benchmark query name (``q1``..``q8``, ``q2*``..),
        SPARQL text (anything containing ``{``), or SQL text.  *mode* is
        ``"cold"`` (buffer pool cleared first, the default) or ``"hot"``
        (one unobserved warm-up run first).
        """
        from repro.observe.profiler import profile_plan

        plan = self._plan_for(query, scope=scope)
        return profile_plan(self.engine, plan, mode=mode, query=query)

    def analyze(self, query, scope=None, physical=False):
        """Run the static plan linter over *query* without executing it.

        *query* is a benchmark query name (``q1``..``q8``, ``q2*``..),
        SPARQL text (anything containing ``{``), or SQL text.  Returns the
        list of :class:`~repro.analysis.Diagnostic` findings, most severe
        first (empty = clean).

        With ``physical=True`` the plan is first lowered through this
        store's engine registry and the physical rule set (e.g.
        ``wrong-engine-operator``) runs alongside the logical rules.
        """
        from repro.analysis import lint_physical_plan, lint_plan

        plan = self._plan_for(query, scope=scope)
        if physical:
            return list(lint_physical_plan(self.engine.lower(plan)))
        return list(lint_plan(plan))

    def _plan_for(self, query, scope=None):
        if query in ALL_QUERY_NAMES:
            return build_query(self.catalog, query, scope=scope)
        if "{" in query:
            from repro.sparql import parse_sparql
            from repro.sparql.executor import sparql_plan

            plan, _names = sparql_plan(self.catalog, parse_sparql(query))
            return plan
        return plan_sql(query, self.catalog)

    def statistics(self):
        """Table-1-style statistics of the loaded data
        (:class:`~repro.data.stats.DatasetStatistics`)."""
        from repro.data.stats import compute_statistics
        from repro.model.triple import Triple

        return compute_statistics(Triple(*t) for t in self.match())

    def table_names(self):
        return self.engine.table_names()

    def database_bytes(self):
        """Simulated on-disk footprint of the deployed scheme."""
        return self.engine.database_bytes()

    def make_cold(self):
        """Clear the buffer pool (simulated server restart)."""
        self.engine.make_cold()


def _as_triple(value):
    from repro.model.triple import Triple

    s, p, o = value
    return Triple(s, p, o)


def _top_properties(triples, k):
    counts = {}
    for t in triples:
        counts[t.p] = counts.get(t.p, 0) + 1
    ranked = sorted(counts, key=lambda p: (-counts[p], p))
    return ranked[: min(k, len(ranked))]
