"""Basic graph pattern (BGP) to logical plan translation.

A BGP is a conjunction of triple patterns — the core of SPARQL and the
query model of the paper's Section 2.2.  This module lowers a BGP onto
whichever storage scheme the catalog describes:

* triple-store: one aliased scan of the triples table per pattern,
* vertically-partitioned: a scan of the bound property's table, or a UNION
  over all property tables when the property is a variable (exactly the
  expansion the paper's Section 4.2 discusses).

Patterns sharing variables become equi-joins; the join classes realized are
the paper's A (subject-subject), B (object-object) and C (object-subject).
"""

from repro.errors import PlanError
from repro.model.triple import Variable, is_variable
from repro.plan import (
    ColumnComparison,
    Comparison,
    Extend,
    Join,
    Project,
    Scan,
    Select,
    Union,
)


def bgp_plan(catalog, patterns, projection=None):
    """Build a logical plan for a conjunction of triple *patterns*.

    Each pattern is an ``(s, p, o)`` triple of constants (strings) and
    :class:`~repro.model.triple.Variable` terms.  Returns ``(plan,
    variable_names)`` where the plan's output columns are the projected
    variables in order.
    """
    patterns = [tuple(p) for p in patterns]
    if not patterns:
        raise PlanError("a BGP needs at least one pattern")

    relations = []
    for index, pattern in enumerate(patterns):
        relations.append(_pattern_relation(catalog, index, pattern))

    variable_columns = _variable_columns(patterns)
    plan = _join_connected(relations, patterns, variable_columns)

    if projection is None:
        projection = sorted(variable_columns)
    missing = [v for v in projection if v not in variable_columns]
    if missing:
        raise PlanError(f"projected variables not in BGP: {missing}")
    if not projection:
        # Fully-bound BGP: an existence check.  Project any column; one
        # output row per match.
        mapping = [("__exists__", plan.output_columns()[0])]
        return Project(plan, mapping), []
    mapping = [(name, variable_columns[name][0]) for name in projection]
    return Project(plan, mapping), list(projection)


def _pattern_relation(catalog, index, pattern):
    """A relation exposing columns T{i}.subj / T{i}.prop / T{i}.obj for the
    pattern's variable components, filtered by its constants."""
    s, p, o = pattern
    alias = f"T{index}"
    if catalog.is_triple_store():
        node = Scan(catalog.triples_table, ["subj", "prop", "obj"], alias=alias)
        predicates = []
        for component, term in zip(("subj", "prop", "obj"), pattern):
            if not is_variable(term):
                predicates.append(
                    Comparison(f"{alias}.{component}", "=", catalog.encode(term))
                )
        return Select(node, predicates) if predicates else node

    # Vertically-partitioned: dispatch on whether the property is bound.
    if not is_variable(p):
        table = catalog.property_tables.get(p)
        if table is None:
            # Unknown property: empty relation, via an unsatisfiable select
            # on any existing table (there is always at least one).
            table = next(iter(catalog.property_tables.values()))
            node = Scan(table, ["subj", "obj"], alias=alias)
            return Select(node, [Comparison(f"{alias}.subj", "=", None)])
        node = Scan(table, ["subj", "obj"], alias=alias)
        predicates = _so_predicates(catalog, alias, s, o)
        return Select(node, predicates) if predicates else node

    # Property variable: union over every property table, tagged with the
    # property oid (the paper's "sizable SQL clause").
    branches = []
    for i, prop in enumerate(catalog.properties_for("all")):
        branch_alias = f"{alias}_{i}"
        node = Scan(
            catalog.property_table(prop), ["subj", "obj"], alias=branch_alias
        )
        predicates = _so_predicates(catalog, branch_alias, s, o)
        if predicates:
            node = Select(node, predicates)
        node = Extend(node, f"{branch_alias}.prop", catalog.encode(prop))
        branches.append(
            Project(
                node,
                [
                    (f"{alias}.subj", f"{branch_alias}.subj"),
                    (f"{alias}.prop", f"{branch_alias}.prop"),
                    (f"{alias}.obj", f"{branch_alias}.obj"),
                ],
            )
        )
    return Union(branches, distinct=False)


def _so_predicates(catalog, alias, s, o):
    predicates = []
    if not is_variable(s):
        predicates.append(Comparison(f"{alias}.subj", "=", catalog.encode(s)))
    if not is_variable(o):
        predicates.append(Comparison(f"{alias}.obj", "=", catalog.encode(o)))
    return predicates


def _variable_columns(patterns):
    """variable name -> list of qualified columns where it occurs."""
    columns = {}
    for index, pattern in enumerate(patterns):
        for component, term in zip(("subj", "prop", "obj"), pattern):
            if is_variable(term):
                columns.setdefault(term.name, []).append(
                    f"T{index}.{component}"
                )
    return columns


def _join_connected(relations, patterns, variable_columns):
    """Left-deep join tree over patterns connected by shared variables.

    Every variable co-occurrence becomes either a join condition (the first
    one connecting a new pattern) or a post-join column-column filter
    (cyclic BGPs, and variables occurring three or more times)."""
    n = len(relations)
    joined = {0}
    plan = relations[0]
    while len(joined) < n:
        progress = False
        for index in range(n):
            if index in joined:
                continue
            condition = _connecting_condition(index, joined, variable_columns)
            if condition is None:
                continue
            left_col, right_col = condition
            plan = Join(plan, relations[index], on=[(left_col, right_col)])
            joined.add(index)
            progress = True
        if not progress:
            raise PlanError(
                "BGP is not connected: cartesian products are not supported"
            )
    # Enforce every remaining same-variable equality (cycles, triple
    # occurrences) with post-join filters.
    residual = []
    for name, columns in variable_columns.items():
        anchor = columns[0]
        for other in columns[1:]:
            residual.append(ColumnComparison(anchor, "=", other))
    # Joins already enforce transitively-connected equalities, but applying
    # them again is harmless (always-true filters) and covers the cyclic
    # edges that joins missed.
    if residual:
        plan = Select(plan, residual)
    return plan


def _connecting_condition(index, joined, variable_columns):
    prefix = f"T{index}."
    for name, columns in variable_columns.items():
        mine = [c for c in columns if c.startswith(prefix)]
        theirs = [
            c
            for c in columns
            if any(c.startswith(f"T{j}.") for j in joined)
        ]
        if mine and theirs:
            return (theirs[0], mine[0])
    return None
