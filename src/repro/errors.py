"""Exception hierarchy shared by every subsystem of the reproduction.

Each substrate raises the most specific subclass it can; callers that only
want to know "did the RDF stack fail" can catch :class:`ReproError`.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DictionaryError(ReproError):
    """A string dictionary lookup or insertion failed."""


class ParseError(ReproError):
    """Malformed input text (N-Triples data or SQL)."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SQLError(ParseError):
    """Malformed or unsupported SQL text."""


class PlanError(ReproError):
    """A logical plan could not be built or bound to a schema."""


class StorageError(ReproError):
    """A storage scheme was asked for something it cannot represent."""


class EngineError(ReproError):
    """A query engine failed while executing a physical plan."""


class UnsupportedOperationError(EngineError):
    """The engine does not implement the requested operation.

    Used notably by the C-Store replica, which (like the artifact studied in
    the paper) only ships hard-wired plans for q1-q7 over the
    vertically-partitioned storage scheme.
    """


class BufferPoolError(EngineError):
    """The simulated buffer pool was used incorrectly."""


class BenchmarkError(ReproError):
    """A benchmark experiment was configured inconsistently."""


class QueryCancelled(EngineError):
    """Execution was cancelled cooperatively mid-query.

    Raised by the unified runtime when a
    :class:`~repro.exec.cancel.CancellationToken` installed by the caller
    is set: the physical operator tree unwinds cleanly (buffer-pool and
    catalog state stay consistent; only the in-flight relation is lost).
    """


class QueryTimeout(QueryCancelled):
    """A query exceeded its deadline and was cancelled.

    The session layer arms a timer for ``Session.query(..., timeout=)``;
    when it fires, the in-flight query is cancelled at the next operator
    boundary (or while still queued, if the server never started it).
    """


class SessionClosed(ReproError):
    """A query was issued on a closed Session or Connection."""


class ServerOverloaded(ReproError):
    """The query server's admission queue is full (HTTP 429).

    Backpressure is explicit: rather than queueing without bound, the
    session scheduler rejects work beyond its configured queue depth and
    the client is expected to retry or shed load.
    """
