"""The C-Store replica engine with its seven hardwired query plans.

The engine deliberately mirrors the research-prototype nature of the
artifact the paper studied:

* it loads **only** the vertically-partitioned scheme, restricted to the
  28 interesting properties ("C-Store is loaded with data associated with
  28 properties, hence the small size"),
* queries are **hardwired**: ``run("q3")`` dispatches to a handwritten plan;
  there is no SQL layer, no optimizer, and no way to run q8 or the
  full-scale variants — exactly the extensibility wall the paper hit.
"""

from collections import Counter

import numpy as np

from repro.engine import (
    CSTORE_COSTS,
    MACHINE_A,
    BufferPool,
    QueryClock,
    SimulatedDisk,
)
from repro.errors import StorageError, UnsupportedOperationError
from repro.dictionary import Dictionary
from repro.queries.definitions import CONSTANTS
from repro.relation import Relation
from repro.cstore.kvstore import KVCatalog, OrderedKV

#: The only queries the artifact implements.
CSTORE_QUERIES = ("q1", "q2", "q3", "q4", "q5", "q6", "q7")

#: Synchronous request size: each read pays the full seek, so the engine
#: sustains only ~40-55 MB/s of the 105-385 MB/s the RAIDs offer — the
#: "small fraction of the I/O bandwidth" behaviour behind Figure 5.
MAX_REQUEST_BYTES = 256 * 1024


class CStoreEngine:
    """Hardwired vertically-partitioned query engine over an ordered KV."""

    kind = "c-store"

    def __init__(self, machine=MACHINE_A, costs=CSTORE_COSTS, page_size=8192,
                 buffer_bytes=None):
        self.machine = machine
        self.costs = costs
        self.disk = SimulatedDisk(page_size=page_size)
        self.clock = QueryClock(machine)
        if buffer_bytes is None:
            buffer_bytes = int(machine.ram_bytes * 0.8)
        self.pool = BufferPool(
            self.disk,
            self.clock,
            buffer_bytes,
            max_run_bytes=MAX_REQUEST_BYTES,
            sequential_coalescing=False,
        )
        self.catalog = KVCatalog()
        self.subject_projections = KVCatalog()
        self.dictionary = None
        self.properties = []
        self._loaded = False

    # ------------------------------------------------------------------
    # loading (vertically-partitioned only)
    # ------------------------------------------------------------------

    def load_vertical(self, triples, interesting_properties, dictionary=None):
        """Load the 28-property vertically-partitioned data."""
        if self._loaded:
            raise StorageError("C-Store replica is already loaded")
        if dictionary is None:
            dictionary = Dictionary()
        interesting = list(interesting_properties)
        wanted = set(interesting)
        loaded = [t for t in triples if t.p in wanted]
        # Bulk-encode with one encode_many call; the flattened (s, o, p)
        # order preserves the oid assignment of the per-triple loop this
        # replaces, so the stored keys are byte-identical.
        flat = []
        push = flat.append
        for t in loaded:
            push(t.s)
            push(t.o)
            push(t.p)
        oids = dictionary.encode_many(flat)
        groups = {p: [] for p in interesting}
        for i, t in enumerate(loaded):
            groups[t.p].append(((oids[3 * i], oids[3 * i + 1]), 0))
        for p in interesting:
            oid = dictionary.encode(p)
            self.catalog.add(
                p,
                OrderedKV(
                    f"vp_{oid}",
                    groups[p],
                    self.disk,
                    self.pool,
                    self.clock,
                    self.costs.btree_node,
                ),
            )
            # C-Store keeps single-column projections too: a subject-only
            # projection serves the count-style scans of q2/q6 with roughly
            # half the bytes of the (subject, object) projection.
            self.subject_projections.add(
                p,
                OrderedKV(
                    f"vp_{oid}_s",
                    [((s,), 0) for (s, _o), _ in groups[p]],
                    self.disk,
                    self.pool,
                    self.clock,
                    self.costs.btree_node,
                    order=2 * OrderedKV.DEFAULT_ORDER,
                ),
            )
        self.dictionary = dictionary.freeze()
        self.properties = interesting
        self._loaded = True
        return self

    def create_table(self, *args, **kwargs):
        raise UnsupportedOperationError(
            "the C-Store replica has no DDL: storage schemes other than the "
            "built-in vertically-partitioned load are hardwired out "
            "(paper, Section 3)"
        )

    def database_bytes(self):
        return (
            self.catalog.total_bytes()
            + self.subject_projections.total_bytes()
        )

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def run(self, query_name):
        """Run a hardwired query; returns ``(Relation, QueryTiming)``."""
        if not self._loaded:
            raise StorageError("load_vertical() must be called first")
        if query_name not in CSTORE_QUERIES:
            raise UnsupportedOperationError(
                f"query {query_name!r} is not implemented: the C-Store "
                "artifact ships hardwired plans for q1-q7 only and cannot "
                "be extended without major resource investment "
                "(paper, Section 3)"
            )
        self.clock.reset()
        self.clock.charge_cpu(self.costs.query_overhead)
        relation = getattr(self, f"_{query_name}")()
        self.clock.charge_cpu(self.costs.output_tuple * relation.n_rows)
        return relation, self.clock.timing()

    def execute(self, query_name):
        relation, _ = self.run(query_name)
        return relation

    def make_cold(self):
        self.pool.clear()

    def io_history(self):
        return self.clock.io_history()

    # ------------------------------------------------------------------
    # hardwired plans
    # ------------------------------------------------------------------

    def _oid(self, key):
        return self.dictionary.lookup_or_none(CONSTANTS[key])

    def _db(self, key):
        return self.catalog.get(CONSTANTS[key])

    def _charge(self, cost_name, n):
        self.clock.charge_cpu(getattr(self.costs, cost_name) * max(n, 0))

    def _text_subjects(self):
        """Sorted array of subjects with type <Text>."""
        text = self._oid("Text")
        subjects = []
        n = 0
        for (s, o), _ in self._db("type").cursor():
            n += 1
            if o == text:
                subjects.append(s)
        self._charge("select_tuple", n)
        return set(subjects)

    def _q1(self):
        counts = Counter()
        n = 0
        for (s, o), _ in self._db("type").cursor():
            n += 1
            counts[o] += 1
        self._charge("group_tuple", n)
        return _relation(
            ["obj", "count"],
            [(o, c) for o, c in counts.items()],
            count_columns={"count"},
        )

    def _q2(self):
        subjects = self._text_subjects()
        rows = []
        for prop in self.properties:
            db = self.subject_projections.get(prop)
            count = 0
            n = 0
            for (s,), _ in db.cursor():
                n += 1
                if s in subjects:
                    count += 1
            self._charge("merge_step", n)
            if count:
                rows.append((self.dictionary.lookup(prop), count))
        return _relation(["prop", "count"], rows, count_columns={"count"})

    def _q3(self):
        subjects = self._text_subjects()
        rows = []
        for prop in self.properties:
            db = self.catalog.get(prop)
            counts = Counter()
            n = 0
            for (s, o), _ in db.cursor():
                n += 1
                if s in subjects:
                    counts[o] += 1
            self._charge("merge_step", n)
            self._charge("group_tuple", n)
            prop_oid = self.dictionary.lookup(prop)
            rows.extend(
                (prop_oid, o, c) for o, c in counts.items() if c > 1
            )
        return _relation(
            ["prop", "obj", "count"], rows, count_columns={"count"}
        )

    def _q4(self):
        subjects = self._text_subjects()
        french = self._oid("french")
        fre_subjects = set()
        n = 0
        for (s, o), _ in self._db("language").cursor():
            n += 1
            if o == french:
                fre_subjects.add(s)
        self._charge("select_tuple", n)
        subjects &= fre_subjects
        rows = []
        for prop in self.properties:
            db = self.catalog.get(prop)
            counts = Counter()
            n = 0
            for (s, o), _ in db.cursor():
                n += 1
                if s in subjects:
                    counts[o] += 1
            self._charge("merge_step", n)
            self._charge("group_tuple", n)
            prop_oid = self.dictionary.lookup(prop)
            rows.extend(
                (prop_oid, o, c) for o, c in counts.items() if c > 1
            )
        return _relation(
            ["prop", "obj", "count"], rows, count_columns={"count"}
        )

    def _q5(self):
        dlc = self._oid("DLC")
        text = self._oid("Text")
        origin_subjects = set()
        n = 0
        for (s, o), _ in self._db("origin").cursor():
            n += 1
            if o == dlc:
                origin_subjects.add(s)
        self._charge("select_tuple", n)
        type_db = self._db("type")
        rows = []
        n = 0
        # Hardwired join order: probe <type> for every <records> pair, then
        # filter on the DLC origin — the record/type join runs in full,
        # which is what makes q5 the heaviest query of the repetition
        # experiment (most data read, most CPU).
        for (s, o), _ in self._db("records").cursor():
            n += 1
            for (_, t), _ in type_db.prefix((o,)):
                self._charge("hash_probe", 1)
                if t != text and s in origin_subjects:
                    rows.append((s, t))
        self._charge("merge_step", n)
        return _relation(["subj", "obj"], rows)

    def _q6(self):
        union = self._text_subjects()
        text = self._oid("Text")
        type_db = self._db("type")
        n = 0
        for (s, o), _ in self._db("records").cursor():
            n += 1
            self._charge("hash_probe", 1)
            if type_db.get((o, text)):
                union.add(s)
        self._charge("merge_step", n)
        rows = []
        for prop in self.properties:
            db = self.subject_projections.get(prop)
            count = 0
            n = 0
            for (s,), _ in db.cursor():
                n += 1
                if s in union:
                    count += 1
            self._charge("merge_step", n)
            if count:
                rows.append((self.dictionary.lookup(prop), count))
        return _relation(["prop", "count"], rows, count_columns={"count"})

    def _q7(self):
        end = self._oid("end")
        point_subjects = []
        n = 0
        for (s, o), _ in self._db("Point").cursor():
            n += 1
            if o == end:
                point_subjects.append(s)
        self._charge("select_tuple", n)
        encoding_db = self._db("Encoding")
        type_db = self._db("type")
        rows = []
        for s in point_subjects:
            for (_, enc), _ in encoding_db.prefix((s,)):
                self._charge("hash_probe", 1)
                for (_, t), _ in type_db.prefix((s,)):
                    self._charge("hash_probe", 1)
                    rows.append((s, enc, t))
        return _relation(["subj", "obj_encoding", "obj_type"], rows)


def _relation(names, rows, count_columns=()):
    oid = set(names) - set(count_columns)
    return Relation.from_rows(names, rows, oid_columns=oid)
