"""C-Store replica: the artifact the paper's Section 3 re-runs.

The original code base the authors obtained was "a layer over BerkeleyDB"
with "all queries hardwired in C++ code", loaded only with the
vertically-partitioned data of the 28 interesting properties.  This package
reproduces that artifact faithfully, *including its limitations*:

* storage is an ordered key-value substrate
  (:class:`~repro.cstore.kvstore.OrderedKV`) holding one database per
  property, keyed on (subject, object),
* only queries q1-q7 exist, as hardwired plans
  (:class:`~repro.cstore.engine.CStoreEngine`); q8, the full-scale ``*``
  variants, and the triple-store scheme raise
  :class:`~repro.errors.UnsupportedOperationError` — the paper could not
  extend the artifact either, and calls that out as a drawback,
* I/O is synchronous request-at-a-time in small (64 KB) chunks, so the
  engine is latency-bound and "only exploits a small fraction of the I/O
  bandwidth" (Figure 5) — a 4x faster RAID barely changes cold times
  (Table 4, machines A vs B).
"""

from repro.cstore.kvstore import OrderedKV
from repro.cstore.engine import CStoreEngine, CSTORE_QUERIES

__all__ = ["OrderedKV", "CStoreEngine", "CSTORE_QUERIES"]
