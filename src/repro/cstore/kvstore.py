"""BerkeleyDB-like ordered key-value store.

One :class:`OrderedKV` instance is one "database" (in BerkeleyDB parlance):
an ordered multimap from integer-tuple keys to integer values, backed by a
B+tree whose nodes live in a disk segment.  Every node visit triggers a
64 KB synchronous read through the buffer pool — the small-request I/O
pattern whose consequences the paper measures in Section 3.
"""

from repro.errors import StorageError
from repro.rowstore.btree import BPlusTree

#: Pages fetched per synchronous read request (64 KB at 8 KB pages).
READAHEAD_PAGES = 8


class OrderedKV:
    """An ordered multimap backed by a B+tree in a disk segment."""

    #: Default node fan-out.  C-Store packs (and RLE-compresses) sorted
    #: columns densely: ~1425 entries per 8 KB page gives the ~5.7
    #: bytes/triple footprint that reproduces the paper's "not more than
    #: 270 MB on disk" for the 28-property load.
    DEFAULT_ORDER = 1500

    def __init__(self, name, pairs, disk, pool, clock, node_cpu_cost,
                 order=DEFAULT_ORDER):
        """Bulk-load from *pairs* (``(key_tuple, value)``, key-sorted)."""
        self.name = name
        self._tree = BPlusTree.bulk_load(
            sorted(pairs), order=order, fill_factor=0.95
        )
        self.segment = disk.create_segment(
            f"kv.{name}", max(1, self._tree.n_nodes()) * disk.page_size
        )
        n_pages = self.segment.num_pages()

        def on_access(page):
            first = min(page, max(0, n_pages - READAHEAD_PAGES))
            pool.read_pages(
                self.segment, range(first, min(first + READAHEAD_PAGES, n_pages))
            )
            clock.charge_cpu(node_cpu_cost)

        self._tree.on_access = on_access

    def __len__(self):
        return len(self._tree)

    def get(self, key):
        """All values under exactly *key*."""
        return self._tree.search(tuple(key))

    def prefix(self, prefix):
        """Iterate ``(key, value)`` pairs whose key starts with *prefix*."""
        return self._tree.prefix_scan(tuple(prefix))

    def cursor(self):
        """Iterate every ``(key, value)`` pair in key order."""
        return self._tree.items()

    def bytes_on_disk(self):
        return self.segment.nbytes


class KVCatalog:
    """Named collection of KV databases (one per property table)."""

    def __init__(self):
        self._databases = {}

    def __contains__(self, name):
        return name in self._databases

    def add(self, name, database):
        if name in self._databases:
            raise StorageError(f"database already exists: {name!r}")
        self._databases[name] = database

    def get(self, name):
        try:
            return self._databases[name]
        except KeyError:
            raise StorageError(f"no such database: {name!r}") from None

    def names(self):
        return list(self._databases)

    def total_bytes(self):
        return sum(db.bytes_on_disk() for db in self._databases.values())
