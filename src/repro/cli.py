"""Command-line interface.

::

    python -m repro generate --triples 50000 --out barton.nt
    python -m repro query --data barton.nt --sparql 'SELECT ?s WHERE {...}'
    python -m repro query --data barton.nt --scheme triple \\
        --sql "SELECT A.obj, count(*) FROM triples AS A GROUP BY A.obj"
    python -m repro bench --experiment table6 --triples 60000
    python -m repro bench --list
    python -m repro profile q2 --engine column --mode cold
    python -m repro profile q2 --trace-out q2.trace.json
    python -m repro perf record --experiment figure6 --name fig6_smoke
    python -m repro perf compare ci/BENCH_fig6_smoke_baseline.json \\
        BENCH_fig6_smoke.json --wall-info
    python -m repro perf report --name fig6_smoke
    python -m repro serve --triples 20000 --port 8737 --workers 4
    python -m repro replay --url http://127.0.0.1:8737 --clients 8
    python -m repro replay --triples 20000 --clients 1 --queries 200 \\
        --record replay_smoke
    python -m repro -v verify --triples 20000
    python -m repro analyze q5 --scheme triple
    python -m repro analyze all --strict
    python -m repro analyze --concurrency --static-only
    python -m repro analyze all --code --concurrency --json
    python -m repro lint --baseline lint-baseline.json
"""

import argparse
import sys

from repro import __version__
from repro.observe.log import configure_logging, get_logger

log = get_logger("cli")


def _add_store_arguments(parser):
    """The store-deployment options shared by serve/replay (the same set
    profile/analyze take): load --data if given, else generate."""
    parser.add_argument("--data", help="N-Triples file (default: generate)")
    parser.add_argument("--triples", type=int, default=20_000)
    parser.add_argument("--properties", type=int, default=60)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--engine", choices=("column", "row"), default="column"
    )
    parser.add_argument(
        "--scheme", choices=("vertical", "triple"), default="vertical"
    )
    parser.add_argument("--clustering", default="PSO")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Column-Store Support for RDF Data "
                    "Management: not all swans are white' (VLDB 2008)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="enable debug logging (place before the subcommand)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a Barton-like N-Triples dataset"
    )
    generate.add_argument("--triples", type=int, default=100_000)
    generate.add_argument("--properties", type=int, default=222)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument(
        "--out", default="-", help="output file ('-' for stdout)"
    )

    query = sub.add_parser("query", help="query an N-Triples file")
    query.add_argument("--data", required=True, help="N-Triples file")
    query.add_argument(
        "--engine", choices=("column", "row"), default="column"
    )
    query.add_argument(
        "--scheme", choices=("vertical", "triple"), default="vertical"
    )
    query.add_argument("--clustering", default="PSO")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--sparql", help="SPARQL SELECT text")
    group.add_argument("--sql", help="SQL text")
    group.add_argument(
        "--benchmark", help="benchmark query name (q1..q8, q2*..q6*)"
    )
    query.add_argument(
        "--mode", choices=("cold", "hot"), default="hot",
        help="run protocol for --benchmark",
    )

    bench = sub.add_parser(
        "bench", help="regenerate one of the paper's tables/figures"
    )
    bench.add_argument(
        "--experiment",
        help="experiment name or comma-separated list (e.g. "
             "'table6' or 'figure6,figure7'); 'all' runs every experiment",
    )
    bench.add_argument("--triples", type=int, default=60_000)
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for experiment cells (default: "
             "REPRO_BENCH_JOBS or 1; results are byte-identical to serial)",
    )
    bench.add_argument(
        "--workers", type=int, default=None,
        help="intra-query degree of parallelism on the column-store "
             "engines (sets REPRO_WORKERS for the run; results and "
             "simulated timings are byte-identical at any value)",
    )
    bench.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write machine-readable results (timings + wall-clock "
             "meta) to PATH ('-' for stdout instead of the rendered text)",
    )
    bench.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk artifact cache (datasets, store payloads)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list experiment names"
    )

    profile = sub.add_parser(
        "profile",
        help="EXPLAIN ANALYZE a query: per-operator rows, simulated time, "
             "buffer and disk activity",
    )
    profile.add_argument(
        "query",
        help="benchmark query name (q1..q8, q2*..q6*), SPARQL, or SQL",
    )
    profile.add_argument("--data", help="N-Triples file (default: generate)")
    profile.add_argument("--triples", type=int, default=20_000)
    profile.add_argument("--properties", type=int, default=60)
    profile.add_argument("--seed", type=int, default=42)
    profile.add_argument(
        "--engine", choices=("column", "row"), default="column"
    )
    profile.add_argument(
        "--scheme", choices=("vertical", "triple"), default="vertical"
    )
    profile.add_argument("--clustering", default="PSO")
    profile.add_argument("--mode", choices=("cold", "hot"), default="cold")
    profile.add_argument(
        "--workers", type=int, default=None,
        help="intra-query degree of parallelism (sets REPRO_WORKERS; "
             "per-morsel child spans appear under parallel operators)",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable profile document",
    )
    profile.add_argument(
        "--metrics", action="store_true",
        help="append the full metrics registry to the text report",
    )
    profile.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="also write the span tree as Chrome trace-event JSON "
             "(open in Perfetto or chrome://tracing)",
    )
    profile.add_argument(
        "--prometheus-out", metavar="PATH", default=None,
        help="also write the metrics registry in Prometheus text "
             "exposition format",
    )

    perf = sub.add_parser(
        "perf",
        help="the performance observatory: record runs into the ledger, "
             "compare snapshots under regression policies, report history",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    record = perf_sub.add_parser(
        "record",
        help="run an experiment, append a RunRecord to the ledger and "
             "write a BENCH_<name>.json snapshot",
    )
    record.add_argument(
        "--experiment", required=True,
        help="experiment name or comma-separated list (same names as "
             "'repro bench')",
    )
    record.add_argument("--name", default=None,
                        help="run name (default: the experiment list)")
    record.add_argument("--triples", type=int, default=60_000)
    record.add_argument("--seed", type=int, default=42)
    record.add_argument(
        "--perf-dir", default=None,
        help="ledger directory (default: REPRO_PERF_DIR or .repro/perf)",
    )
    record.add_argument(
        "--snapshot-dir", default=".",
        help="where BENCH_<name>.json is written (default: cwd)",
    )
    record.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk artifact cache",
    )
    record.add_argument(
        "--compress", choices=("logical", "physical"), default=None,
        help="enable columnar compression on the column-store engines "
             "(sets REPRO_COMPRESS for the run; recorded as a run "
             "parameter so compressed and uncompressed baselines get "
             "distinct config fingerprints)",
    )
    record.add_argument(
        "--workers", type=int, default=None,
        help="intra-query degree of parallelism (sets REPRO_WORKERS; "
             "NOT part of the config fingerprint — simulated costs are "
             "identical at any value, so serial and parallel snapshots "
             "stay byte-identity comparable; morsel/steal counters land "
             "in the snapshot's counters section)",
    )

    compare = perf_sub.add_parser(
        "compare",
        help="compare two run snapshots; exits 1 when a regression gate "
             "trips",
    )
    compare.add_argument("baseline", help="baseline BENCH_<name>.json")
    compare.add_argument("current", help="current BENCH_<name>.json")
    compare.add_argument(
        "--wall-tolerance", type=float, default=None,
        help="allowed wall-clock slowdown ratio (default 1.5)",
    )
    compare.add_argument(
        "--wall-info", action="store_true",
        help="report wall-clock but never gate on it (for noisy CI "
             "runners; simulated costs stay byte-identity gated)",
    )
    compare.add_argument(
        "--json", action="store_true",
        help="emit the comparison as a JSON document",
    )

    report = perf_sub.add_parser(
        "report", help="render the run-history ledger"
    )
    report.add_argument("--name", default=None,
                        help="only runs with this name")
    report.add_argument("--limit", type=int, default=20,
                        help="most recent N entries (default 20)")
    report.add_argument(
        "--perf-dir", default=None,
        help="ledger directory (default: REPRO_PERF_DIR or .repro/perf)",
    )
    report.add_argument(
        "--json", action="store_true",
        help="emit the matching records as a JSON document",
    )

    serve = sub.add_parser(
        "serve",
        help="run the concurrent query server (HTTP JSON API over one "
             "shared store; see docs/serving.md)",
    )
    _add_store_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8737,
        help="listen port (0 picks a free port; default 8737)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="session worker threads (default 4)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=64,
        help="admission queue capacity; further queries get HTTP 429 "
             "(default 64)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-query timeout in seconds (none by default)",
    )
    serve.add_argument(
        "--max-dop", type=int, default=None,
        help="admission cap on per-query intra-query parallelism; "
             "requests asking for more workers are clamped, never "
             "rejected (default: no cap)",
    )

    replay = sub.add_parser(
        "replay",
        help="replay a Zipf-skewed benchmark-query workload against a "
             "server URL or an in-process store; reports p50/p95/p99 "
             "latency and throughput",
    )
    _add_store_arguments(replay)
    replay.add_argument(
        "--url", default=None,
        help="base URL of a running 'repro serve' (default: drive an "
             "in-process store built from the store options)",
    )
    replay.add_argument(
        "--clients", type=int, default=4,
        help="concurrent client threads (default 4)",
    )
    replay.add_argument(
        "--queries", type=int, default=200,
        help="total queries across all clients (default 200)",
    )
    replay.add_argument(
        "--duration", type=float, default=None,
        help="run for this many seconds instead of a fixed query count",
    )
    replay.add_argument(
        "--timeout", type=float, default=None,
        help="per-query timeout in seconds",
    )
    replay.add_argument(
        "--workload-seed", type=int, default=17,
        help="RNG seed for the query mix (default 17; --seed seeds the "
             "generated dataset)",
    )
    replay.add_argument(
        "--exponent", type=float, default=1.0,
        help="Zipf exponent of the query-frequency skew (default 1.0)",
    )
    replay.add_argument(
        "--only", default=None,
        help="comma-separated benchmark query subset (default: all)",
    )
    replay.add_argument(
        "--record", metavar="NAME", default=None,
        help="append the run to the perf ledger and write "
             "BENCH_<NAME>.json",
    )
    replay.add_argument(
        "--perf-dir", default=None,
        help="ledger directory (default: REPRO_PERF_DIR or .repro/perf)",
    )
    replay.add_argument(
        "--snapshot-dir", default=".",
        help="where BENCH_<NAME>.json is written (default: cwd)",
    )
    replay.add_argument(
        "--json", action="store_true",
        help="emit the replay report as a JSON document",
    )

    verify = sub.add_parser(
        "verify",
        help="cross-check every engine x scheme against the reference "
             "evaluator on all benchmark queries",
    )
    verify.add_argument("--triples", type=int, default=10_000)
    verify.add_argument("--properties", type=int, default=60)
    verify.add_argument("--seed", type=int, default=42)

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: lint a query plan without executing it "
             "and/or check the codebase's concurrency discipline",
    )
    analyze.add_argument(
        "query", nargs="?", default=None,
        help="benchmark query name (q1..q8, q2*..q6*, or 'all'), SPARQL, "
             "or SQL (optional when --code or --concurrency is given)",
    )
    analyze.add_argument("--data", help="N-Triples file (default: generate)")
    analyze.add_argument("--triples", type=int, default=20_000)
    analyze.add_argument("--properties", type=int, default=60)
    analyze.add_argument("--seed", type=int, default=42)
    analyze.add_argument(
        "--engine", choices=("column", "row"), default="column"
    )
    analyze.add_argument(
        "--scheme", choices=("vertical", "triple"), default="vertical"
    )
    analyze.add_argument("--clustering", default="PSO")
    analyze.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on ANY diagnostic, informational notes "
             "included (default: only warnings and errors fail)",
    )
    analyze.add_argument(
        "--physical", action="store_true",
        help="lower the plan through the selected engine's operator "
             "registry and run the physical rule set too",
    )
    analyze.add_argument(
        "--code", action="store_true",
        help="also run the AST invariant checker over the codebase "
             "(the 'repro lint' rules, ratchet baseline applied)",
    )
    analyze.add_argument(
        "--concurrency", action="store_true",
        help="also run the concurrency-safety heads: the guarded-by "
             "discipline checker, the lock-order (deadlock) analyzer, "
             "and — unless --static-only — the runtime race/determinism "
             "harness",
    )
    analyze.add_argument(
        "--static-only", action="store_true",
        help="with --concurrency: run only the static checks, skipping "
             "the runtime harness",
    )
    analyze.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable document covering every section "
             "run (schema documented in docs/static-analysis.md)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant checker over the codebase",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to check (default: the installed "
             "repro package)",
    )
    lint.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="ratchet file of known violations (default: "
             "lint-baseline.json next to the source tree, if present)",
    )
    lint.add_argument(
        "--concurrency-baseline", metavar="PATH", default=None,
        help="ratchet file for the concurrency checks (default: "
             "concurrency-baseline.json next to the source tree, if "
             "present)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite both baseline files to the current violation sets",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit violations as a JSON document",
    )

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)
    handler = {
        "generate": _command_generate,
        "query": _command_query,
        "bench": _command_bench,
        "profile": _command_profile,
        "verify": _command_verify,
        "analyze": _command_analyze,
        "lint": _command_lint,
        "perf": _command_perf,
        "serve": _command_serve,
        "replay": _command_replay,
    }[args.command]
    return handler(args)


# ---------------------------------------------------------------------------
# generate
# ---------------------------------------------------------------------------

def _command_generate(args):
    from repro.data import generate_barton
    from repro.model.parser import serialize_ntriples

    dataset = generate_barton(
        n_triples=args.triples,
        n_properties=args.properties,
        n_interesting=min(28, args.properties),
        seed=args.seed,
    )
    text = serialize_ntriples(dataset.triples)
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text)
        log.info(
            "wrote %d triples (%d properties) to %s",
            len(dataset.triples), len(dataset.properties), args.out,
        )
    return 0


# ---------------------------------------------------------------------------
# query
# ---------------------------------------------------------------------------

def _command_query(args):
    import repro.api as api

    with open(args.data) as handle:
        text = handle.read()
    connection = api.connect(
        ntriples=text,
        engine=args.engine,
        scheme=args.scheme,
        clustering=args.clustering,
    )

    with connection.session() as session:
        if args.sparql:
            for binding in session.query(args.sparql).bindings():
                print("\t".join(f"?{k}={v}" for k, v in binding.items()))
        elif args.sql:
            for row in session.query(args.sql):
                print("\t".join(str(v) for v in row))
        else:
            result = session.query(args.benchmark, mode=args.mode)
            for row in result:
                print("\t".join(str(v) for v in row))
            timing = result.cost
            log.info(
                "-- %s %s: real %.6fs, user %.6fs, %d bytes read",
                args.benchmark, args.mode, timing.real_seconds,
                timing.user_seconds, timing.bytes_read,
            )
    return 0


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------

_EXPERIMENTS = {
    "table1": ("experiment_table1", True),
    "figure1": ("experiment_figure1", True),
    "table2": ("experiment_table2", False),
    "table3": ("experiment_table3", False),
    "table4": ("experiment_table4", True),
    "table5": ("experiment_table5", True),
    "figure5": ("experiment_figure5", True),
    "table6": ("experiment_table6", True),
    "table7": ("experiment_table7", True),
    "figure6": ("experiment_figure6", True),
    "figure7": ("experiment_figure7", True),
    "compression": ("experiment_compression", True),
    "scaling": ("experiment_scaling", True),
}


def _command_bench(args):
    import json
    import os

    if args.list or not args.experiment:
        for name in _EXPERIMENTS:
            print(name)
        return 0
    if args.experiment == "all":
        names = list(_EXPERIMENTS)
    else:
        names = [n.strip() for n in args.experiment.split(",") if n.strip()]
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        log.error(
            "unknown experiment(s) %s; choose from %s",
            ", ".join(map(repr, unknown)), ", ".join(_EXPERIMENTS),
        )
        return 2

    if args.no_cache:
        os.environ["REPRO_CACHE_DISABLE"] = "1"
    if args.workers is not None:
        os.environ["REPRO_WORKERS"] = str(args.workers)

    results = _run_experiments(names, args, jobs=args.jobs)

    if args.json != "-":
        for item in results:
            print(item.render())
            print()
    if args.json:
        document = json.dumps(
            [item.to_dict() for item in results], indent=2, sort_keys=True
        )
        if args.json == "-":
            print(document)
        else:
            with open(args.json, "w") as handle:
                handle.write(document + "\n")
            log.info("wrote %d experiment result(s) to %s",
                     len(results), args.json)
    return 0


def _run_experiments(names, args, jobs=None):
    """Run the named experiments; returns the flat result list.  Shared by
    ``repro bench`` and ``repro perf record`` (*args* needs ``triples`` and
    ``seed``)."""
    import inspect

    from repro.bench import experiments

    dataset = None  # generated once, shared by every requested experiment
    results = []
    for name in names:
        function_name, needs_dataset = _EXPERIMENTS[name]
        driver = getattr(experiments, function_name)
        kwargs = {}
        if jobs is not None:
            if "jobs" in inspect.signature(driver).parameters:
                kwargs["jobs"] = jobs
        if needs_dataset:
            if dataset is None:
                dataset = _bench_dataset(args)
            result = driver(dataset, **kwargs)
        else:
            result = driver(**kwargs)
        results.extend(result if isinstance(result, list) else [result])
    return results


def _bench_dataset(args):
    """The benchmark dataset — served from the artifact cache when enabled."""
    from repro.bench.artifacts import cache_disabled, cached_dataset
    from repro.data import generate_barton

    if cache_disabled():
        return generate_barton(n_triples=args.triples, seed=args.seed)
    return cached_dataset(n_triples=args.triples, seed=args.seed)


def _store_from_args(args):
    """An RDFStore for the profile/analyze subcommands: load --data if
    given, otherwise generate a deterministic Barton-like dataset."""
    from repro.core import RDFStore

    if args.data:
        with open(args.data) as handle:
            text = handle.read()
        log.debug("loading %s", args.data)
        return RDFStore.from_ntriples(
            text,
            engine=args.engine,
            scheme=args.scheme,
            clustering=args.clustering,
        )
    from repro.data import generate_barton

    log.debug("generating %d triples (seed %d)", args.triples, args.seed)
    dataset = generate_barton(
        n_triples=args.triples,
        n_properties=args.properties,
        n_interesting=min(28, args.properties),
        seed=args.seed,
    )
    return RDFStore.from_triples(
        dataset.triples,
        engine=args.engine,
        scheme=args.scheme,
        clustering=args.clustering,
    )


def _command_profile(args):
    import json
    import os

    if args.workers is not None:
        os.environ["REPRO_WORKERS"] = str(args.workers)
    store = _store_from_args(args)
    with store.connection().session() as session:
        profile = session.profile(args.query, mode=args.mode)
    if args.json:
        print(profile.to_json())
    else:
        print(profile.render(with_metrics=args.metrics))
    if args.trace_out:
        document = profile.to_chrome_trace()
        with open(args.trace_out, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        log.info(
            "wrote %d trace event(s) to %s (open in https://ui.perfetto.dev)",
            len(document["traceEvents"]), args.trace_out,
        )
    if args.prometheus_out:
        from repro.observe.export import metrics_to_prometheus

        with open(args.prometheus_out, "w") as handle:
            handle.write(metrics_to_prometheus(profile.registry))
        log.info("wrote metrics exposition to %s", args.prometheus_out)
    return 0


# ---------------------------------------------------------------------------
# serve / replay: the concurrent query server
# ---------------------------------------------------------------------------

def _command_serve(args):
    from repro.server import QueryServer

    store = _store_from_args(args)
    server = QueryServer(
        store.connection(),
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_timeout=args.timeout,
        max_dop=args.max_dop,
    )
    dop = getattr(store.engine, "workers", 1)
    print(
        f"serving {store.engine_kind}/{store.scheme} "
        f"({store.n_triples} triples) at {server.address} "
        f"[{args.workers} workers, queue {args.queue_depth}, "
        f"dop {dop}"
        + (f" (max {args.max_dop})" if args.max_dop else "")
        + "]"
    )
    print("POST /v1/query  GET /v1/stats  GET /metrics  (Ctrl-C to stop)")
    server.serve_forever()
    return _report_race_violations()


def _report_race_violations():
    """Exit status for race-checked runs: 1 when the write barrier
    (REPRO_RACE_CHECK=1) recorded any unguarded concurrent mutation."""
    from repro.observe.race import race_check_enabled, race_report

    if not race_check_enabled():
        return 0
    report = race_report()
    if not report["violation_count"]:
        log.info("race check: %d structure(s) tracked, no violations",
                 len(report["structures"]))
        return 0
    print(
        f"race check FAILED: {report['violation_count']} unguarded "
        "concurrent mutation(s)", file=sys.stderr,
    )
    for event in report["violations"]:
        print(
            f"  {event['structure']}: {event['op']} on thread "
            f"{event['thread']} without {event['lock']}", file=sys.stderr,
        )
    return 1


def _command_replay(args):
    import json

    from repro.server import ReplayConfig, record_from_replay, run_replay

    names = None
    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
    config = ReplayConfig(
        clients=args.clients,
        queries=args.queries,
        duration=args.duration,
        timeout=args.timeout,
        seed=args.workload_seed,
        exponent=args.exponent,
        names=names,
    )
    if args.url:
        report = run_replay(url=args.url, config=config)
    else:
        if args.record:
            from repro.observe.history import reset_counters

            reset_counters()
        store = _store_from_args(args)
        report = run_replay(connection=store.connection(), config=config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary_text())
    if args.record:
        from repro.observe.history import RunLedger, write_snapshot

        record = record_from_replay(
            report, name=args.record,
            parameters={
                "clients": args.clients,
                "queries": args.queries,
                "duration": args.duration,
                "workload_seed": args.workload_seed,
                "exponent": args.exponent,
                "only": names,
                "url": args.url,
                "triples": None if args.url else args.triples,
                "seed": None if args.url else args.seed,
            },
        )
        ledger = RunLedger(args.perf_dir)
        ledger_path = ledger.append(record)
        snapshot = write_snapshot(record, args.snapshot_dir)
        print(
            f"recorded {args.record}: "
            f"fingerprint {record.config_fingerprint[:12]}\n"
            f"  ledger   {ledger_path}\n"
            f"  snapshot {snapshot}"
        )
    # In-process replay shares our interpreter; honor the write barrier
    # the same way `repro serve` does (no-op against a remote --url).
    race_failed = 0 if args.url else _report_race_violations()
    return 1 if (report.failed or report.timeouts or race_failed) else 0


# ---------------------------------------------------------------------------
# perf: the performance observatory
# ---------------------------------------------------------------------------

def _command_perf(args):
    handler = {
        "record": _command_perf_record,
        "compare": _command_perf_compare,
        "report": _command_perf_report,
    }[args.perf_command]
    return handler(args)


def _command_perf_record(args):
    import os

    from repro.observe.history import (
        RunLedger,
        record_from_results,
        reset_counters,
        write_snapshot,
    )

    names = [n.strip() for n in args.experiment.split(",") if n.strip()]
    if args.experiment == "all":
        names = list(_EXPERIMENTS)
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        log.error(
            "unknown experiment(s) %s; choose from %s",
            ", ".join(map(repr, unknown)), ", ".join(_EXPERIMENTS),
        )
        return 2
    if args.no_cache:
        os.environ["REPRO_CACHE_DISABLE"] = "1"
    compression = args.compress or os.environ.get("REPRO_COMPRESS") or None
    if compression:
        os.environ["REPRO_COMPRESS"] = compression
    # Deliberately NOT a fingerprint parameter: simulated costs are
    # byte-identical at any degree of parallelism, so serial baselines
    # gate parallel runs (the CI parity job depends on this).
    if args.workers is not None:
        os.environ["REPRO_WORKERS"] = str(args.workers)

    run_name = args.name or "_".join(names)
    parameters = {
        "experiments": names,
        "triples": args.triples,
        "seed": args.seed,
    }
    if compression:
        # Part of the fingerprint: compressed and raw runs are only
        # comparable with themselves (physical mode changes I/O costs).
        parameters["compression"] = compression
    # Serial on purpose: the process-wide counters (buffer pool, lowering
    # cache, scheduler) only see work done in this process.
    reset_counters()
    results = _run_experiments(names, args, jobs=1)
    record = record_from_results(run_name, results, parameters=parameters)
    ledger = RunLedger(args.perf_dir)
    ledger_path = ledger.append(record)
    snapshot = write_snapshot(record, args.snapshot_dir)
    wall = f"{record.wall_ms:.1f}ms" if record.wall_ms is not None else "n/a"
    print(
        f"recorded {run_name}: wall {wall}, "
        f"fingerprint {record.config_fingerprint[:12]}\n"
        f"  ledger   {ledger_path}\n"
        f"  snapshot {snapshot}"
    )
    return 0


def _command_perf_compare(args):
    import json

    from repro.observe.history import load_snapshot
    from repro.observe.regression import (
        DEFAULT_WALL_TOLERANCE,
        compare_records,
    )

    try:
        baseline = load_snapshot(args.baseline)
        current = load_snapshot(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        log.error("cannot load snapshot: %s", exc)
        return 2
    tolerance = (
        args.wall_tolerance if args.wall_tolerance is not None
        else DEFAULT_WALL_TOLERANCE
    )
    comparison = compare_records(
        baseline, current,
        wall_tolerance=tolerance,
        wall_gate=not args.wall_info,
    )
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(comparison.render())
    return 0 if comparison.ok else 1


def _command_perf_report(args):
    import json

    from repro.observe.history import RunLedger

    ledger = RunLedger(args.perf_dir)
    records = ledger.records(name=args.name, limit=args.limit)
    if args.json:
        print(json.dumps(
            [record.to_dict() for record in records],
            indent=2, sort_keys=True,
        ))
        return 0
    if not records:
        print(f"no runs recorded in {ledger.path}")
        return 0
    print(f"{'recorded_at':<26} {'name':<24} {'sha':<8} "
          f"{'fingerprint':<12} {'wall_ms':>10}")
    for record in records:
        sha = (record.git_sha or "-")[:8]
        wall = (
            f"{record.wall_ms:.1f}" if record.wall_ms is not None else "-"
        )
        print(
            f"{record.recorded_at:<26} {record.name:<24} {sha:<8} "
            f"{record.config_fingerprint[:12]:<12} {wall:>10}"
        )
    return 0


def _command_analyze(args):
    import json

    sections = []
    if args.query is not None:
        sections.append("plan")
    if args.code:
        sections.append("code")
    if args.concurrency:
        sections.append("concurrency")
    if not sections:
        log.error(
            "nothing to analyze: give a query and/or --code/--concurrency"
        )
        return 2

    document = {"version": 1, "sections": sections}
    lines = []  # text report, printed unless --json
    failing = 0

    if "plan" in sections:
        report, plan_failing = _analyze_plan_section(args)
        failing += plan_failing
        document["plan"] = {
            query: [d.to_dict() for d in diagnostics]
            for query, diagnostics in report.items()
        }
        for query, diagnostics in report.items():
            if not diagnostics:
                lines.append(f"{query}: clean")
                continue
            lines.append(f"{query}: {len(diagnostics)} finding(s)")
            lines.extend(f"  {d.render()}" for d in diagnostics)
        threshold = "any severity" if args.strict else "warning+"
        count = len(report)
        lines.append(
            f"analyzed {count} quer{'y' if count == 1 else 'ies'}: "
            f"{plan_failing} finding(s) at {threshold}"
        )

    if "code" in sections:
        section, code_failing = _analyze_code_section()
        failing += code_failing
        document["code"] = section
        lines.extend(v["rendered"] for v in section["violations"])
        summary = f"code: {code_failing} new violation(s)"
        if section["suppressed"]:
            summary += f", {section['suppressed']} suppressed by baseline"
        lines.append(summary)

    if "concurrency" in sections:
        section, conc_failing = _analyze_concurrency_section(
            static_only=args.static_only
        )
        failing += conc_failing
        document["concurrency"] = section
        lines.extend(v["rendered"] for v in section["guarded"])
        lines.extend(
            v["rendered"] for v in section["lock_order"]["violations"]
        )
        graph = section["lock_order"]["graph"]
        lines.append(
            f"concurrency: {len(section['guarded'])} guarded-by "
            f"violation(s), {len(graph['cycles'])} lock-order cycle(s) "
            f"[graph: {len(graph['locks'])} locks, "
            f"{len(graph['edges'])} edges]"
        )
        runtime = section["runtime"]
        if runtime is not None:
            determinism = runtime["determinism"]
            lines.append(
                f"runtime: {determinism['queries']} queries x "
                f"{determinism['threads']} threads — determinism "
                f"{'OK' if determinism['identical'] else 'MISMATCH'}, "
                f"{runtime['race']['violation_count']} race violation(s)"
            )

    document["ok"] = failing == 0
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for line in lines:
            print(line)
    return 1 if failing else 0


def _analyze_plan_section(args):
    """Plan diagnostics per query: ``({query: [Diagnostic]}, failing)``."""
    from repro.analysis import WARNING, plan_lint, worst
    from repro.queries import ALL_QUERY_NAMES

    # The analyzer reports findings itself; suppress the frontends' own
    # warn-mode logging so nothing is reported twice.
    previous_mode = plan_lint._lint_mode
    plan_lint.set_lint_mode("off")
    try:
        store = _store_from_args(args)

        queries = (
            list(ALL_QUERY_NAMES) if args.query == "all" else [args.query]
        )
        report = {}
        failing = 0
        for query in queries:
            diagnostics = store.analyze(query, physical=args.physical)
            report[query] = diagnostics
            failing += len(
                diagnostics if args.strict
                else worst(diagnostics, at_least=WARNING)
            )
    finally:
        plan_lint._lint_mode = previous_mode
    return report, failing


def _analyze_code_section():
    """The code-lint section of the analyze document (baseline applied)."""
    import os

    from repro.analysis import apply_baseline, lint_package, load_baseline

    violations = lint_package()
    baseline_path = _default_baseline_path()
    baseline = (
        load_baseline(baseline_path)
        if baseline_path and os.path.exists(baseline_path)
        else None
    )
    new, suppressed, stale = apply_baseline(violations, baseline)
    section = {
        "violations": [
            dict(v.to_dict(), rendered=v.render()) for v in new
        ],
        "suppressed": suppressed,
        "stale": sorted(stale),
    }
    return section, len(new)


def _analyze_concurrency_section(static_only):
    """The concurrency section: guarded-by + lock-order (+ runtime)."""
    from repro.analysis import (
        check_package,
        lock_graph_document,
        lockorder_package,
    )

    guarded = check_package()
    lock_violations = lockorder_package()
    graph = lock_graph_document()
    section = {
        "guarded": [
            dict(v.to_dict(), rendered=v.render()) for v in guarded
        ],
        "lock_order": {
            "violations": [
                dict(v.to_dict(), rendered=v.render())
                for v in lock_violations
            ],
            "graph": graph,
        },
        "runtime": None,
    }
    failing = len(guarded) + len(lock_violations)
    if not static_only:
        from repro.analysis.concurrency.determinism import (
            run_concurrency_harness,
        )

        runtime = run_concurrency_harness()
        section["runtime"] = runtime
        if not runtime["ok"]:
            failing += 1
    return section, failing


def _command_lint(args):
    import json
    import os

    from repro.analysis import (
        CONCURRENCY_BASELINE_NAME,
        apply_baseline,
        check_package,
        check_paths,
        lint_package,
        lint_paths,
        load_baseline,
        lockorder_package,
        lockorder_paths,
        write_baseline,
    )

    if args.paths:
        violations = lint_paths(args.paths)
        concurrency = check_paths(args.paths) + lockorder_paths(args.paths)
    else:
        violations = lint_package()
        concurrency = check_package() + lockorder_package()
    concurrency.sort(key=lambda v: (v.path, v.line, v.rule, v.symbol))

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = _default_baseline_path()
    conc_path = args.concurrency_baseline
    if conc_path is None:
        conc_path = _default_baseline_path(CONCURRENCY_BASELINE_NAME)
    if args.update_baseline:
        target = baseline_path or "lint-baseline.json"
        write_baseline(target, violations)
        log.info("wrote %d violation(s) to %s", len(violations), target)
        conc_target = conc_path or CONCURRENCY_BASELINE_NAME
        write_baseline(conc_target, concurrency)
        log.info(
            "wrote %d concurrency violation(s) to %s",
            len(concurrency), conc_target,
        )
        return 0

    baseline = (
        load_baseline(baseline_path)
        if baseline_path and os.path.exists(baseline_path)
        else None
    )
    conc_baseline = (
        load_baseline(conc_path)
        if conc_path and os.path.exists(conc_path)
        else None
    )
    new, suppressed, stale = apply_baseline(violations, baseline)
    conc_new, conc_suppressed, conc_stale = apply_baseline(
        concurrency, conc_baseline
    )

    if args.json:
        print(json.dumps(
            {
                "violations": [v.to_dict() for v in new],
                "suppressed": suppressed,
                "stale": sorted(stale),
                "concurrency": {
                    "violations": [v.to_dict() for v in conc_new],
                    "suppressed": conc_suppressed,
                    "stale": sorted(conc_stale),
                },
            },
            indent=2, sort_keys=True,
        ))
    else:
        for v in new:
            print(v.render())
        for v in conc_new:
            print(v.render())
        summary = f"{len(new)} new violation(s)"
        if suppressed:
            summary += f", {suppressed} suppressed by baseline"
        if stale:
            summary += (
                f"; {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} "
                "(ratchet down with --update-baseline)"
            )
        print(summary)
        conc_summary = f"{len(conc_new)} new concurrency violation(s)"
        if conc_suppressed:
            conc_summary += (
                f", {conc_suppressed} suppressed by baseline"
            )
        if conc_stale:
            conc_summary += (
                f"; {len(conc_stale)} stale baseline entr"
                f"{'y' if len(conc_stale) == 1 else 'ies'} "
                "(ratchet down with --update-baseline)"
            )
        print(conc_summary)
    return 1 if (new or conc_new) else 0


def _default_baseline_path(name="lint-baseline.json"):
    """*name* in the working directory, else beside the source tree
    (repo root when running from a checkout)."""
    import os

    import repro

    candidates = [
        name,
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__))),
            name,
        ),
    ]
    for candidate in candidates:
        if os.path.exists(candidate):
            return candidate
    return None


def _command_verify(args):
    from repro.data import generate_barton
    from repro.verify import verify_dataset

    dataset = generate_barton(
        n_triples=args.triples,
        n_properties=args.properties,
        n_interesting=min(28, args.properties),
        seed=args.seed,
    )
    result = verify_dataset(dataset)
    print(result.render())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
