"""Command-line interface.

::

    python -m repro generate --triples 50000 --out barton.nt
    python -m repro query --data barton.nt --sparql 'SELECT ?s WHERE {...}'
    python -m repro query --data barton.nt --scheme triple \\
        --sql "SELECT A.obj, count(*) FROM triples AS A GROUP BY A.obj"
    python -m repro bench --experiment table6 --triples 60000
    python -m repro bench --list
"""

import argparse
import sys

from repro import __version__


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Column-Store Support for RDF Data "
                    "Management: not all swans are white' (VLDB 2008)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a Barton-like N-Triples dataset"
    )
    generate.add_argument("--triples", type=int, default=100_000)
    generate.add_argument("--properties", type=int, default=222)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument(
        "--out", default="-", help="output file ('-' for stdout)"
    )

    query = sub.add_parser("query", help="query an N-Triples file")
    query.add_argument("--data", required=True, help="N-Triples file")
    query.add_argument(
        "--engine", choices=("column", "row"), default="column"
    )
    query.add_argument(
        "--scheme", choices=("vertical", "triple"), default="vertical"
    )
    query.add_argument("--clustering", default="PSO")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--sparql", help="SPARQL SELECT text")
    group.add_argument("--sql", help="SQL text")
    group.add_argument(
        "--benchmark", help="benchmark query name (q1..q8, q2*..q6*)"
    )
    query.add_argument(
        "--mode", choices=("cold", "hot"), default="hot",
        help="run protocol for --benchmark",
    )

    bench = sub.add_parser(
        "bench", help="regenerate one of the paper's tables/figures"
    )
    bench.add_argument("--experiment", help="e.g. table6, figure7")
    bench.add_argument("--triples", type=int, default=60_000)
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument(
        "--list", action="store_true", help="list experiment names"
    )

    verify = sub.add_parser(
        "verify",
        help="cross-check every engine x scheme against the reference "
             "evaluator on all benchmark queries",
    )
    verify.add_argument("--triples", type=int, default=10_000)
    verify.add_argument("--properties", type=int, default=60)
    verify.add_argument("--seed", type=int, default=42)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _command_generate,
        "query": _command_query,
        "bench": _command_bench,
        "verify": _command_verify,
    }[args.command]
    return handler(args)


# ---------------------------------------------------------------------------
# generate
# ---------------------------------------------------------------------------

def _command_generate(args):
    from repro.data import generate_barton
    from repro.model.parser import serialize_ntriples

    dataset = generate_barton(
        n_triples=args.triples,
        n_properties=args.properties,
        n_interesting=min(28, args.properties),
        seed=args.seed,
    )
    text = serialize_ntriples(dataset.triples)
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(
            f"wrote {len(dataset.triples)} triples "
            f"({len(dataset.properties)} properties) to {args.out}"
        )
    return 0


# ---------------------------------------------------------------------------
# query
# ---------------------------------------------------------------------------

def _command_query(args):
    from repro.core import RDFStore

    with open(args.data) as handle:
        text = handle.read()
    store = RDFStore.from_ntriples(
        text,
        engine=args.engine,
        scheme=args.scheme,
        clustering=args.clustering,
    )

    if args.sparql:
        for binding in store.sparql(args.sparql):
            print("\t".join(f"?{k}={v}" for k, v in binding.items()))
    elif args.sql:
        for row in store.sql(args.sql):
            print("\t".join(str(v) for v in row))
    else:
        rows, timing = store.benchmark_query(args.benchmark, mode=args.mode)
        for row in rows:
            print("\t".join(str(v) for v in row))
        print(
            f"-- {args.benchmark} {args.mode}: "
            f"real {timing.real_seconds:.6f}s, "
            f"user {timing.user_seconds:.6f}s, "
            f"{timing.bytes_read} bytes read",
            file=sys.stderr,
        )
    return 0


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------

_EXPERIMENTS = {
    "table1": ("experiment_table1", True),
    "figure1": ("experiment_figure1", True),
    "table2": ("experiment_table2", False),
    "table3": ("experiment_table3", False),
    "table4": ("experiment_table4", True),
    "table5": ("experiment_table5", True),
    "figure5": ("experiment_figure5", True),
    "table6": ("experiment_table6", True),
    "table7": ("experiment_table7", True),
    "figure6": ("experiment_figure6", True),
    "figure7": ("experiment_figure7", True),
}


def _command_bench(args):
    from repro.bench import experiments
    from repro.data import generate_barton

    if args.list or not args.experiment:
        for name in _EXPERIMENTS:
            print(name)
        return 0
    if args.experiment not in _EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    function_name, needs_dataset = _EXPERIMENTS[args.experiment]
    driver = getattr(experiments, function_name)
    if needs_dataset:
        dataset = generate_barton(n_triples=args.triples, seed=args.seed)
        result = driver(dataset)
    else:
        result = driver()
    for item in result if isinstance(result, list) else [result]:
        print(item.render())
        print()
    return 0


def _command_verify(args):
    from repro.data import generate_barton
    from repro.verify import verify_dataset

    dataset = generate_barton(
        n_triples=args.triples,
        n_properties=args.properties,
        n_interesting=min(28, args.properties),
        seed=args.seed,
    )
    result = verify_dataset(dataset)
    print(result.render())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
