"""Cost models: per-tuple CPU charges for each engine class.

The absolute values are calibrated so that, on the synthetic dataset at
default scale, the *relative* magnitudes of the paper's Tables 6/7 emerge:
column-at-a-time operators are one to two orders of magnitude cheaper per
value than tuple-at-a-time row operators, and every plan operator carries a
fixed interpretation/optimization overhead — the term that makes
vertically-partitioned queries with "more than two hundred unions and joins"
expensive, especially on the row store (Section 4.2).

All charges are seconds of CPU on the reference machine (machine A); the
query clock scales them by the machine's ``cpu_scale``.
"""

from dataclasses import dataclass

NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3


@dataclass(frozen=True)
class CostModel:
    """Per-unit CPU costs, in seconds."""

    #: Producing one tuple/value from a base-table scan.
    scan_tuple: float
    #: Evaluating one selection predicate.
    select_tuple: float
    #: Inserting one tuple into a hash table (build side).
    hash_build: float
    #: Probing a hash table once.
    hash_probe: float
    #: One step of a merge join (comparison + possible emit).
    merge_step: float
    #: Updating one group aggregate.
    group_tuple: float
    #: One item movement in a sort (caller multiplies by log2 n).
    sort_item: float
    #: Appending one tuple to a union / materializing an intermediate tuple.
    union_tuple: float
    #: Emitting one result tuple to the client buffer.
    output_tuple: float
    #: Visiting one B+tree node during a descent.
    btree_node: float
    #: Fixed cost per physical plan operator (parse/optimize/instantiate).
    plan_operator: float
    #: Fixed cost per query (connection, parse, catalog lookups).
    query_overhead: float
    #: Superlinear optimizer charge: seconds per (operator count)^2.
    #: This is the "generated plans might be sub-optimal due to the size of
    #: the SQL statement" effect — full-scale vertically-partitioned
    #: queries with hundreds of unions and joins choke the optimizer
    #: (paper, Section 4.2).
    plan_quadratic: float = 0.0

    def scaled(self, data_scale):
        """Costs for a 1:N scale model (see MachineProfile.scaled).

        Per-tuple costs shrink with the data on their own; the fixed
        per-query and per-operator charges are scaled explicitly so every
        term of the simulated time relates to paper scale by the same
        factor.
        """
        import dataclasses

        if not 0 < data_scale <= 1:
            raise ValueError("data_scale must be in (0, 1]")
        return dataclasses.replace(
            self,
            plan_operator=self.plan_operator * data_scale,
            query_overhead=self.query_overhead * data_scale,
            plan_quadratic=self.plan_quadratic * data_scale,
        )


#: MonetDB-like column-at-a-time engine: vectorized primitives, tiny
#: per-value cost, modest per-operator interpretation overhead.
COLUMN_STORE_COSTS = CostModel(
    scan_tuple=8 * NANO,
    select_tuple=6 * NANO,
    hash_build=45 * NANO,
    hash_probe=30 * NANO,
    merge_step=12 * NANO,
    group_tuple=35 * NANO,
    sort_item=25 * NANO,
    union_tuple=10 * NANO,
    output_tuple=40 * NANO,
    btree_node=0.0,  # MonetDB/SQL has no user-defined B+trees (Section 4.1)
    plan_operator=0.35 * MILLI,
    query_overhead=2 * MILLI,
    plan_quadratic=1.5 * MICRO,
)

#: Commercial row-store "DBX": tuple-at-a-time iterators, B+tree access
#: paths, a heavyweight optimizer (expensive per-operator setup).
ROW_STORE_COSTS = CostModel(
    scan_tuple=60 * NANO,
    select_tuple=25 * NANO,
    hash_build=250 * NANO,
    hash_probe=150 * NANO,
    merge_step=120 * NANO,
    group_tuple=70 * NANO,
    sort_item=150 * NANO,
    union_tuple=200 * NANO,
    output_tuple=150 * NANO,
    btree_node=400 * NANO,
    plan_operator=1.5 * MILLI,
    query_overhead=5 * MILLI,
    plan_quadratic=35 * MICRO,
)

#: C-Store replica: column costs without a SQL layer (hard-wired plans have
#: no per-operator optimization charge) but an early-stage executor whose
#: joins and aggregations are less tuned than MonetDB's.
CSTORE_COSTS = CostModel(
    scan_tuple=7 * NANO,
    select_tuple=6 * NANO,
    hash_build=80 * NANO,
    hash_probe=60 * NANO,
    merge_step=10 * NANO,
    group_tuple=70 * NANO,
    sort_item=30 * NANO,
    union_tuple=15 * NANO,
    output_tuple=40 * NANO,
    btree_node=300 * NANO,  # BerkeleyDB access beneath the columns
    plan_operator=0.0,
    query_overhead=1 * MILLI,
)
