"""LRU buffer pool with I/O-time accounting.

The buffer pool is the single place where simulated I/O happens.  Engines
call :meth:`BufferPool.read` for every segment access; the pool works out
which pages are missing, groups contiguous misses into disk requests, splits
requests at the engine's request-size cap, and charges the query clock.

The request-size cap is how the paper's C-Store finding is reproduced: an
engine that issues small synchronous requests pays the per-request latency
so often that the effective read rate is latency-bound and a 4x faster RAID
array barely helps (Section 3, Figure 5).  Engines that scan sequentially
with large requests run at the disk's sustained bandwidth.
"""

from collections import OrderedDict

from repro.errors import BufferPoolError
from repro.observe.race import guard_lock, shared_state
from repro.observe.trace import NULL_OBSERVATION

#: Effective-bandwidth divisor for scattered (index-order) page reads: the
#: same bytes stream at roughly a quarter of the sequential rate — the
#: regime behind the paper's SPO-vs-PSO gap, where an unclustered index's
#: heap fetches read the table at a fraction of what a clustered range scan
#: achieves (Section 4.3: "DBX is spending half of the execution time
#: waiting for the data to be retrieved from disk").
SCATTERED_BANDWIDTH_PENALTY = 4.0

#: Process-wide always-on accounting, aggregated across every pool this
#: process creates (benchmark cells deploy engines internally, so
#: per-instance counters are unreachable after a run; the perf observatory
#: reads this aggregate instead).  Guarded by a lock: the query server's
#: thread pool drives pools concurrently, and plain ``dict[k] += n`` is a
#: read-modify-write that silently loses updates under interleaving.  Each
#: ``read()`` takes the lock once, batching its deltas — negligible next
#: to the page walk the read performs.
_GLOBAL_STATS_LOCK = guard_lock("engine.buffer.GLOBAL_STATS")
GLOBAL_STATS = shared_state(  # guarded-by: _GLOBAL_STATS_LOCK
    "engine.buffer.GLOBAL_STATS",
    {
        "page_hits": 0,
        "page_misses": 0,
        "evictions": 0,
        "disk_requests": 0,
        "bytes_transferred": 0,
        "account_calls": 0,
    },
    _GLOBAL_STATS_LOCK,
)


def global_stats():
    """Snapshot of the process-wide buffer-pool counters (a fresh dict)."""
    with _GLOBAL_STATS_LOCK:
        return dict(GLOBAL_STATS)


def reset_global_stats():
    with _GLOBAL_STATS_LOCK:
        for key in GLOBAL_STATS:
            GLOBAL_STATS[key] = 0


def hit_ratio(stats):
    """Page-hit ratio of a stats dict; ``None`` when no pages were read."""
    touched = stats["page_hits"] + stats["page_misses"]
    if not touched:
        return None
    return stats["page_hits"] / touched


class BufferPool:
    """Page cache over a :class:`~repro.engine.disk.SimulatedDisk`."""

    def __init__(self, disk, clock, capacity_bytes, max_run_bytes=None,
                 sequential_coalescing=True, observe=None):
        if capacity_bytes < disk.page_size:
            raise BufferPoolError("buffer pool smaller than one page")
        self.disk = disk
        self.clock = clock
        #: Observation bundle (metrics registry + tracer); the default is
        #: inert, so accounting beyond the plain counters below is skipped.
        self.observe = observe if observe is not None else NULL_OBSERVATION
        self.page_size = disk.page_size
        self.capacity_pages = capacity_bytes // disk.page_size
        # Always-on accounting: plain ints, negligible next to the page walk.
        self.hit_count = 0
        self.miss_count = 0
        self.eviction_count = 0
        self.request_count = 0
        self.bytes_transferred = 0
        #: Largest number of bytes the engine fetches per disk request.
        #: ``None`` means unbounded (one request per contiguous miss run).
        self.max_run_bytes = max_run_bytes
        #: When True, a read continuing exactly where the previous disk read
        #: ended rides the OS readahead stream and pays no new seek.  The
        #: C-Store replica turns this off: its synchronous request-at-a-time
        #: I/O pays full latency per request (paper, Section 3 / Figure 5).
        self.sequential_coalescing = sequential_coalescing
        self._pages = OrderedDict()  # page_id -> True, LRU order
        # Last page transferred from disk: a read continuing at the very
        # next page is sequential (readahead) and pays no new seek.
        self._last_disk_page = None
        # Evictions since the last _account() flush to GLOBAL_STATS: the
        # process-wide counters take their lock once per read, not once
        # per evicted page.
        self._unflushed_evictions = 0

    # ------------------------------------------------------------------
    # cache state management (cold/hot protocol)
    # ------------------------------------------------------------------

    def clear(self):
        """Drop every cached page: the benchmark's *cold* starting state."""
        self._pages.clear()
        self._last_disk_page = None

    def stats(self):
        """The always-on accounting counters as a dict."""
        return {
            "page_hits": self.hit_count,
            "page_misses": self.miss_count,
            "evictions": self.eviction_count,
            "disk_requests": self.request_count,
            "bytes_transferred": self.bytes_transferred,
        }

    def reset_stats(self):
        self.hit_count = 0
        self.miss_count = 0
        self.eviction_count = 0
        self.request_count = 0
        self.bytes_transferred = 0

    def hit_ratio(self):
        """This pool's page-hit ratio (``None`` before any read)."""
        return hit_ratio(self.stats())

    def resident_pages(self):
        return len(self._pages)

    def resident_bytes(self):
        return len(self._pages) * self.page_size

    def is_resident(self, segment, first_byte=0, nbytes=None):
        """True when every page of the byte range is cached."""
        start, end = segment.page_span(first_byte, nbytes)
        return all(p in self._pages for p in range(start, end))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read(self, segment, first_byte=0, nbytes=None):
        """Read a byte range of *segment*, charging I/O for page misses.

        Returns the number of bytes actually transferred from disk (0 when
        the range was fully cached).
        """
        start, end = segment.page_span(first_byte, nbytes)
        miss_runs = self._collect_misses(start, end)
        transferred = 0
        n_requests = 0
        for run_start, run_end in miss_runs:
            run_bytes = (run_end - run_start) * self.page_size
            transferred += run_bytes
            n_requests += self._requests_for_run(run_bytes, run_start)
            self._last_disk_page = run_end - 1
        seek = transfer = 0.0
        if transferred:
            seek, transfer = self.clock.charge_io(transferred, n_requests)
        self._install(start, end)
        misses = transferred // self.page_size
        self._account(
            segment, (end - start) - misses, misses, n_requests,
            transferred, seek, transfer, scattered=False,
        )
        return transferred

    def read_segment(self, name_or_segment):
        """Read a whole segment (a full column / table scan)."""
        segment = self._resolve(name_or_segment)
        return self.read(segment, 0, segment.nbytes)

    def read_pages(self, segment, page_indices, scattered=False):
        """Read pages of *segment* by number (index lookups, row fetches).

        *page_indices* are segment-relative page numbers.  Contiguous runs
        of missing pages still coalesce into single requests.  With
        ``scattered=True`` the pages arrive in index order rather than disk
        order, so the transfer pays the random-access bandwidth penalty.
        """
        base_page, end_page = segment.page_span()
        unique = sorted(set(int(p) for p in page_indices))
        if unique and (unique[0] < 0 or base_page + unique[-1] >= end_page):
            raise BufferPoolError(
                f"page index out of range for segment {segment.name!r}"
            )
        transferred = 0
        n_requests = 0
        hits = 0
        run = []
        for p in unique:
            page = base_page + p
            if page in self._pages:
                self._pages.move_to_end(page)
                hits += 1
                continue
            if run and page != run[-1] + 1:
                transferred, n_requests = self._flush_run(
                    run, transferred, n_requests
                )
                run = []
            run.append(page)
        if run:
            transferred, n_requests = self._flush_run(run, transferred, n_requests)
        seek = transfer = 0.0
        if transferred:
            penalty = SCATTERED_BANDWIDTH_PENALTY if scattered else 1.0
            seek, transfer = self.clock.charge_io(
                transferred, n_requests, bandwidth_penalty=penalty
            )
        self._account(
            segment, hits, transferred // self.page_size, n_requests,
            transferred, seek, transfer, scattered=scattered,
        )
        return transferred

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _account(self, segment, hits, misses, n_requests, transferred,
                 seek_seconds, transfer_seconds, scattered):
        """Update the always-on counters, the disk's per-segment read log,
        the metrics registry, and the active trace span."""
        self.hit_count += hits
        self.miss_count += misses
        self.request_count += n_requests
        self.bytes_transferred += transferred
        evictions = self._unflushed_evictions
        self._unflushed_evictions = 0
        with _GLOBAL_STATS_LOCK:
            GLOBAL_STATS["page_hits"] += hits
            GLOBAL_STATS["page_misses"] += misses
            GLOBAL_STATS["evictions"] += evictions
            GLOBAL_STATS["disk_requests"] += n_requests
            GLOBAL_STATS["bytes_transferred"] += transferred
            GLOBAL_STATS["account_calls"] += 1
        if transferred:
            self.disk.record_read(
                segment.name, transferred, n_requests,
                seek_seconds, transfer_seconds, scattered=scattered,
            )
        observe = self.observe
        if not observe.enabled:
            return
        metrics = observe.metrics
        if hits:
            metrics.counter("buffer.page_hits", segment=segment.name).inc(hits)
        if misses:
            metrics.counter(
                "buffer.page_misses", segment=segment.name
            ).inc(misses)
        if n_requests:
            kind = "scattered" if scattered else "sequential"
            metrics.counter(
                "disk.requests", segment=segment.name, kind=kind
            ).inc(n_requests)
        if transferred:
            metrics.counter(
                "disk.bytes_read", segment=segment.name
            ).inc(transferred)
            metrics.histogram("disk.request_bytes").observe(
                transferred / max(n_requests, 1)
            )
        observe.tracer.current_add(
            page_hits=hits, page_misses=misses, disk_requests=n_requests,
        )

    def _resolve(self, name_or_segment):
        if isinstance(name_or_segment, str):
            return self.disk.segment(name_or_segment)
        return name_or_segment

    def _collect_misses(self, start, end):
        """Contiguous runs of missing pages within [start, end)."""
        runs = []
        run_start = None
        for page in range(start, end):
            if page in self._pages:
                self._pages.move_to_end(page)
                if run_start is not None:
                    runs.append((run_start, page))
                    run_start = None
            elif run_start is None:
                run_start = page
        if run_start is not None:
            runs.append((run_start, end))
        return runs

    def _requests_for_run(self, run_bytes, run_start):
        if self.max_run_bytes is None:
            chunks = 1
        else:
            chunks = max(1, -(-run_bytes // self.max_run_bytes))
        if (
            self.sequential_coalescing
            and self._last_disk_page is not None
            and run_start == self._last_disk_page + 1
        ):
            # Sequential continuation: the disk head is already there.
            chunks -= 1
        return chunks

    def _flush_run(self, run, transferred, n_requests):
        run_bytes = len(run) * self.page_size
        transferred += run_bytes
        n_requests += self._requests_for_run(run_bytes, run[0])
        self._last_disk_page = run[-1]
        for page in run:
            self._install_page(page)
        return transferred, n_requests

    def _install(self, start, end):
        for page in range(start, end):
            self._install_page(page)

    def _install_page(self, page):
        if page in self._pages:
            self._pages.move_to_end(page)
            return
        while len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
            self.eviction_count += 1
            self._unflushed_evictions += 1
            if self.observe.enabled:
                self.observe.metrics.counter("buffer.evictions").inc()
        self._pages[page] = True
