"""Deterministic query clock: simulated "real" and "user" time.

The paper's timing definitions (Section 2.3):

* **Real time** — wall clock between the server receiving the query and
  returning results: read + parse + optimize + execute.
* **User time** — CPU time spent in the DBMS process, excluding time the OS
  spends on I/O.

The clock therefore keeps two accumulators: CPU seconds (charged by
operators per tuple processed) and I/O seconds (charged by the buffer pool
per disk request).  Simulated real time is their sum — the engines under
study issue synchronous I/O, which is exactly the behaviour the paper
criticizes in C-Store (Figure 5) — and simulated user time is the CPU part.

The clock also keeps the cumulative bytes-read history that reproduces
Figure 5 ("I/O Read history"): one ``(real_time_so_far, cumulative_bytes)``
sample per disk request.

For observability every charge is attributed twice more:

* by **category** — callers tag CPU charges (``"plan"``, ``"execute"``,
  ``"output"``); I/O charges split into ``"io.seek"`` (per-request latency)
  and ``"io.transfer"`` (bandwidth time), the decomposition behind the
  paper's latency-bound-C-Store diagnosis;
* by **span** — :meth:`profile_snapshot` exposes the accumulators so a
  :class:`~repro.observe.trace.Tracer` can compute exact per-operator
  deltas.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class QueryTiming:
    """Timing outcome of one query run."""

    real_seconds: float
    user_seconds: float
    bytes_read: int
    io_requests: int
    seek_seconds: float = 0.0
    transfer_seconds: float = 0.0

    def __add__(self, other):
        if not isinstance(other, QueryTiming):
            return NotImplemented
        return QueryTiming(
            self.real_seconds + other.real_seconds,
            self.user_seconds + other.user_seconds,
            self.bytes_read + other.bytes_read,
            self.io_requests + other.io_requests,
            self.seek_seconds + other.seek_seconds,
            self.transfer_seconds + other.transfer_seconds,
        )


class QueryClock:
    """Accumulates CPU and I/O charges for the query currently running."""

    def __init__(self, machine):
        self.machine = machine
        self.reset()

    def reset(self):
        """Start timing a new query."""
        self._cpu_seconds = 0.0
        self._io_seconds = 0.0
        self._seek_seconds = 0.0
        self._transfer_seconds = 0.0
        self._bytes_read = 0
        self._io_requests = 0
        self._categories = {}
        self._trace = [(0.0, 0)]

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------

    def charge_cpu(self, seconds, category="execute"):
        """Charge *seconds* of CPU work (already cost-model-weighted)."""
        if seconds < 0:
            raise ValueError("cannot charge negative CPU time")
        scaled = seconds * self.machine.cpu_scale
        self._cpu_seconds += scaled
        self._categories[category] = self._categories.get(category, 0.0) + scaled

    def charge_io(self, nbytes, n_requests, bandwidth_penalty=1.0):
        """Charge a disk transfer: per-request latency plus bandwidth time.

        *bandwidth_penalty* > 1 models scattered (non-sequential) access:
        the same bytes transfer at a fraction of the sustained rate.

        Returns ``(seek_seconds, transfer_seconds)`` of this charge so the
        caller can attribute them without re-deriving the cost model.
        """
        if nbytes < 0 or n_requests < 0:
            raise ValueError("cannot charge negative I/O")
        if bandwidth_penalty < 1.0:
            raise ValueError("bandwidth_penalty must be >= 1")
        if nbytes == 0 and n_requests == 0:
            return 0.0, 0.0
        seek = n_requests * self.machine.request_latency
        transfer = nbytes * bandwidth_penalty / self.machine.read_bandwidth
        self._io_seconds += seek + transfer
        self._seek_seconds += seek
        self._transfer_seconds += transfer
        if seek:
            self._categories["io.seek"] = (
                self._categories.get("io.seek", 0.0) + seek
            )
        if transfer:
            self._categories["io.transfer"] = (
                self._categories.get("io.transfer", 0.0) + transfer
            )
        self._bytes_read += nbytes
        self._io_requests += n_requests
        self._trace.append((self.real_seconds(), self._bytes_read))
        return seek, transfer

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def real_seconds(self):
        return self._cpu_seconds + self._io_seconds

    def user_seconds(self):
        return self._cpu_seconds

    def bytes_read(self):
        return self._bytes_read

    def seek_seconds(self):
        return self._seek_seconds

    def transfer_seconds(self):
        return self._transfer_seconds

    def category_seconds(self):
        """Charged seconds by attribution category (a fresh dict)."""
        return dict(self._categories)

    def profile_snapshot(self):
        """Accumulator vector for exact span attribution:
        ``(cpu, io, bytes, requests, seek, transfer)``."""
        return (
            self._cpu_seconds,
            self._io_seconds,
            self._bytes_read,
            self._io_requests,
            self._seek_seconds,
            self._transfer_seconds,
        )

    def timing(self):
        """Snapshot the accumulated charges as a :class:`QueryTiming`."""
        return QueryTiming(
            real_seconds=self.real_seconds(),
            user_seconds=self.user_seconds(),
            bytes_read=self._bytes_read,
            io_requests=self._io_requests,
            seek_seconds=self._seek_seconds,
            transfer_seconds=self._transfer_seconds,
        )

    def io_history(self):
        """Figure-5-style read history: list of (seconds, cumulative_bytes)."""
        return list(self._trace)
