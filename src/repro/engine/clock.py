"""Deterministic query clock: simulated "real" and "user" time.

The paper's timing definitions (Section 2.3):

* **Real time** — wall clock between the server receiving the query and
  returning results: read + parse + optimize + execute.
* **User time** — CPU time spent in the DBMS process, excluding time the OS
  spends on I/O.

The clock therefore keeps two accumulators: CPU seconds (charged by
operators per tuple processed) and I/O seconds (charged by the buffer pool
per disk request).  Simulated real time is their sum — the engines under
study issue synchronous I/O, which is exactly the behaviour the paper
criticizes in C-Store (Figure 5) — and simulated user time is the CPU part.

The clock also keeps the cumulative bytes-read history that reproduces
Figure 5 ("I/O Read history"): one ``(real_time_so_far, cumulative_bytes)``
sample per disk request.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class QueryTiming:
    """Timing outcome of one query run."""

    real_seconds: float
    user_seconds: float
    bytes_read: int
    io_requests: int

    def __add__(self, other):
        if not isinstance(other, QueryTiming):
            return NotImplemented
        return QueryTiming(
            self.real_seconds + other.real_seconds,
            self.user_seconds + other.user_seconds,
            self.bytes_read + other.bytes_read,
            self.io_requests + other.io_requests,
        )


class QueryClock:
    """Accumulates CPU and I/O charges for the query currently running."""

    def __init__(self, machine):
        self.machine = machine
        self.reset()

    def reset(self):
        """Start timing a new query."""
        self._cpu_seconds = 0.0
        self._io_seconds = 0.0
        self._bytes_read = 0
        self._io_requests = 0
        self._trace = [(0.0, 0)]

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------

    def charge_cpu(self, seconds):
        """Charge *seconds* of CPU work (already cost-model-weighted)."""
        if seconds < 0:
            raise ValueError("cannot charge negative CPU time")
        self._cpu_seconds += seconds * self.machine.cpu_scale

    def charge_io(self, nbytes, n_requests, bandwidth_penalty=1.0):
        """Charge a disk transfer: per-request latency plus bandwidth time.

        *bandwidth_penalty* > 1 models scattered (non-sequential) access:
        the same bytes transfer at a fraction of the sustained rate.
        """
        if nbytes < 0 or n_requests < 0:
            raise ValueError("cannot charge negative I/O")
        if bandwidth_penalty < 1.0:
            raise ValueError("bandwidth_penalty must be >= 1")
        if nbytes == 0 and n_requests == 0:
            return
        seconds = (
            n_requests * self.machine.request_latency
            + nbytes * bandwidth_penalty / self.machine.read_bandwidth
        )
        self._io_seconds += seconds
        self._bytes_read += nbytes
        self._io_requests += n_requests
        self._trace.append((self.real_seconds(), self._bytes_read))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def real_seconds(self):
        return self._cpu_seconds + self._io_seconds

    def user_seconds(self):
        return self._cpu_seconds

    def bytes_read(self):
        return self._bytes_read

    def timing(self):
        """Snapshot the accumulated charges as a :class:`QueryTiming`."""
        return QueryTiming(
            real_seconds=self.real_seconds(),
            user_seconds=self.user_seconds(),
            bytes_read=self._bytes_read,
            io_requests=self._io_requests,
        )

    def io_history(self):
        """Figure-5-style read history: list of (seconds, cumulative_bytes)."""
        return list(self._trace)
