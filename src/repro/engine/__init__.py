"""Simulated hardware substrate shared by all three engines.

The paper reports *cold* and *hot* wall-clock ("real") and CPU ("user") times
on two concrete machines (Table 3).  Absolute numbers are a property of the
authors' testbed; what this reproduction must preserve is the *mechanics*
that generate the paper's shapes:

* cold runs pay for every byte pulled from disk; hot runs reuse the buffer
  pool,
* sequential scans run at the disk's bandwidth while scattered index reads
  pay a per-request seek, so small synchronous requests (the C-Store replica)
  cannot exploit a fast RAID (the paper's Figure 5 finding),
* CPU time scales with per-tuple operator costs that differ between a
  vectorized column-at-a-time engine and a tuple-at-a-time row engine.

The layer therefore provides a byte-accurate simulated disk
(:class:`~repro.engine.disk.SimulatedDisk`), an LRU buffer pool that accounts
I/O time and records the Figure-5-style read history
(:class:`~repro.engine.buffer.BufferPool`), machine profiles
(:class:`~repro.engine.machine.MachineProfile`), and a deterministic query
clock (:class:`~repro.engine.clock.QueryClock`).
"""

from repro.engine.machine import MachineProfile, MACHINE_A, MACHINE_B, MACHINE_C, MACHINES
from repro.engine.disk import Segment, SimulatedDisk
from repro.engine.clock import QueryClock, QueryTiming
from repro.engine.buffer import BufferPool
from repro.engine.cost import CostModel, COLUMN_STORE_COSTS, ROW_STORE_COSTS, CSTORE_COSTS

__all__ = [
    "MachineProfile",
    "MACHINE_A",
    "MACHINE_B",
    "MACHINE_C",
    "MACHINES",
    "Segment",
    "SimulatedDisk",
    "QueryClock",
    "QueryTiming",
    "BufferPool",
    "CostModel",
    "COLUMN_STORE_COSTS",
    "ROW_STORE_COSTS",
    "CSTORE_COSTS",
]
