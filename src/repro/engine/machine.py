"""Machine profiles (the paper's Table 3).

A :class:`MachineProfile` carries the parameters the cost clock needs
(CPU speed scale, disk bandwidth, per-request latency, RAM) plus the
descriptive fields of Table 3 so the benchmark harness can print the table.

The paper's machines:

* **A** — 1x AMD Athlon 64 dual core 2 GHz, 2 GB RAM, 2-disk RAID-0 reading
  100-110 MB/s,
* **B** — 2x Intel Xeon hyperthreaded 3 GHz, 4 GB RAM, 10-disk RAID-5
  reading 380-390 MB/s,
* **C** — the machine of the original VLDB 2007 paper: Pentium IV 3 GHz,
  2 GB RAM, 3-disk RAID-0 reading 150-180 MB/s.

The paper observes that despite B's higher clock speed its *user* times are
slightly higher than A's (the C-Store binary runs more efficiently on the
AMD core); we encode that as ``cpu_scale`` slightly above 1 for B.
"""

from dataclasses import dataclass

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class MachineProfile:
    """Hardware parameters driving the simulated query clock."""

    name: str
    num_cpus: int
    cpu_model: str
    cpu_ghz: float
    cache_kb: int
    ram_bytes: int
    read_bandwidth: float  # bytes/second, sustained sequential
    request_latency: float  # seconds per discontiguous I/O request (seek)
    raid_disks: int
    raid_level: int
    operating_system: str
    #: Multiplier on CPU cost relative to the reference machine (A == 1.0).
    cpu_scale: float = 1.0

    def effective_bandwidth(self, request_bytes):
        """Sustained read rate of an engine issuing synchronous requests of
        *request_bytes*: each request pays the seek plus the transfer.

        This is how the C-Store replica's small-read behaviour is carried
        into the scale model: 64 KB requests turn a 105-385 MB/s array into
        a ~14-15 MB/s reader on either machine (paper, Section 3).
        """
        seconds_per_request = (
            self.request_latency + request_bytes / self.read_bandwidth
        )
        return request_bytes / seconds_per_request

    def with_read_bandwidth(self, bandwidth):
        """A copy whose sustained read rate is *bandwidth* bytes/second."""
        import dataclasses

        return dataclasses.replace(self, read_bandwidth=bandwidth)

    def scaled(self, data_scale):
        """A profile for running a 1:N scale model of the paper's dataset.

        The synthetic dataset is *data_scale* times the size of the 50M
        Barton dump (e.g. 0.002 for 100k triples).  Per-tuple work shrinks
        with the data by itself; the *fixed* per-request disk latency must
        shrink by the same factor, or seeks would dominate the scale model
        in a way they do not dominate the real system.  Simulated times then
        relate to paper-scale times by exactly ``data_scale``, so dividing
        by it yields directly comparable "scaled seconds".
        """
        import dataclasses

        if not 0 < data_scale <= 1:
            raise ValueError("data_scale must be in (0, 1]")
        return dataclasses.replace(
            self, request_latency=self.request_latency * data_scale
        )

    def table3_row(self):
        """The descriptive fields, in the order of the paper's Table 3."""
        return {
            "Machine": self.name,
            "Num. of CPU": self.num_cpus,
            "CPU": self.cpu_model,
            "CPU speed": f"{self.cpu_ghz:g} GHz",
            "cache size": f"{self.cache_kb} KB",
            "RAM size": f"{self.ram_bytes // GB} GB",
            "I/O read": f"{self.read_bandwidth / MB:.0f} MB/s",
            "RAID disks": self.raid_disks,
            "RAID level": self.raid_level,
            "Operating System": self.operating_system,
        }


MACHINE_A = MachineProfile(
    name="A",
    num_cpus=1,
    cpu_model="AMD Athlon 64 Dual Core",
    cpu_ghz=2.0,
    cache_kb=512,
    ram_bytes=2 * GB,
    read_bandwidth=105 * MB,
    request_latency=0.004,
    raid_disks=2,
    raid_level=0,
    operating_system="Fedora 8 (Linux 2.6.22)",
    cpu_scale=1.0,
)

MACHINE_B = MachineProfile(
    name="B",
    num_cpus=2,
    cpu_model="Intel Xeon Hyperthreaded",
    cpu_ghz=3.0,
    cache_kb=1024,
    ram_bytes=4 * GB,
    read_bandwidth=385 * MB,
    request_latency=0.004,
    raid_disks=10,
    raid_level=5,
    operating_system="Fedora Core 6 (Linux 2.6.23)",
    # The paper: "the user times on both machines are very similar. In fact,
    # they are slightly higher on machine B" — the binary runs better on AMD.
    cpu_scale=1.04,
)

MACHINE_C = MachineProfile(
    name="C",
    num_cpus=1,
    cpu_model="Intel Pentium IV",
    cpu_ghz=3.0,
    cache_kb=1024,
    ram_bytes=2 * GB,
    read_bandwidth=165 * MB,
    request_latency=0.005,
    raid_disks=3,
    raid_level=0,
    operating_system="RedHat Linux",
    cpu_scale=1.10,
)

MACHINES = {"A": MACHINE_A, "B": MACHINE_B, "C": MACHINE_C}
