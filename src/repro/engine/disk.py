"""Byte-accurate simulated disk.

The disk is a catalog of named :class:`Segment` objects — contiguous byte
regions standing for the persistent representation of a column, a heap file,
a B+tree, or the string dictionary.  Engines declare segments at load time
(sized from real array/byte sizes) and later *read* from them through a
:class:`~repro.engine.buffer.BufferPool`, which is where I/O time is
accounted.

Pages are the unit of caching.  Page identity is global: segment base
offsets are laid out back-to-back, so a page id uniquely identifies a page
across the whole database.
"""

from repro.errors import BufferPoolError

DEFAULT_PAGE_SIZE = 8192


class Segment:
    """A named contiguous on-disk byte region."""

    __slots__ = ("name", "nbytes", "base", "page_size")

    def __init__(self, name, nbytes, base, page_size):
        self.name = name
        self.nbytes = int(nbytes)
        self.base = int(base)
        self.page_size = page_size

    def __repr__(self):
        return f"Segment({self.name!r}, nbytes={self.nbytes})"

    def page_span(self, first_byte=0, nbytes=None):
        """The inclusive-exclusive global page-id range covering the bytes."""
        if nbytes is None:
            nbytes = self.nbytes - first_byte
        if first_byte < 0 or nbytes < 0 or first_byte + nbytes > self.nbytes:
            raise BufferPoolError(
                f"read outside segment {self.name!r}: "
                f"offset={first_byte} nbytes={nbytes} size={self.nbytes}"
            )
        if nbytes == 0:
            return (0, 0)
        start = (self.base + first_byte) // self.page_size
        end = (self.base + first_byte + nbytes - 1) // self.page_size + 1
        return (start, end)

    def num_pages(self):
        start, end = self.page_span()
        return end - start


class SegmentReadStats:
    """Per-segment accounting of transfers the buffer pool requested."""

    __slots__ = (
        "reads", "nbytes", "requests", "scattered_reads",
        "seek_seconds", "transfer_seconds", "min_run_bytes", "max_run_bytes",
    )

    def __init__(self):
        self.reads = 0
        self.nbytes = 0
        self.requests = 0
        self.scattered_reads = 0
        self.seek_seconds = 0.0
        self.transfer_seconds = 0.0
        self.min_run_bytes = None
        self.max_run_bytes = 0

    def record(self, nbytes, n_requests, seek_seconds, transfer_seconds,
               scattered):
        self.reads += 1
        self.nbytes += nbytes
        self.requests += n_requests
        self.seek_seconds += seek_seconds
        self.transfer_seconds += transfer_seconds
        if scattered:
            self.scattered_reads += 1
        run = nbytes // max(n_requests, 1)
        if self.min_run_bytes is None or run < self.min_run_bytes:
            self.min_run_bytes = run
        if run > self.max_run_bytes:
            self.max_run_bytes = run

    def to_dict(self):
        return {
            "reads": self.reads,
            "bytes": self.nbytes,
            "requests": self.requests,
            "scattered_reads": self.scattered_reads,
            "seek_seconds": self.seek_seconds,
            "transfer_seconds": self.transfer_seconds,
            "min_run_bytes": self.min_run_bytes,
            "max_run_bytes": self.max_run_bytes,
        }


class SimulatedDisk:
    """Catalog of segments with back-to-back page layout."""

    def __init__(self, page_size=DEFAULT_PAGE_SIZE):
        if page_size <= 0:
            raise BufferPoolError("page_size must be positive")
        self.page_size = page_size
        self._segments = {}
        self._next_base = 0
        self._read_stats = {}

    def __contains__(self, name):
        return name in self._segments

    def __len__(self):
        return len(self._segments)

    def segments(self):
        return list(self._segments.values())

    def create_segment(self, name, nbytes):
        """Register a new segment of *nbytes*; returns it.

        Segment starts are page-aligned so two segments never share a page
        (reading one column must not make a neighbour column hot for free).
        """
        if name in self._segments:
            raise BufferPoolError(f"segment already exists: {name!r}")
        if nbytes < 0:
            raise BufferPoolError("segment size must be non-negative")
        segment = Segment(name, nbytes, self._next_base, self.page_size)
        pages = max(1, -(-int(nbytes) // self.page_size))
        self._next_base += pages * self.page_size
        self._segments[name] = segment
        return segment

    def segment(self, name):
        try:
            return self._segments[name]
        except KeyError:
            raise BufferPoolError(f"no such segment: {name!r}") from None

    def drop_segment(self, name):
        """Forget a segment (its name becomes reusable).

        The simulated address space is not compacted — like a real file
        system, freed extents are simply no longer referenced; fresh
        segments are appended at the end.
        """
        if name not in self._segments:
            raise BufferPoolError(f"no such segment: {name!r}")
        del self._segments[name]

    def total_bytes(self):
        """Total on-disk footprint (the paper's "database size on disk")."""
        return sum(s.nbytes for s in self._segments.values())

    # ------------------------------------------------------------------
    # read accounting (maintained by the buffer pool)
    # ------------------------------------------------------------------

    def record_read(self, segment_name, nbytes, n_requests, seek_seconds,
                    transfer_seconds, scattered=False):
        """Account one miss transfer against *segment_name*."""
        stats = self._read_stats.get(segment_name)
        if stats is None:
            stats = self._read_stats[segment_name] = SegmentReadStats()
        stats.record(nbytes, n_requests, seek_seconds, transfer_seconds,
                     scattered)

    def read_stats(self):
        """Per-segment transfer accounting since the last reset."""
        return dict(self._read_stats)

    def reset_read_stats(self):
        self._read_stats = {}
