"""Parser for the SPARQL basic-graph-pattern fragment."""

import re
from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.model.triple import Variable


@dataclass(frozen=True)
class Filter:
    """``FILTER(?var <op> constant)`` — op is '=' or '!='."""

    variable: str
    op: str
    value: str


@dataclass
class SparqlQuery:
    """A parsed SELECT query over one basic graph pattern."""

    variables: list            # projected variable names; None = SELECT *
    patterns: list = field(default_factory=list)
    filters: list = field(default_factory=list)
    distinct: bool = False
    limit: int = None


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<iri><[^>]*>)
  | (?P<literal>"(?:[^"\\]|\\.)*")
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<keyword>(?i:SELECT|DISTINCT|WHERE|FILTER|LIMIT)\b)
  | (?P<number>\d+)
  | (?P<punct>[{}().!=*])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"SELECT", "DISTINCT", "WHERE", "FILTER", "LIMIT"}


def _tokenize(text):
    tokens = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {text[pos]!r} in SPARQL", line=line
            )
        line += text[pos : match.end()].count("\n")
        kind = match.lastgroup
        value = match.group()
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind == "keyword":
            tokens.append((value.upper(), value.upper()))
        else:
            tokens.append((kind, value))
    tokens.append(("eof", None))
    return tokens


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.tokens[self.pos]
        if token[0] != "eof":
            self.pos += 1
        return token

    def expect(self, kind, what=None):
        token = self.peek()
        if token[0] != kind and token[1] != kind:
            raise ParseError(
                f"expected {what or kind}, found {token[1]!r} in SPARQL"
            )
        return self.advance()

    def accept(self, kind):
        if self.peek()[0] == kind or self.peek()[1] == kind:
            return self.advance()
        return None

    # ------------------------------------------------------------------

    def parse(self):
        self.expect("SELECT")
        distinct = self.accept("DISTINCT") is not None
        variables = self.parse_projection()
        self.expect("WHERE")
        self._expect_punct("{")
        patterns, filters = self.parse_group()
        self._expect_punct("}")
        limit = None
        if self.accept("LIMIT"):
            limit = int(self.expect("number")[1])
        if self.peek()[0] != "eof":
            raise ParseError(
                f"trailing input in SPARQL: {self.peek()[1]!r}"
            )
        return SparqlQuery(
            variables=variables,
            patterns=patterns,
            filters=filters,
            distinct=distinct,
            limit=limit,
        )

    def _expect_punct(self, char):
        token = self.peek()
        if token[0] == "punct" and token[1] == char:
            return self.advance()
        raise ParseError(f"expected {char!r}, found {token[1]!r} in SPARQL")

    def _accept_punct(self, char):
        token = self.peek()
        if token[0] == "punct" and token[1] == char:
            return self.advance()
        return None

    def parse_projection(self):
        if self._accept_punct("*"):
            return None
        names = []
        while self.peek()[0] == "var":
            names.append(self.advance()[1][1:])
        if not names:
            raise ParseError("SELECT needs variables or '*'")
        return names

    def parse_group(self):
        patterns = []
        filters = []
        while True:
            token = self.peek()
            if token[0] == "punct" and token[1] == "}":
                break
            if token[0] == "eof":
                raise ParseError("unterminated '{' group in SPARQL")
            if token[0] == "FILTER":
                filters.append(self.parse_filter())
                self._accept_punct(".")
                continue
            patterns.append(self.parse_pattern())
            if not self._accept_punct("."):
                break
        return patterns, filters

    def parse_pattern(self):
        terms = [self.parse_term() for _ in range(3)]
        return tuple(terms)

    def parse_term(self):
        kind, value = self.peek()
        if kind == "var":
            self.advance()
            return Variable(value[1:])
        if kind in ("iri", "literal"):
            self.advance()
            return value
        raise ParseError(
            f"expected a variable, IRI or literal; found {value!r}"
        )

    def parse_filter(self):
        self.expect("FILTER")
        self._expect_punct("(")
        variable = self.expect("var", what="a variable")[1][1:]
        op = self.parse_operator()
        kind, value = self.peek()
        if kind not in ("iri", "literal"):
            raise ParseError(
                f"FILTER compares against an IRI or literal, found {value!r}"
            )
        self.advance()
        self._expect_punct(")")
        return Filter(variable, op, value)

    def parse_operator(self):
        if self._accept_punct("!"):
            self._expect_punct("=")
            return "!="
        if self._accept_punct("="):
            return "="
        raise ParseError(
            f"expected '=' or '!=' in FILTER, found {self.peek()[1]!r}"
        )


def parse_sparql(text):
    """Parse SPARQL text into a :class:`SparqlQuery`."""
    return _Parser(_tokenize(text)).parse()
