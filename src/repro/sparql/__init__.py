"""A SPARQL front-end for the basic-graph-pattern fragment.

The paper's Section 2.2 grounds its query-space analysis in SPARQL triple
patterns; this package parses the corresponding SPARQL fragment and lowers
it onto any store through the BGP translator:

* ``SELECT ?x ?y`` / ``SELECT *`` / ``SELECT DISTINCT ...``
* ``WHERE { ... }`` with dot-separated triple patterns,
* terms: variables ``?name``, IRIs ``<...>``, literals ``"..."``,
* ``FILTER(?x != <iri>)`` / ``FILTER(?x = "lit")`` comparisons,
* ``LIMIT n``.

Example::

    store.sparql('''
        SELECT ?book ?lang WHERE {
            ?book <type> <Text> .
            ?book <language> ?lang .
            FILTER(?lang != <language/iso639-2b/eng>)
        }
    ''')
"""

from repro.sparql.parser import parse_sparql, SparqlQuery
from repro.sparql.executor import execute_sparql

__all__ = ["parse_sparql", "SparqlQuery", "execute_sparql"]
