"""Execute parsed SPARQL against a store catalog + engine.

Lowers the basic graph pattern through :func:`repro.core.bgp.bgp_plan`,
applies FILTER comparisons as selections on the joined relation, and
handles DISTINCT / LIMIT on the projected bindings.
"""

from repro.core.bgp import bgp_plan
from repro.errors import PlanError
from repro.model.triple import is_variable
from repro.plan import Comparison, Distinct, Limit, Project, Select


def sparql_plan(catalog, query):
    """Logical plan + projected variable names for a parsed query."""
    all_variables = sorted(
        {
            term.name
            for pattern in query.patterns
            for term in pattern
            if is_variable(term)
        }
    )
    projection = query.variables if query.variables is not None else all_variables
    # Filters may constrain non-projected variables: plan with the union of
    # both sets, then narrow.
    needed = list(dict.fromkeys(projection + [f.variable for f in query.filters]))
    plan, names = bgp_plan(catalog, query.patterns, projection=needed)

    for f in query.filters:
        if f.variable not in names:
            raise PlanError(
                f"FILTER on unknown variable ?{f.variable}"
            )
        plan = Select(
            plan, [Comparison(f.variable, f.op, catalog.encode(f.value))]
        )

    if needed != projection:
        plan = Project(plan, [(name, name) for name in projection])
    if query.distinct:
        plan = Distinct(plan)
    if query.limit is not None:
        # Pushed into the plan so engine timing reflects the truncation.
        plan = Limit(plan, query.limit)

    from repro.analysis import plan_lint

    plan_lint.check_plan(plan, where="sparql")
    return plan, projection


def execute_sparql(engine, catalog, query):
    """Run a parsed :class:`SparqlQuery`; returns a list of binding dicts.

    Execution goes through the unified physical layer: the logical plan is
    lowered against *engine*'s operator registry and driven by the shared
    runtime (:func:`repro.exec.execute_plan`).
    """
    from repro.exec import execute_plan

    plan, names = sparql_plan(catalog, query)
    relation = execute_plan(engine, plan)
    if not names:
        return [{} for _ in range(relation.n_rows)]
    rows = relation.decoded_tuples(catalog.dictionary, order=names)
    return [dict(zip(names, row)) for row in rows]
