"""Pickle-friendly store payloads: prepared physical designs.

A *store payload* is everything a storage-scheme builder computes before it
touches an engine: the dictionary's string heap, every table's columns
already dictionary-encoded and sorted into load order, the index specs, and
the catalog fields.  Payloads are plain dicts of numpy arrays, lists and
strings — picklable, so the benchmark artifact cache can persist them — and
applying one to an engine (:func:`build_store_from_payload`) produces a
store byte-identical to a fresh build: same table creation order, same
segment layout, same frozen dictionary.
"""

import numpy as np

from repro.dictionary import Dictionary
from repro.storage.catalog import StoreCatalog


def table_entry(name, columns, sort_by=None, indexes=None):
    """One pre-sorted table of a payload.

    Applies the exact load sort the engines run (stable ``np.lexsort`` over
    the reversed *sort_by* key list), so a table created from the entry with
    ``presorted=True`` matches an engine-sorted build byte for byte.
    """
    arrays = {
        col: np.ascontiguousarray(values, dtype=np.int64)
        for col, values in columns.items()
    }
    sort_by = list(sort_by or [])
    if sort_by:
        order = np.lexsort(tuple(arrays[c] for c in reversed(sort_by)))
        arrays = {col: a[order] for col, a in arrays.items()}
    return {
        "name": name,
        "columns": arrays,
        "sort_by": sort_by,
        "indexes": indexes,
    }


def store_payload(dictionary, tables, **catalog_fields):
    """Bundle a prepared physical design into a picklable payload dict."""
    return {
        "strings": list(dictionary),
        "tables": tables,
        "catalog": catalog_fields,
    }


def build_store_from_payload(engine, payload):
    """Create every table of *payload* inside *engine*.

    The per-table ``presorted=True`` skips the engine's load sort — the
    payload already holds the columns in load order.  Returns the
    :class:`StoreCatalog` described by the payload.
    """
    dictionary = Dictionary.from_interned(payload["strings"])
    for entry in payload["tables"]:
        engine.create_table(
            entry["name"],
            entry["columns"],
            sort_by=entry["sort_by"],
            indexes=entry["indexes"],
            presorted=True,
        )
    return StoreCatalog(
        dictionary=dictionary.freeze(),
        compression=getattr(engine, "compression_mode", None),
        **payload["catalog"],
    )
