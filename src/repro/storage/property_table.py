"""EXTENSION — the property-table storage scheme.

The third physical organization in the debate: the property-table approach
of Jena2 (Wilkinson et al.) and Oracle (Chong et al.), which the VLDB 2007
paper criticizes and this paper explicitly leaves out of its experiments
("We do not analyze the property table dimension, which requires amongst
others an evaluation using database design wizards").  It is provided here
as an extension so the full three-way comparison can be run; the benchmark
harness and EXPERIMENTS.md treat it as out-of-paper material.

Layout (Jena2-style single-valued clustering):

* a wide ``ptable(subj, p_<oid>, p_<oid>, ...)`` holds one row per subject
  that has at least one *single-valued* clustered property; absent values
  are NULL (the ``NULL_OID`` sentinel),
* every other triple — non-clustered properties and every instance of a
  multi-valued (subject, property) pair — lives in a leftover ``triples``
  table clustered PSO.

Each triple of the input is represented exactly once.  Queries that do not
bind the property, or bind one that is multi-valued somewhere, must UNION
the wide-table columns with the leftover table — the "proliferation of
union clauses and joins" criticism the paper quotes.
"""

import numpy as np

from repro.dictionary import Dictionary
from repro.storage.encoding import order_preserving_dictionary
from repro.errors import StorageError
from repro.storage.catalog import StoreCatalog, clustering_columns

#: Sentinel oid representing SQL NULL in wide-table columns.  Real oids are
#: non-negative, so -1 can never collide.
NULL_OID = -1


def property_column_name(prop_oid):
    return f"p_{prop_oid}"


def build_property_table_store(engine, triples, interesting_properties,
                               clustered_properties=None, dictionary=None,
                               leftover_clustering="PSO",
                               table_name="ptable",
                               leftover_name="triples"):
    """Deploy the property-table scheme; returns a StoreCatalog.

    *clustered_properties* defaults to the interesting (Longwell) set —
    the choice a database design wizard would make from the query workload.
    """
    triples = list(triples)
    dictionary = order_preserving_dictionary(triples, dictionary)
    if clustered_properties is None:
        clustered_properties = list(interesting_properties)
    clustered_set = set(clustered_properties)
    if not clustered_set:
        raise StorageError("property-table scheme needs clustered properties")

    # Pass 1: encode and bucket triples per (subject, property).
    by_subject_property = {}
    leftover_rows = []
    property_counts = {}
    for t in triples:
        s = dictionary.encode(t.s)
        p = dictionary.encode(t.p)
        o = dictionary.encode(t.o)
        property_counts[t.p] = property_counts.get(t.p, 0) + 1
        if t.p in clustered_set:
            by_subject_property.setdefault((s, p), []).append(o)
        else:
            leftover_rows.append((s, p, o))

    # Pass 2: single-valued pairs go to the wide table; multi-valued pairs
    # spill every instance to the leftover table.
    cell_values = {}
    wide_subjects = set()
    for (s, p), values in by_subject_property.items():
        if len(values) == 1:
            cell_values[(s, p)] = values[0]
            wide_subjects.add(s)
        else:
            leftover_rows.extend((s, p, o) for o in values)

    subjects = np.asarray(sorted(wide_subjects), dtype=np.int64)
    position = {s: i for i, s in enumerate(subjects.tolist())}
    columns = {"subj": subjects}
    clustered_columns = {}
    for prop in clustered_properties:
        oid = dictionary.encode(prop)
        column = property_column_name(oid)
        values = np.full(len(subjects), NULL_OID, dtype=np.int64)
        clustered_columns[prop] = column
        columns[column] = values
    for (s, p), o in cell_values.items():
        prop_name = dictionary.decode(p)
        columns[clustered_columns[prop_name]][position[s]] = o

    engine.create_table(
        table_name, columns, sort_by=["subj"],
        indexes=[] if engine.kind == "row-store" else None,
    )

    leftover_sort = list(clustering_columns(leftover_clustering))
    leftover_indexes = None
    if engine.kind == "row-store":
        leftover_indexes = [
            {"name": "leftover_pos", "columns": ["prop", "obj", "subj"]},
            {"name": "leftover_spo", "columns": ["subj", "prop", "obj"]},
        ]
    leftover_rows.sort()
    if leftover_rows:
        subj_arr, prop_arr, obj_arr = (
            np.asarray(a, dtype=np.int64) for a in zip(*leftover_rows)
        )
    else:
        subj_arr = prop_arr = obj_arr = np.empty(0, dtype=np.int64)
    engine.create_table(
        leftover_name,
        {"subj": subj_arr, "prop": prop_arr, "obj": obj_arr},
        sort_by=leftover_sort,
        indexes=leftover_indexes,
    )

    oids = np.asarray(
        [dictionary.encode(p) for p in interesting_properties],
        dtype=np.int64,
    )
    engine.create_table(
        "properties", {"prop": oids}, sort_by=["prop"],
        indexes=[] if engine.kind == "row-store" else None,
    )

    all_properties = sorted(
        property_counts, key=lambda p: (-property_counts[p], p)
    )
    catalog = StoreCatalog(
        scheme="property_table",
        clustering=f"subj+{leftover_clustering}",
        dictionary=dictionary.freeze(),
        interesting_properties=list(interesting_properties),
        all_properties=all_properties,
        triples_table=leftover_name,
        properties_table="properties",
        compression=getattr(engine, "compression_mode", None),
    )
    # Extension fields (StoreCatalog is a plain dataclass; these ride along
    # for the property-table query builder).
    catalog.property_table_name = table_name
    catalog.clustered_property_columns = clustered_columns
    return catalog
