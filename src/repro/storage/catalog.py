"""Catalog describing a deployed RDF storage scheme."""

from dataclasses import dataclass, field

from repro.errors import StorageError

#: Clustering orders for the triples table, as column lists.
CLUSTERINGS = {
    "SPO": ("subj", "prop", "obj"),
    "SOP": ("subj", "obj", "prop"),
    "PSO": ("prop", "subj", "obj"),
    "POS": ("prop", "obj", "subj"),
    "OSP": ("obj", "subj", "prop"),
    "OPS": ("obj", "prop", "subj"),
}


def clustering_columns(name):
    try:
        return CLUSTERINGS[name.upper()]
    except KeyError:
        raise StorageError(
            f"unknown clustering {name!r}; expected one of {sorted(CLUSTERINGS)}"
        ) from None


@dataclass
class StoreCatalog:
    """What a storage-scheme builder created inside an engine.

    * ``scheme`` — ``"triple"`` or ``"vertical"``.
    * ``clustering`` — triples-table clustering order (triple scheme) or
      ``"SO"`` (vertical scheme).
    * ``dictionary`` — the frozen string dictionary all values are encoded
      with.
    * ``triples_table`` — table name (triple scheme only).
    * ``properties_table`` — name of the table holding the "interesting"
      property oids used to filter q2/q3/q4/q6 (both schemes).
    * ``property_tables`` — property name -> table name (vertical scheme).
    * ``interesting_properties`` / ``all_properties`` — property name lists,
      most frequent first.
    * ``compression`` — the engine's compression cost mode (``None``,
      ``"logical"`` or ``"physical"``) at build time, so catalog consumers
      can tell a compressed store from a raw one.
    """

    scheme: str
    clustering: str
    dictionary: object
    interesting_properties: list
    all_properties: list
    triples_table: str = None
    properties_table: str = None
    property_tables: dict = field(default_factory=dict)
    compression: str = None

    def is_triple_store(self):
        return self.scheme == "triple"

    def is_vertical(self):
        return self.scheme == "vertical"

    def property_table(self, property_name):
        """The vertical table storing *property_name*'s triples."""
        try:
            return self.property_tables[property_name]
        except KeyError:
            raise StorageError(
                f"no vertical table for property {property_name!r}"
            ) from None

    def encode(self, string):
        """Oid of a query constant (None when absent from the data)."""
        return self.dictionary.lookup_or_none(string)

    def with_properties(self, properties_table, interesting_properties):
        """A copy pointing at a different "interesting properties" filter.

        Used by the Figure 6 sweep, which varies how many properties the
        aggregation queries consider.
        """
        import dataclasses

        return dataclasses.replace(
            self,
            properties_table=properties_table,
            interesting_properties=list(interesting_properties),
        )

    def properties_for(self, scope):
        """Resolve a property scope to a name list.

        ``"interesting"`` — the 28 Longwell properties; ``"all"`` — every
        property; a list — returned as-is.
        """
        if scope == "interesting":
            return list(self.interesting_properties)
        if scope == "all":
            return list(self.all_properties)
        return list(scope)
