"""Deploy the triple-store scheme into an engine.

The triples table holds one dictionary-encoded row per triple.  On the row
store the clustering order materializes as the clustered B+tree; the paper's
two configurations are

* ``SPO`` — the VLDB 2007 design: clustered SPO, unclustered POS and OSP,
* ``PSO`` — this paper's improvement: clustered PSO plus unclustered
  B+trees on all five other permutations ("having all index permutations
  allows DBX's optimizer to create more efficient query plans").

On the column store the clustering is realized purely as a sort order
(MonetDB has no user-defined indices).
"""

import numpy as np

from repro.dictionary import Dictionary
from repro.storage.encoding import order_preserving_dictionary
from repro.storage.catalog import StoreCatalog, CLUSTERINGS, clustering_columns

#: Indexes per clustering for row stores, mirroring the paper's setups.
_INDEX_SETS = {
    "SPO": ("POS", "OSP"),
    "PSO": tuple(sorted(set(CLUSTERINGS) - {"PSO"})),
}


def build_triple_store(engine, triples, interesting_properties,
                       clustering="PSO", dictionary=None,
                       table_name="triples", with_indexes=None):
    """Create the triples + properties tables inside *engine*.

    *triples* is an iterable of string triples; *interesting_properties* the
    property names of the Longwell filter (most frequent first).  Returns a
    :class:`StoreCatalog`.
    """
    clustering = clustering.upper()
    sort_by = list(clustering_columns(clustering))
    triples = list(triples)
    dictionary = order_preserving_dictionary(triples, dictionary)
    dictionary, arrays, all_properties = encode_triples(triples, dictionary)

    if with_indexes is None:
        with_indexes = engine.kind == "row-store"
    indexes = None
    if with_indexes:
        indexes = [
            {"name": f"idx_{perm.lower()}",
             "columns": list(clustering_columns(perm))}
            for perm in _INDEX_SETS.get(clustering, ())
        ]

    engine.create_table(table_name, arrays, sort_by=sort_by, indexes=indexes)
    properties_table = _build_properties_table(
        engine, dictionary, interesting_properties
    )
    return StoreCatalog(
        scheme="triple",
        clustering=clustering,
        dictionary=dictionary.freeze(),
        interesting_properties=list(interesting_properties),
        all_properties=all_properties,
        triples_table=table_name,
        properties_table=properties_table,
    )


def encode_triples(triples, dictionary=None):
    """Dictionary-encode triples into parallel subj/prop/obj oid arrays.

    Returns ``(dictionary, {"subj": ..., "prop": ..., "obj": ...},
    property_names_by_frequency)``.
    """
    if dictionary is None:
        dictionary = Dictionary()
    subj, prop, obj = [], [], []
    property_counts = {}
    for t in triples:
        subj.append(dictionary.encode(t.s))
        prop.append(dictionary.encode(t.p))
        obj.append(dictionary.encode(t.o))
        property_counts[t.p] = property_counts.get(t.p, 0) + 1
    arrays = {
        "subj": np.asarray(subj, dtype=np.int64),
        "prop": np.asarray(prop, dtype=np.int64),
        "obj": np.asarray(obj, dtype=np.int64),
    }
    by_frequency = sorted(property_counts, key=lambda p: (-property_counts[p], p))
    return dictionary, arrays, by_frequency


def _build_properties_table(engine, dictionary, interesting_properties,
                            table_name="properties"):
    """The 28-property filter table joined by q2/q3/q4/q6."""
    oids = np.asarray(
        [dictionary.encode(p) for p in interesting_properties], dtype=np.int64
    )
    indexes = None
    if engine.kind == "row-store":
        indexes = []
    engine.create_table(
        table_name, {"prop": oids}, sort_by=["prop"], indexes=indexes
    )
    return table_name
