"""Deploy the triple-store scheme into an engine.

The triples table holds one dictionary-encoded row per triple.  On the row
store the clustering order materializes as the clustered B+tree; the paper's
two configurations are

* ``SPO`` — the VLDB 2007 design: clustered SPO, unclustered POS and OSP,
* ``PSO`` — this paper's improvement: clustered PSO plus unclustered
  B+trees on all five other permutations ("having all index permutations
  allows DBX's optimizer to create more efficient query plans").

On the column store the clustering is realized purely as a sort order
(MonetDB has no user-defined indices).
"""

from collections import Counter

import numpy as np

from repro.dictionary import Dictionary
from repro.storage.encoding import order_preserving_dictionary
from repro.storage.catalog import CLUSTERINGS, clustering_columns
from repro.storage.payload import (
    build_store_from_payload,
    store_payload,
    table_entry,
)

#: Indexes per clustering for row stores, mirroring the paper's setups.
_INDEX_SETS = {
    "SPO": ("POS", "OSP"),
    "PSO": tuple(sorted(set(CLUSTERINGS) - {"PSO"})),
}


def build_triple_store(engine, triples, interesting_properties,
                       clustering="PSO", dictionary=None,
                       table_name="triples", with_indexes=None):
    """Create the triples + properties tables inside *engine*.

    *triples* is an iterable of string triples; *interesting_properties* the
    property names of the Longwell filter (most frequent first).  Returns a
    :class:`StoreCatalog`.
    """
    if with_indexes is None:
        with_indexes = engine.kind == "row-store"
    payload = prepare_triple_payload(
        triples, interesting_properties, clustering=clustering,
        dictionary=dictionary, table_name=table_name,
        with_indexes=with_indexes,
    )
    return build_store_from_payload(engine, payload)


def prepare_triple_payload(triples, interesting_properties,
                           clustering="PSO", dictionary=None,
                           table_name="triples", with_indexes=False):
    """Prepare the triple-store physical design without an engine.

    Returns a picklable payload (see :mod:`repro.storage.payload`) holding
    the encoded, load-ordered tables — the expensive half of a deploy — so
    the artifact cache can persist it between benchmark runs.
    """
    clustering = clustering.upper()
    sort_by = list(clustering_columns(clustering))
    triples = list(triples)
    dictionary = order_preserving_dictionary(triples, dictionary)
    dictionary, arrays, all_properties = encode_triples(triples, dictionary)

    indexes = None
    if with_indexes:
        indexes = [
            {"name": f"idx_{perm.lower()}",
             "columns": list(clustering_columns(perm))}
            for perm in _INDEX_SETS.get(clustering, ())
        ]

    tables = [table_entry(table_name, arrays, sort_by, indexes)]
    tables.append(
        _properties_table_entry(dictionary, interesting_properties,
                                with_indexes)
    )
    return store_payload(
        dictionary,
        tables,
        scheme="triple",
        clustering=clustering,
        interesting_properties=list(interesting_properties),
        all_properties=all_properties,
        triples_table=table_name,
        properties_table="properties",
    )


def encode_triples(triples, dictionary=None):
    """Dictionary-encode triples into parallel subj/prop/obj oid arrays.

    Returns ``(dictionary, {"subj": ..., "prop": ..., "obj": ...},
    property_names_by_frequency)``.

    Encoding runs column-at-a-time through :meth:`Dictionary.encode_many`
    (no per-element method dispatch).  Strings not already interned are
    assigned oids in first-seen order per column (subjects, then properties,
    then objects); the storage builders pre-intern the whole vocabulary with
    :func:`order_preserving_dictionary`, in which case no interning happens
    here at all.
    """
    if dictionary is None:
        dictionary = Dictionary()
    triples = triples if isinstance(triples, list) else list(triples)
    n = len(triples)
    p_list = [t.p for t in triples]
    arrays = {
        "subj": np.fromiter(
            dictionary.encode_many([t.s for t in triples]),
            dtype=np.int64, count=n,
        ),
        "prop": np.fromiter(
            dictionary.encode_many(p_list), dtype=np.int64, count=n
        ),
        "obj": np.fromiter(
            dictionary.encode_many([t.o for t in triples]),
            dtype=np.int64, count=n,
        ),
    }
    property_counts = Counter(p_list)
    by_frequency = sorted(property_counts, key=lambda p: (-property_counts[p], p))
    return dictionary, arrays, by_frequency


def _properties_table_entry(dictionary, interesting_properties, with_indexes,
                            table_name="properties"):
    """The 28-property filter table joined by q2/q3/q4/q6."""
    oids = np.asarray(
        [dictionary.encode(p) for p in interesting_properties], dtype=np.int64
    )
    return table_entry(
        table_name, {"prop": oids}, ["prop"], [] if with_indexes else None
    )
